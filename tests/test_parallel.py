"""Parallel execution layer: config resolution, caching, and the core
guarantee — serial, threaded and multi-process execution are bit-identical
for fixed seeds, both for DPMHBP chains and for ``run_comparison`` cells."""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core.dpmhbp import DPMHBPModel
from repro.core.survival_models import CoxPHModel
from repro.eval.experiment import prepare_region_data, run_comparison
from repro.features.builder import FeatureConfig
from repro.parallel import (
    ExecutorConfig,
    cached_model_data,
    clear_model_data_cache,
    compute_chunksize,
    parallel_map,
    pool_stats,
    pools_enabled,
    resolve_executor,
)

EXECUTORS = ("serial", "threads", "processes")


def _square(x):
    """Module-level so process pools can pickle it."""
    return x * x


def _pools_enabled_in_worker(_):
    """Reports whether the executing process would use persistent pools."""
    return pools_enabled()


def _light_models(seed):
    """Module-level model factory for process-executor comparison runs."""
    return [
        DPMHBPModel(seed=seed, n_sweeps=8, burn_in=3, n_chains=1),
        CoxPHModel(),
    ]


class TestExecutorConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(mode="gpu")

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(jobs=0)

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        config = resolve_executor()
        assert config.is_serial

    def test_env_jobs_implies_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        config = resolve_executor()
        assert config.mode == "threads"
        assert config.jobs == 3

    def test_env_mode_aliases(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        config = resolve_executor()
        assert config.mode == "processes"
        assert config.jobs >= 1

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        config = resolve_executor(jobs=2, mode="serial")
        assert config == ExecutorConfig(mode="serial", jobs=2)

    def test_bad_env_values_raise(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "two")
        with pytest.raises(ValueError):
            resolve_executor()
        monkeypatch.setenv("REPRO_JOBS", "2")
        monkeypatch.setenv("REPRO_EXECUTOR", "quantum")
        with pytest.raises(ValueError):
            resolve_executor()

    def test_explicit_zero_jobs_rejected_at_resolution(self):
        with pytest.raises(ValueError, match=r"got 0 \(from the jobs argument\)"):
            resolve_executor(jobs=0)

    def test_explicit_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match=r"got -2"):
            resolve_executor(jobs=-2, mode="threads")

    def test_env_zero_jobs_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        with pytest.raises(ValueError, match=r"from REPRO_JOBS=0"):
            resolve_executor()

    def test_rejection_message_points_at_serial(self):
        with pytest.raises(ValueError, match="mode='serial'"):
            resolve_executor(jobs=0)


class TestParallelMap:
    @pytest.mark.parametrize("mode", EXECUTORS)
    def test_order_preserved(self, mode):
        config = ExecutorConfig(mode=mode, jobs=2) if mode != "serial" else ExecutorConfig()
        assert parallel_map(_square, range(9), config) == [x * x for x in range(9)]

    def test_empty_input(self):
        assert parallel_map(_square, [], ExecutorConfig(mode="threads", jobs=2)) == []

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(lambda x: 1 // x, [1, 0], ExecutorConfig(mode="threads", jobs=2))

    def test_explicit_chunksize_accepted_on_every_backend(self):
        for mode in EXECUTORS:
            config = ExecutorConfig(mode=mode, jobs=2 if mode != "serial" else 1)
            assert parallel_map(_square, range(7), config, chunksize=3) == [
                x * x for x in range(7)
            ]


class TestPersistentPools:
    def test_chunksize_balances_waves(self):
        assert compute_chunksize(1, 4) == 1
        assert compute_chunksize(8, 2) == 1
        assert compute_chunksize(64, 2) == 8
        assert compute_chunksize(1000, 4) == 62

    def test_pool_reused_across_maps(self):
        assert pools_enabled()
        config = ExecutorConfig(mode="processes", jobs=2)
        before = pool_stats()
        parallel_map(_square, range(4), config)
        parallel_map(_square, range(4), config)
        after = pool_stats()
        # At least one of the two maps hit an existing pool (the first may
        # itself reuse a pool from an earlier test — that's the point).
        assert after["reused"] >= before["reused"] + 1
        assert after["created"] <= before["created"] + 1

    def test_workers_never_nest_persistent_pools(self):
        """Nested fan-out inside a worker must stay per-call.

        A persistent grandchild pool outlives its map and wedges the
        worker's interpreter shutdown (regression: `repro grid --executor
        processes` hung at exit because every cell's multi-chain DPMHBP
        fit built a persistent pool inside its worker).
        """
        config = ExecutorConfig(mode="processes", jobs=2)
        flags = parallel_map(_pools_enabled_in_worker, range(4), config, chunksize=1)
        assert flags == [False] * 4
        assert pools_enabled()  # the parent itself still reuses pools

    def test_pool_reuse_can_be_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_REUSE", "0")
        assert not pools_enabled()
        before = pool_stats()
        config = ExecutorConfig(mode="processes", jobs=2)
        assert parallel_map(_square, range(4), config) == [x * x for x in range(4)]
        # The per-call path never touches the registry.
        assert pool_stats() == before


@dataclass
class _ListyFeatureConfig(FeatureConfig):
    """A config variant with an unhashable (list-valued) field.

    ``astuple`` keeps the list as-is; the cache key must normalise it
    instead of crashing with ``TypeError: unhashable type: 'list'``.
    """

    extra_columns: tuple = ()
    column_list: list = field(default_factory=lambda: ["soil_ph", "traffic"])


class TestCacheKeyNormalisation:
    def test_list_valued_config_field_is_cacheable(self):
        clear_model_data_cache()
        config = _ListyFeatureConfig()
        a = cached_model_data("A", scale=0.05, seed=9, feature_config=config)
        b = cached_model_data(
            "A", scale=0.05, seed=9, feature_config=_ListyFeatureConfig()
        )
        assert a is b

    def test_different_list_contents_miss(self):
        clear_model_data_cache()
        a = cached_model_data(
            "A", scale=0.05, seed=9, feature_config=_ListyFeatureConfig()
        )
        b = cached_model_data(
            "A",
            scale=0.05,
            seed=9,
            feature_config=_ListyFeatureConfig(column_list=["soil_ph"]),
        )
        assert a is not b


class TestRegionCache:
    def test_same_key_same_object(self):
        clear_model_data_cache()
        a = cached_model_data("A", scale=0.05, seed=9)
        b = cached_model_data("A", scale=0.05, seed=9)
        assert a is b

    def test_seed_in_key(self):
        a = cached_model_data("A", scale=0.05, seed=9)
        b = cached_model_data("A", scale=0.05, seed=10)
        assert a is not b

    def test_prepare_region_data_uses_cache(self):
        a = prepare_region_data("A", scale=0.05, seed=9)
        b = prepare_region_data("A", scale=0.05, seed=9)
        assert a is b

    def test_clear(self):
        a = cached_model_data("A", scale=0.05, seed=9)
        clear_model_data_cache()
        assert cached_model_data("A", scale=0.05, seed=9) is not a

    def test_cached_arrays_reject_mutation(self):
        """The read-only contract is enforced, not just documented."""
        clear_model_data_cache()
        data = cached_model_data("A", scale=0.05, seed=9)
        with pytest.raises(ValueError, match="read-only"):
            data.X_pipe[0, 0] = 99.0
        with pytest.raises(ValueError, match="read-only"):
            data.pipe_fail_test[:] = 1.0

    def test_every_array_field_is_frozen(self):
        from dataclasses import fields

        clear_model_data_cache()
        data = cached_model_data("A", scale=0.05, seed=9)
        writable = [
            f.name
            for f in fields(data)
            if isinstance(getattr(data, f.name), np.ndarray)
            and getattr(data, f.name).flags.writeable
        ]
        assert writable == []


class TestChainDeterminism:
    """DPMHBP chains must not depend on how they were scheduled."""

    @pytest.fixture(scope="class")
    def fits(self, small_model_data):
        results = {}
        for mode in EXECUTORS:
            model = DPMHBPModel(
                n_sweeps=10, burn_in=3, seed=0, n_chains=2, jobs=2, executor=mode
            )
            results[mode] = model.fit(small_model_data)
        return results

    @pytest.mark.parametrize("mode", ["threads", "processes"])
    def test_identical_to_serial(self, fits, mode):
        serial, parallel = fits["serial"], fits[mode]
        assert np.array_equal(serial.posterior_.rho_mean, parallel.posterior_.rho_mean)
        assert np.array_equal(serial.posterior_.rho_std, parallel.posterior_.rho_std)
        for chain_s, chain_p in zip(serial.chain_posteriors_, parallel.chain_posteriors_):
            assert np.array_equal(chain_s.rho_mean, chain_p.rho_mean)
            assert np.array_equal(chain_s.last_assignments, chain_p.last_assignments)


class TestComparisonDeterminism:
    """run_comparison cells must not depend on how they were scheduled."""

    @pytest.fixture(scope="class")
    def comparisons(self):
        results = {}
        for mode in EXECUTORS:
            results[mode] = run_comparison(
                regions=("A", "B"),
                n_repeats=2,
                scale=0.08,
                models_factory=_light_models,
                jobs=2,
                executor=mode,
            )
        return results

    @pytest.mark.parametrize("mode", ["threads", "processes"])
    def test_identical_to_serial(self, comparisons, mode):
        serial, parallel = comparisons["serial"], comparisons[mode]
        assert serial.regions == parallel.regions
        for region in serial.regions:
            for model in serial.model_names():
                assert np.array_equal(
                    serial.auc_samples(region, model),
                    parallel.auc_samples(region, model),
                )
                assert np.array_equal(
                    serial.budget_samples(region, model),
                    parallel.budget_samples(region, model),
                )

    def test_rho_identical_across_executors(self, comparisons):
        """Raw DPMHBP scores (not just AUC) match bit-for-bit."""
        serial_run = comparisons["serial"].runs["A"][0]
        for mode in ("threads", "processes"):
            parallel_run = comparisons[mode].runs["A"][0]
            assert np.array_equal(
                serial_run.evaluations["DPMHBP"].scores,
                parallel_run.evaluations["DPMHBP"].scores,
            )
