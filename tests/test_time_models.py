"""Unit tests for the early age-only rate models."""

import numpy as np
import pytest

from repro.survival.time_models import (
    TimeExponentialModel,
    TimeLinearModel,
    TimePowerModel,
)


def synth(rng, rate_fn, n=4000):
    ages = rng.uniform(1.0, 70.0, n)
    lengths = rng.uniform(20.0, 300.0, n)
    counts = rng.poisson(rate_fn(ages) * lengths)
    return ages, counts, lengths


class TestTimeExponential:
    def test_recovers_growth_rate(self, rng):
        ages, counts, lengths = synth(rng, lambda a: 2e-5 * np.exp(0.05 * a))
        model = TimeExponentialModel().fit(ages, counts, lengths)
        # Slope of log-rate per year of age.
        slope = model.glm_.coef_[1]
        assert slope == pytest.approx(0.05, abs=0.01)

    def test_rate_positive(self, rng):
        ages, counts, lengths = synth(rng, lambda a: 1e-4 * np.ones_like(a))
        model = TimeExponentialModel().fit(ages, counts, lengths)
        assert np.all(model.rate(np.array([1.0, 50.0])) > 0)

    def test_expected_failures_scale_with_length(self, rng):
        ages, counts, lengths = synth(rng, lambda a: 1e-4 * np.exp(0.02 * a))
        model = TimeExponentialModel().fit(ages, counts, lengths)
        e1 = model.expected_failures(np.array([30.0]), np.array([100.0]))
        e2 = model.expected_failures(np.array([30.0]), np.array([200.0]))
        assert e2[0] == pytest.approx(2.0 * e1[0])


class TestTimePower:
    def test_recovers_exponent(self, rng):
        ages, counts, lengths = synth(rng, lambda a: 1e-6 * a**1.8)
        model = TimePowerModel().fit(ages, counts, lengths)
        assert model.glm_.coef_[1] == pytest.approx(1.8, abs=0.15)

    def test_rate_handles_zero_age(self, rng):
        ages, counts, lengths = synth(rng, lambda a: 1e-5 * a)
        model = TimePowerModel().fit(ages, counts, lengths)
        assert np.isfinite(model.rate(np.array([0.0]))[0])


class TestTimeLinear:
    def test_recovers_line(self, rng):
        ages, counts, lengths = synth(rng, lambda a: 1e-5 + 2e-6 * a, n=8000)
        model = TimeLinearModel().fit(ages, counts, lengths)
        assert model.slope_ == pytest.approx(2e-6, rel=0.3)
        assert model.intercept_ == pytest.approx(1e-5, abs=1.5e-5)

    def test_rate_floored_at_zero(self, rng):
        ages, counts, lengths = synth(rng, lambda a: 1e-5 * a)
        model = TimeLinearModel().fit(ages, counts, lengths)
        model.intercept_, model.slope_ = -1.0, 0.0
        assert np.all(model.rate(np.array([1.0])) == 0.0)

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            TimeLinearModel().rate(np.array([1.0]))


class TestValidation:
    @pytest.mark.parametrize(
        "model_cls", [TimeExponentialModel, TimePowerModel, TimeLinearModel]
    )
    def test_misaligned(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit(np.ones(3), np.ones(2), np.ones(3))

    @pytest.mark.parametrize(
        "model_cls", [TimeExponentialModel, TimePowerModel, TimeLinearModel]
    )
    def test_non_positive_lengths(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit(np.ones(2), np.ones(2), np.array([0.0, 1.0]))

    @pytest.mark.parametrize(
        "model_cls", [TimeExponentialModel, TimePowerModel, TimeLinearModel]
    )
    def test_negative_counts(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit(np.ones(2), np.array([-1.0, 1.0]), np.ones(2))
