"""Unit tests for the physical (domain-knowledge-driven) models."""

import numpy as np
import pytest

from repro.core.base import FailureModel
from repro.core.ranking.objective import empirical_auc
from repro.network.pipe import Material
from repro.physical.corrosion import (
    TwoPhasePitModel,
    degradation_ratio,
    wall_thickness_mm,
)
from repro.physical.model import PhysicalConditionModel


class TestPitModel:
    def test_two_phases(self):
        pit = TwoPhasePitModel(rapid_rate_mm_per_year=0.3, slow_rate_mm_per_year=0.02, transition_years=10.0)
        # Inside the rapid phase: linear at the rapid rate.
        assert pit.pit_depth_mm(np.array([5.0]))[0] == pytest.approx(1.5)
        # After transition: rapid contribution saturates.
        assert pit.pit_depth_mm(np.array([20.0]))[0] == pytest.approx(3.0 + 0.2)

    def test_monotone_in_age(self):
        pit = TwoPhasePitModel()
        ages = np.linspace(0, 100, 50)
        depths = pit.pit_depth_mm(ages)
        assert np.all(np.diff(depths) >= 0)

    def test_corrosivity_scales(self):
        pit = TwoPhasePitModel()
        mild = pit.pit_depth_mm(np.array([30.0]), 0.5)
        severe = pit.pit_depth_mm(np.array([30.0]), 3.0)
        assert severe[0] == pytest.approx(6.0 * mild[0])

    def test_negative_age_clipped(self):
        assert TwoPhasePitModel().pit_depth_mm(np.array([-5.0]))[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoPhasePitModel(rapid_rate_mm_per_year=-1.0)
        with pytest.raises(ValueError):
            TwoPhasePitModel(transition_years=0.0)


class TestWallAndRatio:
    def test_wall_grows_with_diameter(self):
        small = wall_thickness_mm(Material.CICL, 100.0)
        large = wall_thickness_mm(Material.CICL, 750.0)
        assert large > small

    def test_wall_positive_all_materials(self):
        for m in Material:
            assert wall_thickness_mm(m, 300.0) > 0

    def test_wall_rejects_bad_diameter(self):
        with pytest.raises(ValueError):
            wall_thickness_mm(Material.CICL, 0.0)

    def test_degradation_ratio_clipped(self):
        out = degradation_ratio(np.array([5.0, 50.0]), np.array([10.0, 10.0]))
        assert out.tolist() == [0.5, 1.0]

    def test_degradation_rejects_bad_wall(self):
        with pytest.raises(ValueError):
            degradation_ratio(np.array([1.0]), np.array([0.0]))


class TestPhysicalConditionModel:
    def test_is_a_failure_model(self):
        assert issubclass(PhysicalConditionModel, FailureModel)

    def test_fit_is_noop_and_chainable(self, small_model_data):
        model = PhysicalConditionModel()
        assert model.fit(small_model_data) is model

    def test_scores_shape_and_positive(self, small_model_data):
        scores = PhysicalConditionModel().fit_predict(small_model_data)
        assert scores.shape == (small_model_data.n_pipes,)
        assert np.all(scores >= 0)

    def test_no_training_identical_scores_for_any_labels(self, small_model_data):
        """The defining property: the model never looks at failure data."""
        from dataclasses import replace

        md = small_model_data
        scrambled = replace(
            md,
            pipe_fail_train=1 - md.pipe_fail_train,
            pipe_fail_test=1 - md.pipe_fail_test,
        )
        a = PhysicalConditionModel().fit_predict(md)
        b = PhysicalConditionModel().fit_predict(scrambled)
        assert np.array_equal(a, b)

    def test_old_ferrous_in_corrosive_soil_scores_high(self, small_model_data):
        md = small_model_data
        scores = PhysicalConditionModel().fit_predict(md)
        ages = md.pipe_ages(md.test_year)
        ferrous = np.asarray([m in ("CI", "CICL", "DICL", "STEEL") for m in md.pipe_material])
        old_ferrous = ferrous & (ages > np.median(ages))
        young_plastic = ~ferrous & (ages <= np.median(ages))
        if old_ferrous.any() and young_plastic.any():
            assert scores[old_ferrous].mean() > scores[young_plastic].mean()

    def test_beats_chance_but_not_required_to_beat_learned(self, small_model_data):
        md = small_model_data
        scores = PhysicalConditionModel().fit_predict(md)
        auc = empirical_auc(scores, md.pipe_fail_test)
        assert auc > 0.45  # structured, but it only sees a few aspects
