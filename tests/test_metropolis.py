"""Unit tests for Metropolis steps and adaptation."""

import numpy as np
import pytest
from scipy import stats

from repro.inference.metropolis import (
    AcceptanceTracker,
    AdaptiveScale,
    expit,
    logit,
    metropolis_probability_step,
    metropolis_step,
)


class TestLogitExpit:
    def test_round_trip(self):
        for p in [0.01, 0.3, 0.5, 0.99]:
            assert expit(logit(p)) == pytest.approx(p)

    def test_logit_rejects_boundary(self):
        with pytest.raises(ValueError):
            logit(0.0)
        with pytest.raises(ValueError):
            logit(1.0)

    def test_expit_extremes_stable(self):
        assert expit(1000.0) == pytest.approx(1.0)
        assert expit(-1000.0) == pytest.approx(0.0)


class TestAdaptiveScale:
    def test_increases_on_accepts(self):
        s = AdaptiveScale(scale=0.5)
        for _ in range(50):
            s.update(True)
        assert s.scale > 0.5

    def test_decreases_on_rejects(self):
        s = AdaptiveScale(scale=0.5)
        for _ in range(50):
            s.update(False)
        assert s.scale < 0.5

    def test_freeze_stops_adaptation(self):
        s = AdaptiveScale(scale=0.5)
        s.freeze()
        for _ in range(20):
            s.update(True)
        assert s.scale == 0.5

    def test_bounded(self):
        s = AdaptiveScale(scale=1.0)
        for _ in range(10000):
            s.update(True)
        assert s.scale <= 1e4


class TestAcceptanceTracker:
    def test_rate(self):
        t = AcceptanceTracker()
        t.record(True)
        t.record(False)
        assert t.rate == 0.5

    def test_empty_rate_zero(self):
        assert AcceptanceTracker().rate == 0.0


class TestMetropolisStep:
    def test_targets_standard_normal(self, rng):
        log_target = stats.norm.logpdf
        x, logp = 0.0, log_target(0.0)
        samples = []
        for _ in range(6000):
            x, logp, _ = metropolis_step(x, log_target, 2.4, rng, current_logp=logp)
            samples.append(x)
        samples = np.asarray(samples[1000:])
        assert samples.mean() == pytest.approx(0.0, abs=0.1)
        assert samples.std() == pytest.approx(1.0, abs=0.12)

    def test_always_accepts_uphill_flat(self, rng):
        # Constant target: every proposal accepted.
        accepted = [
            metropolis_step(0.0, lambda _x: 0.0, 1.0, rng)[2] for _ in range(100)
        ]
        assert all(accepted)


class TestMetropolisProbabilityStep:
    def test_targets_beta(self, rng):
        """Logit-walk MH with Jacobian samples the stated Beta density."""
        a, b = 2.0, 5.0

        def log_target(p: float) -> float:
            return float(stats.beta.logpdf(p, a, b))

        p = 0.5
        samples = []
        for _ in range(12000):
            p, _ = metropolis_probability_step(p, log_target, 1.0, rng)
            samples.append(p)
        samples = np.asarray(samples[2000:])
        assert samples.mean() == pytest.approx(a / (a + b), abs=0.02)
        assert samples.var() == pytest.approx(stats.beta.var(a, b), rel=0.2)

    def test_stays_in_unit_interval(self, rng):
        p = 0.001
        for _ in range(200):
            p, _ = metropolis_probability_step(p, lambda _p: 0.0, 3.0, rng)
            assert 0.0 < p < 1.0
