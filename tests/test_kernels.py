"""Unit tests for kernel Gram matrices."""

import numpy as np
import pytest

from repro.ml.kernels import linear_kernel, polynomial_kernel, rbf_kernel


class TestLinearKernel:
    def test_matches_dot(self, rng):
        X = rng.standard_normal((5, 3))
        assert np.allclose(linear_kernel(X), X @ X.T)

    def test_rectangular(self, rng):
        X = rng.standard_normal((4, 3))
        Y = rng.standard_normal((2, 3))
        assert linear_kernel(X, Y).shape == (4, 2)


class TestRBFKernel:
    def test_diagonal_is_one(self, rng):
        X = rng.standard_normal((6, 4))
        assert np.allclose(np.diag(rbf_kernel(X, gamma=0.5)), 1.0)

    def test_symmetry_and_psd(self, rng):
        X = rng.standard_normal((10, 3))
        K = rbf_kernel(X, gamma=1.0)
        assert np.allclose(K, K.T)
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-9

    def test_distance_decay(self):
        X = np.array([[0.0], [1.0], [10.0]])
        K = rbf_kernel(X, gamma=1.0)
        assert K[0, 1] > K[0, 2]

    def test_explicit_value(self):
        K = rbf_kernel(np.array([[0.0]]), np.array([[2.0]]), gamma=0.25)
        assert K[0, 0] == pytest.approx(np.exp(-1.0))

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.ones((2, 1)), gamma=0.0)


class TestPolynomialKernel:
    def test_degree_one_is_affine_linear(self, rng):
        X = rng.standard_normal((4, 2))
        assert np.allclose(polynomial_kernel(X, degree=1, coef0=0.0), X @ X.T)

    def test_explicit_quadratic(self):
        X = np.array([[1.0, 1.0]])
        K = polynomial_kernel(X, degree=2, coef0=1.0)
        assert K[0, 0] == pytest.approx(9.0)  # (2 + 1)^2

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            polynomial_kernel(np.ones((2, 1)), degree=0)
