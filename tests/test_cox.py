"""Unit tests for the from-scratch Cox proportional hazards model."""

import numpy as np
import pytest

from repro.survival.cox import CoxPH


def simulate_cox(rng, n=600, beta=(0.8, -0.5), base_rate=0.05, horizon=30.0):
    X = rng.standard_normal((n, len(beta)))
    rate = base_rate * np.exp(X @ np.asarray(beta))
    t = rng.exponential(1.0 / rate)
    exit_time = np.minimum(t, horizon)
    event = (t <= horizon).astype(float)
    return X, exit_time, event


class TestFitting:
    def test_recovers_signs_and_magnitudes(self, rng):
        X, t, e = simulate_cox(rng)
        model = CoxPH(l2=1e-6).fit(X, t, e)
        assert model.coef_[0] == pytest.approx(0.8, abs=0.2)
        assert model.coef_[1] == pytest.approx(-0.5, abs=0.2)

    def test_efron_close_to_breslow_few_ties(self, rng):
        X, t, e = simulate_cox(rng, n=300)
        b = CoxPH(ties="breslow").fit(X, t, e).coef_
        f = CoxPH(ties="efron").fit(X, t, e).coef_
        assert np.allclose(b, f, atol=0.05)

    def test_heavy_ties_still_converges(self, rng):
        X, t, e = simulate_cox(rng, n=400)
        t = np.ceil(t)  # year-resolution ties, like pipe data
        model = CoxPH().fit(X, t, e)
        assert np.isfinite(model.coef_).all()
        assert model.coef_[0] > 0.3

    def test_no_events_flat_model(self, rng):
        X = rng.standard_normal((50, 2))
        model = CoxPH().fit(X, np.full(50, 10.0), np.zeros(50))
        assert np.allclose(model.coef_, 0.0)
        risk = model.interval_failure_probability(X, np.full(50, 5.0), np.full(50, 6.0))
        assert np.allclose(risk, 0.0)

    def test_invalid_tie_method(self):
        with pytest.raises(ValueError):
            CoxPH(ties="exact").fit(np.ones((3, 1)), np.ones(3), np.ones(3))

    def test_misaligned_inputs(self, rng):
        with pytest.raises(ValueError):
            CoxPH().fit(np.ones((3, 1)), np.ones(2), np.ones(3))

    def test_non_binary_event(self):
        with pytest.raises(ValueError):
            CoxPH().fit(np.ones((2, 1)), np.ones(2), np.array([0.5, 1.0]))


class TestLeftTruncation:
    def test_truncation_shifts_risk_sets(self, rng):
        """With entry times, early event times only see early entrants."""
        X, t, e = simulate_cox(rng, n=500)
        entry = rng.uniform(0.0, 5.0, 500)
        exit_time = np.maximum(t, entry + 0.1)
        model = CoxPH().fit(X, exit_time, e, entry_time=entry)
        assert np.isfinite(model.coef_).all()

    def test_truncated_fit_consistent(self, rng):
        """Left-truncated fit still recovers the positive effect direction."""
        X, t, e = simulate_cox(rng, n=800, beta=(1.0,))
        entry = np.full(800, 0.5)
        keep = t > 0.5  # observed only if survived to entry
        model = CoxPH().fit(X[keep], t[keep], e[keep], entry_time=entry[keep])
        assert model.coef_[0] > 0.5


class TestPrediction:
    def test_baseline_monotone(self, rng):
        X, t, e = simulate_cox(rng)
        model = CoxPH().fit(X, t, e)
        grid = np.linspace(0, 30, 20)
        H = model.cumulative_baseline(grid)
        assert np.all(np.diff(H) >= 0)

    def test_relative_risk_orders_predictions(self, rng):
        X, t, e = simulate_cox(rng, beta=(1.0,))
        model = CoxPH().fit(X, t, e)
        low = model.interval_failure_probability(np.array([[-2.0]]), np.array([5.0]), np.array([6.0]))
        high = model.interval_failure_probability(np.array([[2.0]]), np.array([5.0]), np.array([6.0]))
        assert high[0] > low[0]

    def test_probabilities_in_unit_interval(self, rng):
        X, t, e = simulate_cox(rng)
        model = CoxPH().fit(X, t, e)
        p = model.interval_failure_probability(X, np.full(len(X), 3.0), np.full(len(X), 4.0))
        assert np.all((p >= 0) & (p <= 1))

    def test_extrapolation_beyond_last_event_nonzero(self, rng):
        X, t, e = simulate_cox(rng, n=300)
        model = CoxPH().fit(X, t, e)
        p = model.interval_failure_probability(
            X[:5], np.full(5, 100.0), np.full(5, 101.0)
        )
        assert np.all(p > 0)

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            CoxPH().relative_risk(np.ones((1, 1)))
