"""The fault-tolerant run subsystem: specs, journal, faults, resume.

The two acceptance properties the suite pins down:

* a grid killed after ≥1 completed cell and resumed via ``resume=`` yields
  a :class:`ComparisonResult` *bit-identical* to an uninterrupted run;
* a :class:`FaultInjector`-killed cell under ``on_error="retry"`` completes
  the grid without manual intervention.
"""

import json
import time

import numpy as np
import pytest

from repro.core.survival_models import CoxPHModel, TimeRateModel
from repro.eval.experiment import (
    ModelEvaluation,
    NoTestFailuresError,
    RegionRun,
    run_comparison,
)
from repro.parallel import ExecutorConfig, safe_parallel_map
from repro.runs import (
    CancelToken,
    CellAbandonedError,
    CellExecutionError,
    CellSpec,
    CellTimeoutError,
    CheckpointCorruptError,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    JournalError,
    RunJournal,
    RunPolicy,
    call_with_timeout,
    config_fingerprint,
    execute_cell,
)


def _light_models(seed):
    """Module-level model factory (picklable; cheap enough for grid tests)."""
    return [CoxPHModel(), TimeRateModel(kind="exponential")]


def _grid(**kwargs):
    """One-region, three-repeat grid with the light line-up."""
    defaults = dict(
        regions=("A",), n_repeats=3, scale=0.05, models_factory=_light_models
    )
    defaults.update(kwargs)
    return run_comparison(**defaults)


def _make_region_run(seed=0, n=50, models=("Cox", "TimeExp")):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.2).astype(float)
    run = RegionRun(
        region="A", seed=seed, labels=labels, pipe_lengths=rng.uniform(1, 9, n)
    )
    for name in models:
        run.evaluations[name] = ModelEvaluation(
            model_name=name,
            scores=rng.standard_normal(n),
            auc=float(rng.random()),
            auc_budget_permyriad=float(10 * rng.random()),
        )
    return run


def assert_results_identical(a, b):
    """Bit-for-bit equality of two ComparisonResults (same grid)."""
    assert a.regions == b.regions
    for region in a.regions:
        assert len(a.runs[region]) == len(b.runs[region])
        for run_a, run_b in zip(a.runs[region], b.runs[region]):
            assert run_a.seed == run_b.seed
            assert np.array_equal(run_a.labels, run_b.labels)
            assert np.array_equal(run_a.pipe_lengths, run_b.pipe_lengths)
            assert list(run_a.evaluations) == list(run_b.evaluations)
            for name in run_a.evaluations:
                ev_a, ev_b = run_a.evaluations[name], run_b.evaluations[name]
                assert np.array_equal(ev_a.scores, ev_b.scores)
                assert ev_a.auc == ev_b.auc  # exact, not approx
                assert ev_a.auc_budget_permyriad == ev_b.auc_budget_permyriad


class TestCellSpec:
    def test_cell_id(self):
        assert CellSpec(region="B", repeat=7).cell_id == "B-r007"

    def test_legacy_tuple_shim(self):
        task = ("A", 2, 1002, 0.1, 0.01, True, None, _light_models)
        spec = CellSpec.from_task(task)
        assert spec == CellSpec(
            region="A",
            repeat=2,
            seed=1002,
            scale=0.1,
            budget=0.01,
            fast=True,
            feature_config=None,
            models_factory=_light_models,
        )
        assert CellSpec.from_task(spec) is spec

    def test_reseeded_is_deterministic_and_keeps_identity(self):
        spec = CellSpec(region="A", repeat=1, seed=11)
        assert spec.reseeded(1) == spec.reseeded(1)
        assert spec.reseeded(1).seed != spec.seed
        assert spec.reseeded(1).cell_id == spec.cell_id

    def test_identity_is_json_able(self):
        spec = CellSpec(region="A", repeat=0, models_factory=_light_models)
        blob = json.dumps(spec.identity())
        assert "_light_models" in blob


class TestSafeParallelMap:
    def test_captures_errors_without_aborting_siblings(self):
        def flaky(x):
            if x == 2:
                raise RuntimeError("boom")
            return x * 10

        results = safe_parallel_map(flaky, [1, 2, 3])
        assert [r.ok for r in results] == [True, False, True]
        assert results[0].unwrap() == 10
        assert results[1].error_type == "RuntimeError"
        assert "boom" in results[1].error
        with pytest.raises(Exception, match="boom"):
            results[1].unwrap()

    def test_process_pool_envelopes_are_picklable(self):
        results = safe_parallel_map(
            _module_level_inverse,
            [2.0, 0.0, 4.0],
            ExecutorConfig(mode="processes", jobs=2),
        )
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error_type == "ZeroDivisionError"
        assert results[2].unwrap() == 0.25


def _module_level_inverse(x):
    return 1.0 / x


class TestRunJournal:
    def test_create_open_roundtrip(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", {"a": 1})
        reopened = RunJournal.open(tmp_path / "run")
        assert reopened.fingerprint == journal.fingerprint
        reopened.check_config({"a": 1})
        with pytest.raises(JournalError, match="does not match"):
            reopened.check_config({"a": 2})

    def test_create_refuses_different_run(self, tmp_path):
        RunJournal.create(tmp_path / "run", {"a": 1})
        with pytest.raises(JournalError, match="different configuration"):
            RunJournal.create(tmp_path / "run", {"a": 2})
        # Identical config is an idempotent restart, not an error.
        RunJournal.create(tmp_path / "run", {"a": 1})

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(JournalError, match="not a run directory"):
            RunJournal.open(tmp_path)

    def test_cell_checkpoint_bit_identical(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=0, seed=3)
        run = _make_region_run(seed=3)
        journal.save_cell(spec, run)
        assert journal.cell_done(spec.cell_id)
        loaded = journal.load_cell(spec)
        assert loaded.seed == run.seed
        assert list(loaded.evaluations) == list(run.evaluations)
        for name in run.evaluations:
            assert np.array_equal(loaded.evaluations[name].scores, run.evaluations[name].scores)
            assert loaded.evaluations[name].auc == run.evaluations[name].auc

    def test_truncated_npz_detected(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=0)
        journal.save_cell(spec, _make_region_run())
        npz = tmp_path / "run" / "cells" / "A-r000.npz"
        npz.write_bytes(npz.read_bytes()[:100])
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            journal.load_cell(spec)
        assert journal.load_completed([spec]) == {}

    def test_unparsable_metadata_detected(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=0)
        journal.save_cell(spec, _make_region_run())
        (tmp_path / "run" / "cells" / "A-r000.json").write_text("{not json")
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            journal.load_cell(spec)

    def test_partial_checkpoint_is_not_done(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=0)
        journal.save_cell(spec, _make_region_run())
        (tmp_path / "run" / "cells" / "A-r000.npz").unlink()
        assert not journal.cell_done(spec.cell_id)
        with pytest.raises(CheckpointCorruptError, match="incomplete"):
            journal.load_cell(spec)

    def test_failure_record_and_events(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=1)
        journal.record_failure(spec, error="tb", error_type="RuntimeError", attempts=3)
        assert journal.failed_cells()["A-r001"]["error_type"] == "RuntimeError"
        journal.log_event("cell_failed", cell="A-r001")
        assert journal.events()[-1]["event"] == "cell_failed"

    def test_fingerprint_canonical(self):
        assert config_fingerprint({"b": 1, "a": 2}) == config_fingerprint({"a": 2, "b": 1})
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})


class TestFaultInjector:
    def test_trips_bounded_by_times(self, tmp_path):
        injector = FaultInjector(
            state_dir=str(tmp_path), plan={"A-r000": FaultSpec(kind="raise", times=2)}
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.trip("A-r000")
        injector.trip("A-r000")  # charge exhausted: clean
        assert injector.trips("A-r000") == 2
        injector.trip("B-r000")  # not in the plan: inert

    def test_reset(self, tmp_path):
        injector = FaultInjector(
            state_dir=str(tmp_path), plan={"A-r000": FaultSpec(times=1)}
        )
        with pytest.raises(InjectedFault):
            injector.trip("A-r000")
        injector.reset()
        with pytest.raises(InjectedFault):
            injector.trip("A-r000")

    def test_no_failures_kind(self, tmp_path):
        injector = FaultInjector(
            state_dir=str(tmp_path), plan={"A-r000": FaultSpec(kind="no-failures")}
        )
        with pytest.raises(NoTestFailuresError):
            injector.trip("A-r000")

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(times=0)


class TestCallWithTimeout:
    def test_passthrough_without_timeout(self):
        assert call_with_timeout(lambda: 7, None) == 7

    def test_times_out(self):
        with pytest.raises(CellTimeoutError):
            call_with_timeout(lambda: time.sleep(5), timeout=0.05)

    def test_propagates_exceptions(self):
        def boom():
            raise KeyError("x")

        with pytest.raises(KeyError):
            call_with_timeout(boom, timeout=5.0)

    def test_timeout_cancels_token_before_raising(self):
        token = CancelToken()
        with pytest.raises(CellTimeoutError):
            call_with_timeout(lambda: time.sleep(5), timeout=0.05, cancel=token)
        assert token.cancelled

    def test_success_leaves_token_clear(self):
        token = CancelToken()
        assert call_with_timeout(lambda: 3, timeout=5.0, cancel=token) == 3
        assert not token.cancelled

    def test_cancel_token_is_sticky(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled


def _instant_run(spec):
    """Module-level compute for execute_cell tests (fast, deterministic)."""
    return _make_region_run(seed=spec.seed or 0)


class TestAbandonedCheckpointGuard:
    """A timed-out cell's daemon thread must never checkpoint as completed."""

    def test_save_cell_refuses_abandoned_at_entry(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=0)
        with pytest.raises(CellAbandonedError, match="suppressed"):
            journal.save_cell(spec, _make_region_run(), abandoned=lambda: True)
        assert not journal.cell_done("A-r000")
        assert not list((tmp_path / "run" / "cells").glob("A-r000.*"))

    def test_mid_checkpoint_abandonment_withholds_marker(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=0)
        # Entry check passes; the re-check before the completion marker trips
        # (the grid abandoned the cell while the npz was being written).
        flips = iter([False, True])
        with pytest.raises(CellAbandonedError, match="marker withheld"):
            journal.save_cell(spec, _make_region_run(), abandoned=lambda: next(flips))
        assert not journal.cell_done("A-r000")
        assert not (tmp_path / "run" / "cells" / "A-r000.npz").exists()

    def test_save_cell_without_guard_unchanged(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=0)
        journal.save_cell(spec, _make_region_run(), abandoned=lambda: False)
        assert journal.cell_done("A-r000")

    def test_timed_out_cell_cannot_complete_late(self, tmp_path):
        """Regression for the timeout/checkpoint race: the abandoned body
        finishes in the background but must not flip failed → done."""
        injector = FaultInjector(
            state_dir=str(tmp_path / "faults"),
            plan={"A-r000": FaultSpec(kind="sleep", times=5, delay=0.4)},
        )
        policy = RunPolicy(
            on_error="skip", cell_timeout=0.05, fault_injector=injector
        )
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=0, seed=0)
        outcome = execute_cell((spec, _instant_run, str(tmp_path / "run"), policy))
        assert not outcome.ok
        assert outcome.error_type == "CellTimeoutError"
        assert "A-r000" in journal.failed_cells()
        # Give the abandoned daemon thread ample time to wake up and finish …
        time.sleep(0.8)
        # … the failure verdict must stand: no late completion marker.
        assert not journal.cell_done("A-r000")
        assert "A-r000" in journal.failed_cells()

    def test_retry_after_timeout_still_checkpoints(self, tmp_path):
        """A fresh attempt of the same cell is not poisoned by the old token."""
        injector = FaultInjector(
            state_dir=str(tmp_path / "faults"),
            plan={"A-r000": FaultSpec(kind="sleep", times=1, delay=0.4)},
        )
        policy = RunPolicy(
            on_error="retry", retries=1, cell_timeout=0.05, fault_injector=injector
        )
        journal = RunJournal.create(tmp_path / "run", {})
        spec = CellSpec(region="A", repeat=0, seed=0)
        outcome = execute_cell((spec, _instant_run, str(tmp_path / "run"), policy))
        assert outcome.ok and outcome.attempts == 2
        assert journal.cell_done("A-r000")
        time.sleep(0.8)  # the first attempt's straggler changes nothing
        assert journal.cell_done("A-r000")


class TestGridFaultTolerance:
    @pytest.fixture(scope="class")
    def clean(self):
        """The uninterrupted reference grid."""
        return _grid()

    def test_resume_after_kill_bit_identical(self, tmp_path, clean):
        injector = FaultInjector(
            state_dir=str(tmp_path / "faults"),
            plan={"A-r002": FaultSpec(kind="raise", times=1)},
        )
        with pytest.raises(CellExecutionError, match="A-r002"):
            _grid(run_dir=tmp_path / "run", fault_injector=injector)
        # The kill landed mid-grid: earlier cells are already checkpointed.
        journal = RunJournal.open(tmp_path / "run")
        assert {"A-r000", "A-r001"} <= journal.completed_cells()
        assert "A-r002" in journal.failed_cells()
        resumed = _grid(resume=tmp_path / "run")
        assert_results_identical(resumed, clean)
        assert journal.completed_cells() == {"A-r000", "A-r001", "A-r002"}

    def test_retry_completes_grid_unattended(self, tmp_path, clean):
        injector = FaultInjector(
            state_dir=str(tmp_path / "faults"),
            plan={"A-r001": FaultSpec(kind="raise", times=1)},
        )
        result = _grid(
            run_dir=tmp_path / "run", fault_injector=injector, on_error="retry"
        )
        assert not result.failures
        assert_results_identical(result, clean)  # transient retry reruns the same seed

    def test_skip_isolates_failures(self, tmp_path):
        injector = FaultInjector(
            state_dir=str(tmp_path / "faults"),
            plan={"A-r001": FaultSpec(kind="raise", times=99)},
        )
        with pytest.warns(UserWarning, match="A-r001"):
            result = _grid(fault_injector=injector, on_error="skip")
        assert len(result.runs["A"]) == 2
        assert [o.spec.cell_id for o in result.failures] == ["A-r001"]
        assert result.failures[0].error_type == "InjectedFault"

    def test_retry_reseeds_degenerate_region(self, tmp_path):
        injector = FaultInjector(
            state_dir=str(tmp_path / "faults"),
            plan={"A-r001": FaultSpec(kind="no-failures", times=1)},
        )
        result = _grid(
            run_dir=tmp_path / "run", fault_injector=injector, on_error="retry"
        )
        assert not result.failures
        # The degenerate cell reran on a deterministically derived seed.
        original = CellSpec(region="A", repeat=1, seed=1001)
        assert result.runs["A"][1].seed == original.reseeded(1).seed

    def test_soft_timeout_with_retry(self, tmp_path):
        injector = FaultInjector(
            state_dir=str(tmp_path / "faults"),
            plan={"A-r000": FaultSpec(kind="sleep", times=1, delay=30.0)},
        )
        result = _grid(
            fault_injector=injector,
            on_error="retry",
            cell_timeout=4.0,
            run_dir=tmp_path / "run",
        )
        assert not result.failures
        events = RunJournal.open(tmp_path / "run").events()
        timeouts = [e for e in events if e.get("error_type") == "CellTimeoutError"]
        assert len(timeouts) == 1

    def test_resume_rejects_changed_config(self, tmp_path):
        _grid(n_repeats=2, run_dir=tmp_path / "run")
        with pytest.raises(JournalError, match="does not match"):
            _grid(n_repeats=3, resume=tmp_path / "run")

    def test_corrupt_checkpoint_recomputed_on_resume(self, tmp_path, clean):
        _grid(run_dir=tmp_path / "run")
        npz = tmp_path / "run" / "cells" / "A-r001.npz"
        npz.write_bytes(npz.read_bytes()[:50])
        resumed = _grid(resume=tmp_path / "run")
        assert_results_identical(resumed, clean)

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            _grid(on_error="explode")

    def test_journal_events_cover_lifecycle(self, tmp_path):
        _grid(n_repeats=1, run_dir=tmp_path / "run")
        kinds = [e["event"] for e in RunJournal.open(tmp_path / "run").events()]
        assert kinds[0] == "run_started"
        assert "cell_completed" in kinds
        assert kinds[-1] == "run_completed"


class TestChainCheckpoints:
    """Chain-level checkpoint/restore of DPMHBP sampler state."""

    def _model(self, checkpoint_dir):
        from repro.core.dpmhbp import DPMHBPModel

        return DPMHBPModel(
            n_sweeps=6, burn_in=2, n_chains=2, seed=0, checkpoint_dir=str(checkpoint_dir)
        )

    def test_restore_is_bit_identical(self, tmp_path, small_model_data):
        first = self._model(tmp_path).fit(small_model_data)
        assert sorted(p.name for p in tmp_path.glob("chain_*.npz")) == [
            "chain_0.npz",
            "chain_1.npz",
        ]
        restored = self._model(tmp_path).fit(small_model_data)
        assert np.array_equal(first.posterior_.rho_mean, restored.posterior_.rho_mean)
        assert np.array_equal(first.posterior_.rho_std, restored.posterior_.rho_std)
        assert first.posterior_.accept_rate_q == restored.posterior_.accept_rate_q

    def test_corrupt_chain_checkpoint_refits(self, tmp_path, small_model_data):
        first = self._model(tmp_path).fit(small_model_data)
        ckpt = tmp_path / "chain_1.npz"
        ckpt.write_bytes(ckpt.read_bytes()[:40])
        refit = self._model(tmp_path).fit(small_model_data)
        # The corrupt chain was silently refit (same seed → same result) and
        # its checkpoint rewritten to a loadable state.
        assert np.array_equal(first.posterior_.rho_mean, refit.posterior_.rho_mean)
        from repro.core.dpmhbp import DPMHBPPosterior

        DPMHBPPosterior.load(ckpt)  # must not raise any more

    def test_posterior_save_load_roundtrip(self, tmp_path, small_model_data):
        from repro.core.dpmhbp import DPMHBPPosterior

        model = self._model(tmp_path / "unused").fit(small_model_data)
        posterior = model.chain_posteriors_[0]
        path = posterior.save(tmp_path / "p.npz")
        loaded = DPMHBPPosterior.load(path)
        assert np.array_equal(loaded.rho_mean, posterior.rho_mean)
        assert np.array_equal(loaded.last_assignments, posterior.last_assignments)
        assert loaded.accept_rate_q == posterior.accept_rate_q

    def test_load_rejects_garbage(self, tmp_path):
        from repro.core.dpmhbp import DPMHBPPosterior

        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(ValueError, match="corrupt"):
            DPMHBPPosterior.load(path)
