"""Unit tests for paper-style table formatting."""

import numpy as np
import pytest

from repro.eval.reporting import binned_rate_table, format_table, table_18_1


class TestFormatTable:
    def test_layout(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].startswith("a")
        assert "--" in lines[1]

    def test_column_alignment(self):
        out = format_table(["col"], [["x"], ["longer"]])
        lines = out.splitlines()
        assert len(lines[2]) <= len(lines[3])


class TestTable181:
    def test_contains_region_rows(self, tiny_dataset):
        out = table_18_1([tiny_dataset])
        assert "Region A" in out
        assert "CWM" in out
        assert "1998-2009" in out

    def test_counts_match_dataset(self, tiny_dataset):
        out = table_18_1([tiny_dataset])
        assert str(tiny_dataset.network.n_pipes) in out
        assert str(len(tiny_dataset.failures)) in out


class TestBinnedRates:
    def test_monotone_relationship_recovered(self, rng):
        """A rate truly increasing in the value shows increasing bins."""
        n = 20000
        values = rng.random(n)
        exposure = np.ones(n)
        failures = (rng.random(n) < 0.02 + 0.2 * values).astype(float)
        _table, centres, rates = binned_rate_table(values, failures, exposure, n_bins=5)
        assert np.all(np.diff(centres) > 0)
        assert rates[-1] > rates[0]
        # Spearman-like check: bins mostly increasing.
        assert np.sum(np.diff(rates) > 0) >= 3

    def test_table_text(self, rng):
        values = rng.random(500)
        failures = (rng.random(500) < 0.1).astype(float)
        table, _, _ = binned_rate_table(values, failures, np.ones(500), n_bins=4, value_name="canopy")
        assert "canopy" in table
        assert "rate" in table

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            binned_rate_table(np.ones(3), np.ones(2), np.ones(3))

    def test_exposure_weighting(self):
        values = np.array([0.1, 0.1, 0.9, 0.9])
        failures = np.array([1.0, 0.0, 1.0, 1.0])
        exposure = np.array([10.0, 10.0, 1.0, 1.0])
        _t, _c, rates = binned_rate_table(values, failures, exposure, n_bins=2)
        assert rates[0] == pytest.approx(1.0 / 20.0)
        assert rates[1] == pytest.approx(1.0)
