"""Unit tests for fixed grouping schemes."""

import numpy as np
import pytest

from repro.core.grouping import (
    GROUPINGS,
    fixed_grouping,
    group_by_diameter,
    group_by_laid_year,
    group_by_material,
    segment_grouping,
)


class TestGroupings:
    def test_material_groups_match_materials(self, small_model_data):
        labels = group_by_material(small_model_data)
        mats = np.asarray(small_model_data.pipe_material)
        for m in set(small_model_data.pipe_material):
            group_vals = set(labels[mats == m])
            assert len(group_vals) == 1

    def test_diameter_bands_ordered(self, small_model_data):
        labels = group_by_diameter(small_model_data)
        d = small_model_data.pipe_diameter
        # Larger diameters never get a smaller band index.
        order = np.argsort(d)
        assert np.all(np.diff(labels[order]) >= 0)

    def test_laid_year_decades(self, small_model_data):
        labels = group_by_laid_year(small_model_data, decade=10)
        years = small_model_data.pipe_laid_year
        same_decade = (years // 10) == (years // 10)[0]
        assert len(set(labels[same_decade])) == 1

    def test_laid_year_width_validation(self, small_model_data):
        with pytest.raises(ValueError):
            group_by_laid_year(small_model_data, decade=0)

    @pytest.mark.parametrize("scheme", GROUPINGS)
    def test_fixed_grouping_dense_labels(self, small_model_data, scheme):
        labels = fixed_grouping(small_model_data, scheme)
        k = labels.max() + 1
        assert set(labels) == set(range(k))
        assert labels.shape == (small_model_data.n_pipes,)

    def test_unknown_scheme(self, small_model_data):
        with pytest.raises(ValueError):
            fixed_grouping(small_model_data, "colour")

    def test_segment_grouping_broadcasts(self, small_model_data):
        pipe_labels = fixed_grouping(small_model_data, "material")
        seg_labels = segment_grouping(small_model_data, "material")
        assert np.array_equal(seg_labels, pipe_labels[small_model_data.seg_pipe_idx])
