"""Unit tests for Table 18.2 feature assembly."""

import numpy as np
import pytest

from repro.features.builder import FeatureConfig, build_model_data


class TestShapesAndAlignment:
    def test_matrix_shapes(self, small_model_data):
        md = small_model_data
        assert md.X_pipe.shape == (md.n_pipes, len(md.feature_names))
        assert md.X_seg.shape == (md.n_segments, len(md.feature_names))
        assert md.seg_pipe_idx.shape == (md.n_segments,)
        assert md.seg_pipe_idx.max() == md.n_pipes - 1

    def test_failure_split_shapes(self, small_model_data):
        md = small_model_data
        assert md.pipe_fail_train.shape == (md.n_pipes, 11)
        assert md.seg_fail_train.shape == (md.n_segments, 11)
        assert md.pipe_fail_test.shape == (md.n_pipes,)

    def test_feature_vocabulary(self, small_model_data):
        names = small_model_data.feature_names
        assert any(n.startswith("material=") for n in names)
        assert any(n.startswith("coating=") for n in names)
        assert "diameter_mm" in names
        assert "log_length_m" in names
        assert any(n.startswith("soil_corrosiveness=") for n in names)
        assert "dist_to_intersection_m" in names

    def test_segment_inherits_pipe_attributes(self, small_model_data, tiny_dataset):
        md = small_model_data
        col = md.feature_names.index("diameter_mm")
        # Segment diameter column equals its pipe's column value.
        assert np.allclose(md.X_seg[:, col], md.X_pipe[md.seg_pipe_idx, col])

    def test_continuous_standardised(self, small_model_data):
        md = small_model_data
        col = md.feature_names.index("diameter_mm")
        pooled = np.concatenate([md.X_seg[:, col], md.X_pipe[:, col]])
        assert abs(pooled.mean()) < 0.2
        assert 0.5 < pooled.std() < 2.0


class TestConfigs:
    def test_basic_config_drops_environment(self, tiny_dataset):
        md = build_model_data(
            tiny_dataset, FeatureConfig(include_soil=False, include_traffic=False)
        )
        assert not any(n.startswith("soil_") for n in md.feature_names)
        assert "dist_to_intersection_m" not in md.feature_names

    def test_decoys_added(self, tiny_dataset):
        md = build_model_data(tiny_dataset, FeatureConfig(n_noise_decoys=3))
        assert sum(n.startswith("decoy_") for n in md.feature_names) == 3

    def test_empty_config_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            build_model_data(
                tiny_dataset,
                FeatureConfig(
                    include_attributes=False,
                    include_dimensions=False,
                    include_soil=False,
                    include_traffic=False,
                ),
            )

    def test_vegetation_requires_layers(self, tiny_dataset):
        with pytest.raises(ValueError):
            build_model_data(tiny_dataset, FeatureConfig(include_vegetation=True))

    def test_vegetation_on_wastewater(self, tiny_wastewater):
        md = build_model_data(tiny_wastewater, FeatureConfig(include_vegetation=True))
        assert "tree_canopy_cover" in md.feature_names
        assert "soil_moisture" in md.feature_names


class TestHelpers:
    def test_pipe_ages(self, small_model_data):
        md = small_model_data
        ages = md.pipe_ages(2009)
        assert np.all(ages >= 0)
        assert np.allclose(ages, 2009 - md.pipe_laid_year)

    def test_seg_laid_year_broadcast(self, small_model_data):
        md = small_model_data
        assert np.array_equal(md.seg_laid_year, md.pipe_laid_year[md.seg_pipe_idx])

    def test_clustering_features_appends_laid_eras_location(self, small_model_data):
        md = small_model_data
        cf = md.clustering_features()
        assert cf.shape == (md.n_segments, md.X_seg.shape[1] + 8)
        # Era block: exactly one active indicator per segment, scaled by 2.
        era_block = cf[:, -7:-2]
        assert np.allclose(era_block.sum(axis=1), 2.0)
        # Location block: standardised coordinates.
        xy = cf[:, -2:]
        assert np.allclose(xy.mean(axis=0), 0.0, atol=1e-9)

    def test_aggregate_sum_and_mean(self, small_model_data):
        md = small_model_data
        ones = np.ones(md.n_segments)
        sums = md.aggregate_to_pipes(ones, how="sum")
        counts = np.bincount(md.seg_pipe_idx, minlength=md.n_pipes)
        assert np.array_equal(sums, counts.astype(float))
        means = md.aggregate_to_pipes(ones, how="mean")
        assert np.allclose(means, 1.0)

    def test_aggregate_max(self, small_model_data):
        md = small_model_data
        v = np.arange(md.n_segments, dtype=float)
        out = md.aggregate_to_pipes(v, how="max")
        assert out[0] == v[md.seg_pipe_idx == 0].max()

    def test_aggregate_unknown_how(self, small_model_data):
        with pytest.raises(ValueError):
            small_model_data.aggregate_to_pipes(np.ones(small_model_data.n_segments), how="median")

    def test_survival_composition(self, small_model_data):
        md = small_model_data
        probs = np.full(md.n_segments, 0.01)
        pipe_p = md.survival_pipe_probability(probs)
        counts = np.bincount(md.seg_pipe_idx, minlength=md.n_pipes)
        expected = 1.0 - 0.99**counts
        assert np.allclose(pipe_p, expected)

    def test_survival_composition_bounds(self, small_model_data):
        md = small_model_data
        pipe_p = md.survival_pipe_probability(np.ones(md.n_segments))
        assert np.all(pipe_p <= 1.0) and np.all(pipe_p >= 0.0)

    def test_train_counts(self, small_model_data):
        md = small_model_data
        assert md.pipe_train_failure_counts().sum() == md.pipe_fail_train.sum()


class TestValidationSplit:
    def test_year_bookkeeping(self, small_model_data):
        v = small_model_data.validation_split()
        assert v.test_year == small_model_data.train_years[-1]
        assert len(v.train_years) == len(small_model_data.train_years) - 1
        assert v.pipe_fail_train.shape[1] == 10

    def test_labels_come_from_last_train_year(self, small_model_data):
        v = small_model_data.validation_split()
        assert np.array_equal(v.pipe_fail_test, small_model_data.pipe_fail_train[:, -1])

    def test_original_unchanged(self, small_model_data):
        before = small_model_data.pipe_fail_train.shape
        small_model_data.validation_split()
        assert small_model_data.pipe_fail_train.shape == before
