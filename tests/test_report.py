"""Unit tests for the HTML report builder."""

import pytest

from repro.eval.report import build_report, write_report


@pytest.fixture()
def artifacts(tmp_path):
    (tmp_path / "table18_3.txt").write_text("Metric  A:DPMHBP\nAUC  82%")
    (tmp_path / "fig18_9_region_A.svg").write_text("<svg><line/></svg>")
    (tmp_path / "custom_extra.txt").write_text("extra numbers & stuff")
    return tmp_path


class TestBuildReport:
    def test_contains_sections(self, artifacts):
        html_out = build_report(artifacts)
        assert "Table 18.3" in html_out
        assert "82%" in html_out
        assert "<svg>" in html_out  # SVG embedded raw

    def test_escapes_text_artifacts(self, artifacts):
        html_out = build_report(artifacts)
        assert "extra numbers &amp; stuff" in html_out

    def test_includes_unknown_artifacts(self, artifacts):
        assert "custom_extra" in build_report(artifacts)

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path / "nope")

    def test_valid_document_shape(self, artifacts):
        html_out = build_report(artifacts)
        assert html_out.startswith("<!DOCTYPE html>")
        assert html_out.endswith("</body></html>")

    def test_write_report(self, artifacts):
        out = write_report(artifacts)
        assert out.exists()
        assert out.name == "report.html"

    def test_write_report_custom_path(self, artifacts, tmp_path):
        out = write_report(artifacts, tmp_path / "r.html")
        assert out.read_text().startswith("<!DOCTYPE")
