"""Unit and property tests for the discrete beta process."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes.beta_process import DiscreteBetaProcess, sample_levy_atoms


def make_bp(c=4.0, q=(0.1, 0.2, 0.05)):
    return DiscreteBetaProcess(concentration=c, base_weights=np.asarray(q))


class TestConstruction:
    def test_valid(self):
        bp = make_bp()
        assert bp.n_atoms == 3

    def test_rejects_bad_concentration(self):
        with pytest.raises(ValueError):
            make_bp(c=0.0)

    def test_rejects_boundary_weights(self):
        with pytest.raises(ValueError):
            make_bp(q=(0.0, 0.5))
        with pytest.raises(ValueError):
            make_bp(q=(1.0, 0.5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteBetaProcess(1.0, np.zeros(0))


class TestMoments:
    def test_mean_is_base(self):
        bp = make_bp()
        assert bp.mean() == pytest.approx([0.1, 0.2, 0.05])

    def test_variance_formula(self):
        bp = make_bp(c=4.0, q=(0.2,))
        assert bp.variance()[0] == pytest.approx(0.2 * 0.8 / 5.0)

    def test_sample_mean_converges(self, rng):
        bp = make_bp(c=10.0, q=(0.3,))
        draws = np.array([bp.sample(rng)[0] for _ in range(4000)])
        assert draws.mean() == pytest.approx(0.3, abs=0.02)
        assert draws.var() == pytest.approx(bp.variance()[0], rel=0.15)


class TestPosterior:
    def test_eq_18_4_update(self):
        """Posterior parameters follow the paper's conjugate update exactly."""
        bp = make_bp(c=2.0, q=(0.1, 0.5))
        post = bp.posterior(np.array([1.0, 4.0]), n_draws=5)
        assert post.concentration == pytest.approx(7.0)
        assert post.base_weights[0] == pytest.approx((2.0 * 0.1 + 1.0) / 7.0)
        assert post.base_weights[1] == pytest.approx((2.0 * 0.5 + 4.0) / 7.0)

    def test_no_data_shrinks_nothing(self):
        bp = make_bp()
        post = bp.posterior(np.zeros(3), n_draws=0)
        assert post.mean() == pytest.approx(bp.mean())

    def test_posterior_mean_between_prior_and_mle(self):
        bp = make_bp(c=2.0, q=(0.1,))
        post_mean = bp.posterior_mean(np.array([5.0]), n_draws=10)
        assert 0.1 < post_mean[0] < 0.5 + 1e-12  # between prior 0.1 and MLE 0.5

    def test_rejects_invalid_counts(self):
        bp = make_bp()
        with pytest.raises(ValueError):
            bp.posterior(np.array([6.0, 0.0, 0.0]), n_draws=5)
        with pytest.raises(ValueError):
            bp.posterior(np.array([1.0]), n_draws=5)

    @given(
        st.floats(min_value=0.5, max_value=20.0),
        st.floats(min_value=0.01, max_value=0.5),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=50)
    def test_posterior_concentration_grows(self, c, q, m, s):
        s = min(s, m)
        bp = DiscreteBetaProcess(c, np.array([q]))
        post = bp.posterior(np.array([float(s)]), m)
        assert post.concentration == pytest.approx(c + m)
        assert 0.0 < post.base_weights[0] < 1.0

    def test_posterior_consistency_against_simulation(self, rng):
        """Posterior mean ≈ Monte-Carlo conditional mean of the conjugate Beta."""
        c, q, m, s = 3.0, 0.15, 8, 3
        bp = DiscreteBetaProcess(c, np.array([q]))
        post = bp.posterior(np.array([float(s)]), m)
        draws = rng.beta(c * q + s, c * (1 - q) + m - s, size=20000)
        assert post.mean()[0] == pytest.approx(draws.mean(), abs=0.01)


class TestLevyAtoms:
    def test_sampling_runs(self, rng):
        atoms = sample_levy_atoms(mass=3.0, concentration=1.0, rng=rng)
        assert (atoms >= 0).all() and (atoms <= 1).all()

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            sample_levy_atoms(-1.0, 1.0, rng)
