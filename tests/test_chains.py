"""Unit tests for MCMC trace storage."""

import numpy as np
import pytest

from repro.inference.chains import Trace


class TestTrace:
    def test_record_and_get(self):
        t = Trace()
        for i in range(5):
            t.record(x=float(i), v=np.array([i, i + 1]))
        assert len(t) == 5
        assert t.get("x").tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert t.get("v").shape == (5, 2)

    def test_burn_in_and_thin(self):
        t = Trace()
        for i in range(10):
            t.record(x=float(i))
        assert t.get("x", burn_in=4).tolist() == [4.0, 5.0, 6.0, 7.0, 8.0, 9.0]
        assert t.get("x", burn_in=0, thin=3).tolist() == [0.0, 3.0, 6.0, 9.0]

    def test_mean_scalar_and_vector(self):
        t = Trace()
        t.record(x=1.0, v=np.array([0.0, 2.0]))
        t.record(x=3.0, v=np.array([2.0, 4.0]))
        assert t.mean("x") == pytest.approx(2.0)
        assert t.mean("v").tolist() == [1.0, 3.0]

    def test_quantile(self):
        t = Trace()
        for i in range(101):
            t.record(x=float(i))
        assert t.quantile("x", 0.5) == pytest.approx(50.0)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            Trace().get("missing")

    def test_invalid_params(self):
        t = Trace()
        t.record(x=1.0)
        with pytest.raises(ValueError):
            t.get("x", burn_in=-1)
        with pytest.raises(ValueError):
            t.get("x", thin=0)

    def test_mean_after_total_burn_raises(self):
        t = Trace()
        t.record(x=1.0)
        with pytest.raises(ValueError):
            t.mean("x", burn_in=5)

    def test_names_and_contains(self):
        t = Trace()
        t.record(a=1.0, b=2.0)
        assert set(t.names()) == {"a", "b"}
        assert "a" in t and "c" not in t

    def test_empty_len(self):
        assert len(Trace()) == 0


class TestTraceCheckpoints:
    def test_save_load_roundtrip(self, tmp_path):
        t = Trace()
        for i in range(5):
            t.record(x=float(i), v=np.asarray([i, 2 * i], dtype=float))
        loaded = Trace.load(t.save(tmp_path / "trace.npz"))
        assert set(loaded.names()) == {"x", "v"}
        assert len(loaded) == 5
        assert np.array_equal(loaded.get("x"), t.get("x"))
        assert np.array_equal(loaded.get("v", burn_in=2), t.get("v", burn_in=2))

    def test_load_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "trace.npz"
        path.write_bytes(b"torn checkpoint")
        with pytest.raises(ValueError, match="corrupt"):
            Trace.load(path)
