"""Unit tests for feature preprocessing."""

import numpy as np
import pytest

from repro.ml.preprocessing import OneHotEncoder, StandardScaler, add_intercept


class TestStandardScaler:
    def test_zero_mean_unit_var(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_not_divided(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)
        assert np.isfinite(Z).all()

    def test_transform_uses_fit_stats(self):
        s = StandardScaler().fit(np.array([[0.0], [2.0]]))
        assert s.transform(np.array([[4.0]]))[0, 0] == pytest.approx(3.0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_column_mismatch_raises(self):
        s = StandardScaler().fit(np.ones((3, 2)))
        with pytest.raises(ValueError):
            s.transform(np.ones((3, 3)))

    def test_1d_promoted(self):
        Z = StandardScaler().fit_transform(np.array([1.0, 2.0, 3.0]))
        assert Z.shape == (3, 1)


class TestOneHotEncoder:
    def test_round_trip(self):
        enc = OneHotEncoder().fit(["b", "a", "b"])
        out = enc.transform(["a", "b"])
        assert enc.categories_ == ["a", "b"]
        assert out.tolist() == [[1.0, 0.0], [0.0, 1.0]]

    def test_unseen_category_encodes_to_zeros(self):
        enc = OneHotEncoder().fit(["a", "b"])
        assert enc.transform(["c"]).tolist() == [[0.0, 0.0]]

    def test_deterministic_order(self):
        a = OneHotEncoder().fit(["z", "a", "m"]).categories_
        b = OneHotEncoder().fit(["m", "z", "a"]).categories_
        assert a == b == ["a", "m", "z"]

    def test_feature_names(self):
        enc = OneHotEncoder().fit(["PVC", "CICL"])
        assert enc.feature_names("material") == ["material=CICL", "material=PVC"]

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OneHotEncoder().transform(["a"])

    def test_rows_sum_to_one_for_known(self):
        enc = OneHotEncoder().fit(["a", "b", "c"])
        out = enc.transform(["a", "c", "b", "a"])
        assert np.allclose(out.sum(axis=1), 1.0)


class TestAddIntercept:
    def test_prepends_ones(self):
        X = np.arange(6.0).reshape(3, 2)
        out = add_intercept(X)
        assert out.shape == (3, 3)
        assert np.allclose(out[:, 0], 1.0)
        assert np.allclose(out[:, 1:], X)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            add_intercept(np.ones((2, 2, 2)))
