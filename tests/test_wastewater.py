"""Unit tests for the waste-water network and choke simulator."""

import numpy as np
import pytest

from repro.data.wastewater import load_wastewater_region
from repro.network.pipe import Material


class TestWastewaterDataset:
    def test_vegetation_layers_attached(self, tiny_wastewater):
        assert tiny_wastewater.environment.canopy is not None
        assert tiny_wastewater.environment.moisture is not None

    def test_materials_are_sewer_types(self, tiny_wastewater):
        allowed = {Material.VC, Material.CONC, Material.PVC, Material.PE}
        assert all(p.material in allowed for p in tiny_wastewater.network.iter_pipes())

    def test_choke_count_near_target(self, tiny_wastewater):
        target = tiny_wastewater.spec.target_failures_all
        sigma = np.sqrt(target)
        assert abs(len(tiny_wastewater.failures) - target) < 5 * sigma

    def test_vc_chokes_more_than_pvc(self, tiny_wastewater):
        """Jointed clay is the root-intrusion victim; PVC is tight."""
        ds = tiny_wastewater
        by_material = {Material.VC: [0, 0.0], Material.PVC: [0, 0.0]}
        mat_of = {p.pipe_id: p.material for p in ds.network.iter_pipes()}
        for p in ds.network.iter_pipes():
            if p.material in by_material:
                by_material[p.material][1] += p.length
        for r in ds.failures:
            m = mat_of[r.pipe_id]
            if m in by_material:
                by_material[m][0] += 1
        vc_rate = by_material[Material.VC][0] / by_material[Material.VC][1]
        pvc_rate = by_material[Material.PVC][0] / max(by_material[Material.PVC][1], 1.0)
        assert vc_rate > 1.5 * pvc_rate

    def test_canopy_correlation_positive(self, tiny_wastewater):
        """The Fig 18.5 relationship: chokes concentrate under canopy."""
        ds = tiny_wastewater
        segments = ds.network.segments()
        cover = ds.environment.canopy.coverage_at([s.midpoint for s in segments])
        fails = ds.segment_failure_matrix().sum(axis=1).astype(float)
        # Exposure-weighted comparison: failing segments sit under more canopy.
        assert cover[fails > 0].mean() > cover[fails == 0].mean()

    def test_deterministic(self):
        a = load_wastewater_region("B", scale=0.02, seed=5)
        b = load_wastewater_region("B", scale=0.02, seed=5)
        assert len(a.failures) == len(b.failures)
        assert a.failures[:10] == b.failures[:10]
