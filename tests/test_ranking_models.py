"""Unit tests for the ranking failure models (the data-mining method)."""

import numpy as np
import pytest

from repro.core.base import ranking_features
from repro.core.ranking.model import (
    AUCRankingModel,
    SVMClassifierModel,
    SVMRankingModel,
    build_snapshots,
)
from repro.core.ranking.objective import empirical_auc


class TestRankingFeatures:
    def test_default_is_paper_feature_set(self, small_model_data):
        """Table 18.2 block + age only — no history columns by default."""
        X = ranking_features(small_model_data)
        assert X.shape == (
            small_model_data.n_pipes,
            small_model_data.X_pipe.shape[1] + 1,
        )

    def test_history_extension_shape(self, small_model_data):
        X = ranking_features(small_model_data, include_history=True)
        assert X.shape == (
            small_model_data.n_pipes,
            small_model_data.X_pipe.shape[1] + 3,
        )

    def test_snapshot_year_hides_future_history(self, small_model_data):
        """History features as-of year y must not change when later years change."""
        md = small_model_data
        early = ranking_features(md, score_year=md.train_years[3], include_history=True)
        mutated = md.pipe_fail_train.copy()
        mutated[:, -1] = 1 - mutated[:, -1]  # flip the final year
        from dataclasses import replace

        md2 = replace(md, pipe_fail_train=mutated)
        early2 = ranking_features(md2, score_year=md.train_years[3], include_history=True)
        assert np.allclose(early, early2)

    def test_test_year_sees_all_training_history(self, small_model_data):
        md = small_model_data
        X = ranking_features(md, include_history=True)  # defaults to test year
        # History column is a standardised log1p of the full train count.
        counts = md.pipe_train_failure_counts()
        col = X[:, md.X_pipe.shape[1] + 1]
        order_hist = np.argsort(counts)
        assert np.all(np.diff(col[order_hist]) >= -1e-9)


class TestBuildSnapshots:
    def test_stacks_years(self, small_model_data):
        X, y = build_snapshots(small_model_data, n_snapshots=3)
        assert X.shape[0] == y.shape[0]
        assert X.shape[0] <= 3 * small_model_data.n_pipes
        assert set(np.unique(y)) <= {0.0, 1.0}

    def test_rejects_zero_snapshots(self, small_model_data):
        with pytest.raises(ValueError):
            build_snapshots(small_model_data, n_snapshots=0)

    def test_skips_degenerate_years(self, small_model_data):
        from dataclasses import replace

        md = small_model_data
        dead = md.pipe_fail_train.copy()
        dead[:, -1] = 0  # no failures in the last year
        md2 = replace(md, pipe_fail_train=dead)
        X, y = build_snapshots(md2, n_snapshots=2)
        assert y.sum() > 0  # only the second-last year contributed


class TestModels:
    def test_auc_ranking_beats_chance(self, small_model_data):
        md = small_model_data
        model = AUCRankingModel(generations=15, population=24, seed=0)
        scores = model.fit_predict(md)
        assert scores.shape == (md.n_pipes,)
        assert empirical_auc(scores, md.pipe_fail_test) > 0.55

    def test_optimiser_improves_training_objective(self, small_model_data):
        model = AUCRankingModel(generations=15, population=24, seed=0, optimiser="de")
        model.fit(small_model_data)
        assert model.result_.best_value >= model.result_.history[0] - 1e-12
        assert model.result_.best_value > 0.6  # training AUC

    def test_unknown_optimiser(self, small_model_data):
        with pytest.raises(ValueError):
            AUCRankingModel(optimiser="sgd").fit(small_model_data)

    def test_svm_ranking_beats_chance(self, small_model_data):
        md = small_model_data
        scores = SVMRankingModel(seed=0).fit_predict(md)
        assert empirical_auc(scores, md.pipe_fail_test) > 0.55

    def test_svm_classifier_runs(self, small_model_data):
        md = small_model_data
        scores = SVMClassifierModel(seed=0).fit_predict(md)
        assert scores.shape == (md.n_pipes,)
        assert np.isfinite(scores).all()

    def test_predict_before_fit(self, small_model_data):
        with pytest.raises(RuntimeError):
            AUCRankingModel().predict_pipe_risk(small_model_data)
        with pytest.raises(RuntimeError):
            SVMRankingModel().predict_pipe_risk(small_model_data)

    def test_deterministic(self, small_model_data):
        a = AUCRankingModel(generations=5, seed=3).fit_predict(small_model_data)
        b = AUCRankingModel(generations=5, seed=3).fit_predict(small_model_data)
        assert np.array_equal(a, b)
