"""Unit tests for the Metropolis-within-Gibbs driver."""

import numpy as np
import pytest

from repro.inference.gibbs import GibbsSampler


def make_sampler(rng, trace_fn=None):
    return GibbsSampler(state={"x": 0.0, "y": 0.0}, rng=rng, trace_fn=trace_fn)


class TestRegistration:
    def test_duplicate_block_rejected(self, rng):
        s = make_sampler(rng)
        s.add_block("a", lambda st, r: {})
        with pytest.raises(ValueError):
            s.add_block("a", lambda st, r: {})

    def test_sweep_without_blocks_raises(self, rng):
        with pytest.raises(RuntimeError):
            make_sampler(rng).sweep()

    def test_chaining(self, rng):
        s = make_sampler(rng).add_block("a", lambda st, r: {}).add_block("b", lambda st, r: {})
        assert len(s._blocks) == 2


class TestExecution:
    def test_blocks_run_in_order(self, rng):
        calls = []
        s = make_sampler(rng)
        s.add_block("first", lambda st, r: calls.append("first") or {})
        s.add_block("second", lambda st, r: calls.append("second") or {})
        s.run(3)
        assert calls == ["first", "second"] * 3

    def test_state_mutation_visible_across_blocks(self, rng):
        s = make_sampler(rng)

        def set_x(st, r):
            st["x"] = 42.0
            return {}

        seen = []
        s.add_block("set", set_x)
        s.add_block("read", lambda st, r: seen.append(st["x"]) or {})
        s.run(1)
        assert seen == [42.0]

    def test_diagnostics_aggregated(self, rng):
        s = make_sampler(rng)
        s.add_block("mh", lambda st, r: {"accept": 1.0})
        s.run(4)
        assert s.diagnostic_mean("mh.accept") == 1.0

    def test_missing_diagnostic_raises(self, rng):
        s = make_sampler(rng)
        s.add_block("a", lambda st, r: {})
        s.run(1)
        with pytest.raises(KeyError):
            s.diagnostic_mean("nope")

    def test_trace_recorded(self, rng):
        s = GibbsSampler(state={"x": 0.0}, rng=rng, trace_fn=lambda st: {"x": st["x"]})

        def step(st, r):
            st["x"] += 1.0
            return {}

        s.add_block("inc", step)
        trace = s.run(5)
        assert trace.get("x").tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_callback_fires(self, rng):
        s = make_sampler(rng)
        s.add_block("a", lambda st, r: {})
        ticks = []
        s.run(3, callback=lambda i, st: ticks.append(i))
        assert ticks == [0, 1, 2]

    def test_negative_sweeps_rejected(self, rng):
        s = make_sampler(rng)
        s.add_block("a", lambda st, r: {})
        with pytest.raises(ValueError):
            s.run(-1)


class TestStatisticalCorrectness:
    def test_bivariate_normal_gibbs(self, rng):
        """Classic two-block Gibbs on a correlated bivariate normal."""
        corr = 0.8

        def update_x(st, r):
            st["x"] = corr * st["y"] + np.sqrt(1 - corr**2) * r.standard_normal()
            return {}

        def update_y(st, r):
            st["y"] = corr * st["x"] + np.sqrt(1 - corr**2) * r.standard_normal()
            return {}

        s = GibbsSampler(
            state={"x": 0.0, "y": 0.0},
            rng=rng,
            trace_fn=lambda st: {"x": st["x"], "y": st["y"]},
        )
        s.add_block("x", update_x).add_block("y", update_y)
        trace = s.run(8000)
        xs = trace.get("x", burn_in=1000)
        ys = trace.get("y", burn_in=1000)
        assert xs.mean() == pytest.approx(0.0, abs=0.08)
        assert np.corrcoef(xs, ys)[0, 1] == pytest.approx(corr, abs=0.05)
