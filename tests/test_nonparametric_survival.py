"""Unit tests for Kaplan-Meier, Nelson-Aalen and the log-rank test."""

import numpy as np
import pytest
from scipy import stats

from repro.survival.nonparametric import (
    chi2_sf,
    kaplan_meier,
    logrank_test,
    nelson_aalen,
)


class TestKaplanMeier:
    def test_textbook_example(self):
        """Classic small example computed by hand."""
        t = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        e = np.array([1.0, 0.0, 1.0, 1.0, 0.0])
        km = kaplan_meier(t, e)
        # t=1: 5 at risk, 1 death -> 4/5; t=3: 3 at risk -> *2/3; t=4: 2 at risk -> *1/2
        assert km.at(1.0)[0] == pytest.approx(0.8)
        assert km.at(3.5)[0] == pytest.approx(0.8 * 2 / 3)
        assert km.at(10.0)[0] == pytest.approx(0.8 * 2 / 3 * 0.5)

    def test_before_first_event_is_one(self):
        km = kaplan_meier(np.array([5.0, 6.0]), np.array([1.0, 1.0]))
        assert km.at(1.0)[0] == 1.0

    def test_monotone_nonincreasing(self, rng):
        t = rng.exponential(10.0, 200)
        e = (rng.random(200) < 0.7).astype(float)
        km = kaplan_meier(t, e)
        assert np.all(np.diff(km.values) <= 1e-12)

    def test_no_censoring_matches_empirical(self, rng):
        t = rng.exponential(5.0, 500)
        km = kaplan_meier(t, np.ones(500))
        grid = np.quantile(t, [0.25, 0.5, 0.75])
        empirical = [(t > g).mean() for g in grid]
        assert np.allclose(km.at(grid), empirical, atol=0.01)

    def test_recovers_exponential_survival(self, rng):
        t = rng.exponential(10.0, 4000)
        cens = np.minimum(t, 25.0)
        e = (t <= 25.0).astype(float)
        km = kaplan_meier(cens, e)
        assert km.at(10.0)[0] == pytest.approx(np.exp(-1.0), abs=0.03)

    def test_left_truncation_changes_risk_sets(self, rng):
        t = rng.exponential(10.0, 1000)
        entry = np.full(1000, 2.0)
        keep = t > 2.0
        km_trunc = kaplan_meier(t[keep], np.ones(keep.sum()), entry_time=entry[keep])
        # Conditional survival S(t)/S(2) for exponential = exp(-(t-2)/10).
        assert km_trunc.at(12.0)[0] == pytest.approx(np.exp(-1.0), abs=0.05)

    def test_empty_events(self):
        km = kaplan_meier(np.array([1.0, 2.0]), np.zeros(2))
        assert km.times.size == 0
        assert km.at(5.0)[0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            kaplan_meier(np.array([1.0]), np.array([2.0]))
        with pytest.raises(ValueError):
            kaplan_meier(np.array([1.0]), np.array([1.0]), entry_time=np.array([2.0]))


class TestNelsonAalen:
    def test_matches_minus_log_km_approximately(self, rng):
        t = rng.exponential(8.0, 2000)
        e = np.ones(2000)
        na = nelson_aalen(t, e)
        km = kaplan_meier(t, e)
        grid = np.quantile(t, [0.3, 0.6])
        assert np.allclose(na.at(grid), -np.log(km.at(grid)), rtol=0.05)

    def test_monotone_nondecreasing(self, rng):
        t = rng.exponential(10.0, 300)
        e = (rng.random(300) < 0.5).astype(float)
        na = nelson_aalen(t, e)
        assert np.all(np.diff(na.values) >= -1e-12)

    def test_linear_for_exponential(self, rng):
        """Exponential lifetimes have H(t) = t / mean."""
        t = rng.exponential(10.0, 5000)
        na = nelson_aalen(np.minimum(t, 30.0), (t <= 30.0).astype(float))
        assert na.at(10.0)[0] == pytest.approx(1.0, abs=0.06)
        assert na.at(20.0)[0] == pytest.approx(2.0, abs=0.15)


class TestChi2SF:
    @pytest.mark.parametrize("x", [0.5, 1.0, 3.84, 10.0])
    @pytest.mark.parametrize("df", [1, 2, 5])
    def test_matches_scipy(self, x, df):
        assert chi2_sf(x, df) == pytest.approx(stats.chi2.sf(x, df), rel=1e-9)

    def test_edge_cases(self):
        assert chi2_sf(0.0, 1) == 1.0
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)


class TestLogRank:
    def test_identical_groups_not_significant(self, rng):
        t = rng.exponential(10.0, 300)
        e = np.ones(300)
        result = logrank_test(t[:150], e[:150], t[150:], e[150:])
        assert result.p_value > 0.01

    def test_different_hazards_detected(self, rng):
        a = rng.exponential(5.0, 300)
        b = rng.exponential(15.0, 300)
        result = logrank_test(a, np.ones(300), b, np.ones(300))
        assert result.p_value < 0.001
        assert result.statistic > 10

    def test_observed_totals(self, rng):
        a = rng.exponential(5.0, 50)
        b = rng.exponential(5.0, 60)
        result = logrank_test(a, np.ones(50), b, np.ones(60))
        assert result.observed == (50.0, 60.0)

    def test_no_events_raises(self):
        with pytest.raises(ValueError):
            logrank_test(np.array([1.0]), np.zeros(1), np.array([2.0]), np.zeros(1))

    def test_matches_scipy_reference(self, rng):
        """Cross-check the statistic against scipy's CompareMeans-free path
        by simulating many nulls: the statistic should be ~chi2(1)."""
        stats_null = []
        for i in range(200):
            r = np.random.default_rng(i)
            t = r.exponential(10.0, 80)
            res = logrank_test(t[:40], np.ones(40), t[40:], np.ones(40))
            stats_null.append(res.statistic)
        # Mean of chi2(1) is 1.
        assert np.mean(stats_null) == pytest.approx(1.0, abs=0.35)
