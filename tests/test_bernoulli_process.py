"""Unit tests for Bernoulli-process draws and binary matrices."""

import numpy as np
import pytest

from repro.bayes.bernoulli_process import loglik, sample_draws, success_counts
from repro.bayes.beta_process import DiscreteBetaProcess


class TestSampleDraws:
    def test_shape_and_binary(self, rng):
        X = sample_draws(np.array([0.2, 0.8]), 50, rng)
        assert X.shape == (2, 50)
        assert set(np.unique(X)) <= {0, 1}

    def test_rate_matches_weights(self, rng):
        X = sample_draws(np.array([0.1, 0.9]), 5000, rng)
        assert X[0].mean() == pytest.approx(0.1, abs=0.02)
        assert X[1].mean() == pytest.approx(0.9, abs=0.02)

    def test_from_beta_process(self, rng):
        bp = DiscreteBetaProcess(5.0, np.array([0.3, 0.3]))
        X = sample_draws(bp, 20, rng)
        assert X.shape == (2, 20)

    def test_zero_draws(self, rng):
        assert sample_draws(np.array([0.5]), 0, rng).shape == (1, 0)

    def test_rejects_negative_draws(self, rng):
        with pytest.raises(ValueError):
            sample_draws(np.array([0.5]), -1, rng)

    def test_rejects_invalid_weights(self, rng):
        with pytest.raises(ValueError):
            sample_draws(np.array([1.5]), 3, rng)


class TestCountsAndLoglik:
    def test_success_counts(self):
        X = np.array([[1, 0, 1], [0, 0, 0]])
        assert success_counts(X).tolist() == [2.0, 0.0]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            success_counts(np.array([[2, 0]]))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            success_counts(np.array([1, 0]))

    def test_loglik_direct(self):
        X = np.array([[1, 0], [0, 0]])
        w = np.array([0.3, 0.1])
        expected = np.log(0.3) + np.log(0.7) + 2 * np.log(0.9)
        assert loglik(X, w) == pytest.approx(expected)

    def test_loglik_maximised_at_mle(self):
        X = np.array([[1, 1, 0, 0]])
        mle = loglik(X, np.array([0.5]))
        assert mle > loglik(X, np.array([0.2]))
        assert mle > loglik(X, np.array([0.8]))

    def test_loglik_shape_mismatch(self):
        with pytest.raises(ValueError):
            loglik(np.array([[1, 0]]), np.array([0.1, 0.2]))


class TestConjugacyRoundTrip:
    def test_posterior_predictive_improves(self, rng):
        """Posterior from simulated draws recovers the simulating weights."""
        true_w = np.array([0.05, 0.3, 0.6])
        bp = DiscreteBetaProcess(2.0, np.array([0.2, 0.2, 0.2]))
        X = sample_draws(true_w, 300, rng)
        post = bp.posterior(success_counts(X), X.shape[1])
        assert np.allclose(post.mean(), true_w, atol=0.06)
