"""Unit tests for the ``repro.perf`` benchmark-regression harness."""

import json

import pytest

from repro.perf import (
    BENCHMARKS,
    BenchmarkTiming,
    compare_to_baseline,
    latest_snapshot,
    load_snapshot,
    run_benchmarks,
    save_snapshot,
    time_callable,
)
from repro.perf.__main__ import main as perf_main


def _timing(name, median):
    return BenchmarkTiming(name=name, median_s=median, times_s=(median,))


class TestTiming:
    def test_time_callable_counts_rounds(self):
        times = time_callable(lambda: sum(range(100)), rounds=4)
        assert len(times) == 4
        assert all(t >= 0.0 for t in times)

    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, rounds=0)

    def test_registry_covers_samplers_and_journal(self):
        assert set(BENCHMARKS) == {
            "dpmhbp_sweeps",
            "hbp_sweeps",
            "crp_partition",
            "empirical_auc",
            "es_generation",
            "run_journal",
            "parallel_scaling",
            "parallel_scaling_percall",
            "shm_roundtrip",
            "telemetry_noop",
            "health_noop",
        }

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            run_benchmarks(names=["warp_drive"])

    def test_run_single_benchmark(self):
        results = run_benchmarks(names=["empirical_auc"], rounds=1)
        timing = results["empirical_auc"]
        assert timing.median_s > 0.0
        assert len(timing.times_s) == 1


class TestSnapshots:
    def test_save_load_roundtrip(self, tmp_path):
        path = save_snapshot(tmp_path, rev="t1", rounds=1, names=["empirical_auc"])
        assert path.name == "BENCH_t1.json"
        payload = load_snapshot(path)
        assert payload["rev"] == "t1"
        assert "empirical_auc" in payload["medians_s"]

    def test_latest_snapshot(self, tmp_path):
        assert latest_snapshot(tmp_path) is None
        (tmp_path / "BENCH_old.json").write_text("{}")
        newer = tmp_path / "BENCH_new.json"
        newer.write_text("{}")
        assert latest_snapshot(tmp_path) == newer

    def test_non_snapshot_rejected(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"something": 1}))
        with pytest.raises(ValueError):
            load_snapshot(bad)


class TestCompare:
    def test_detects_regression_over_threshold(self):
        baseline = {"medians_s": {"a": 1.0, "b": 1.0}}
        current = {"a": _timing("a", 1.30), "b": _timing("b", 1.10)}
        regressions = compare_to_baseline(baseline, current, threshold=0.25)
        assert [r.name for r in regressions] == ["a"]
        assert regressions[0].slowdown == pytest.approx(0.30)

    def test_improvements_and_matches_pass(self):
        baseline = {"medians_s": {"a": 1.0}}
        assert compare_to_baseline(baseline, {"a": _timing("a", 0.5)}) == []

    def test_missing_benchmarks_ignored(self):
        baseline = {"medians_s": {"gone": 1.0}}
        assert compare_to_baseline(baseline, {}) == []

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            compare_to_baseline({"medians_s": {}}, {}, threshold=0.0)


class TestCli:
    def test_compare_fails_on_regression(self, tmp_path):
        baseline = tmp_path / "BENCH_x.json"
        baseline.write_text(
            json.dumps({"rev": "x", "medians_s": {"empirical_auc": 1e-9}})
        )
        assert perf_main(["compare", str(baseline), "--rounds", "1"]) == 1

    def test_compare_passes_against_slow_baseline(self, tmp_path):
        baseline = tmp_path / "BENCH_x.json"
        baseline.write_text(
            json.dumps({"rev": "x", "medians_s": {"empirical_auc": 1e9}})
        )
        assert perf_main(["compare", str(baseline), "--rounds", "1"]) == 0

    def test_compare_without_baseline(self, tmp_path):
        assert perf_main(["compare", "--dir", str(tmp_path)]) == 2

    def test_smoke_passes(self):
        assert perf_main(["smoke"]) == 0

    def test_smoke_ceiling_breach(self):
        assert perf_main(["smoke", "--ceiling", "1e-9"]) == 1
