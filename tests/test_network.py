"""Unit tests for the PipeNetwork container."""

import networkx as nx
import pytest

from repro.network.network import PipeNetwork, summarise
from repro.network.pipe import Coating, Material, Pipe, PipeClass, PipeSegment


def make_pipe(pipe_id, diameter=300.0, laid=1950, x0=0.0):
    segs = [
        PipeSegment(f"{pipe_id}/s{k}", pipe_id, (x0 + k * 10.0, 0.0), (x0 + (k + 1) * 10.0, 0.0))
        for k in range(2)
    ]
    return Pipe(pipe_id, Material.CICL, Coating.NONE, diameter, laid, segs)


@pytest.fixture()
def net():
    network = PipeNetwork(region="T")
    network.add_pipe(make_pipe("P1", diameter=300.0, laid=1940))
    network.add_pipe(make_pipe("P2", diameter=100.0, laid=1980, x0=100.0))
    return network


class TestInsertAndLookup:
    def test_counts(self, net):
        assert len(net) == 2
        assert net.n_pipes == 2
        assert net.n_segments == 4

    def test_lookup(self, net):
        assert net.pipe("P1").pipe_id == "P1"
        assert net.segment("P2/s1").pipe_id == "P2"
        assert "P1" in net and "P9" not in net

    def test_duplicate_pipe_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_pipe(make_pipe("P1"))

    def test_duplicate_segment_rejected(self, net):
        clone = make_pipe("P3")
        # Rename the pipe but keep a colliding segment id.
        bad = Pipe(
            "P3",
            Material.PVC,
            Coating.NONE,
            100.0,
            1990,
            [PipeSegment("P1/s0", "P3", (0.0, 0.0), (1.0, 0.0))],
        )
        with pytest.raises(ValueError):
            net.add_pipe(bad)
        del clone

    def test_missing_raises_keyerror(self, net):
        with pytest.raises(KeyError):
            net.pipe("nope")


class TestFiltersAndAggregates:
    def test_class_filter(self, net):
        assert [p.pipe_id for p in net.pipes(PipeClass.CWM)] == ["P1"]
        assert [p.pipe_id for p in net.pipes(PipeClass.RWM)] == ["P2"]

    def test_segments_filter(self, net):
        assert len(net.segments(PipeClass.CWM)) == 2

    def test_select(self, net):
        old = net.select(lambda p: p.laid_year < 1950)
        assert [p.pipe_id for p in old] == ["P1"]

    def test_total_length(self, net):
        assert net.total_length() == pytest.approx(40.0)
        assert net.total_length(PipeClass.CWM) == pytest.approx(20.0)

    def test_laid_year_range(self, net):
        assert net.laid_year_range() == (1940, 1980)

    def test_laid_year_range_empty_class(self):
        empty = PipeNetwork(region="E")
        with pytest.raises(ValueError):
            empty.laid_year_range()

    def test_bounding_box(self, net):
        box = net.bounding_box()
        assert box.min_x == 0.0 and box.max_x == 120.0


class TestGraphAndMerge:
    def test_graph_edges(self, net):
        g = net.to_graph()
        assert isinstance(g, nx.Graph)
        assert g.number_of_edges() == 4
        # Serial segments of one pipe share a node.
        assert nx.has_path(g, (0.0, 0.0), (20.0, 0.0))

    def test_merge_is_disjoint_union(self, net):
        other = PipeNetwork(region="U")
        other.add_pipe(make_pipe("P9", x0=999.0))
        merged = net.merge(other)
        assert merged.n_pipes == 3
        assert net.n_pipes == 2  # originals untouched

    def test_summarise(self, net):
        rows = summarise([net])
        assert rows[0]["n_pipes"] == 2
        assert rows[0]["n_cwm"] == 1
        assert rows[0]["laid_years"] == (1940, 1980)
