"""Unit tests for dataset assembly, splits and subsets."""

import numpy as np
import pytest

from repro.data.datasets import load_region
from repro.data.regions import TEST_YEAR
from repro.network.pipe import PipeClass


class TestLoadRegion:
    def test_cached(self):
        a = load_region("A", scale=0.05, seed=9)
        b = load_region("A", scale=0.05, seed=9)
        assert a is b  # lru_cache identity

    def test_distinct_seeds_differ(self):
        a = load_region("A", scale=0.03, seed=1)
        b = load_region("A", scale=0.03, seed=2)
        assert len(a.failures) != len(b.failures) or a.failures != b.failures

    def test_environment_attached(self, tiny_dataset):
        assert tiny_dataset.environment.soil is not None
        assert tiny_dataset.environment.traffic.n_intersections > 0
        assert tiny_dataset.environment.canopy is None  # drinking water


class TestMatrices:
    def test_segment_matrix_matches_records(self, tiny_dataset):
        m = tiny_dataset.segment_failure_matrix()
        assert m.shape == (tiny_dataset.network.n_segments, 12)
        # Every record lands exactly one cell; dedupe (segment, year).
        cells = {(r.segment_id, r.year) for r in tiny_dataset.failures}
        assert m.sum() == len(cells)

    def test_pipe_matrix_is_binary_or(self, tiny_dataset):
        seg = tiny_dataset.segment_failure_matrix()
        pipe = tiny_dataset.pipe_failure_matrix()
        assert set(np.unique(pipe)) <= {0, 1}
        # Pipe-year marked iff one of its segments failed that year.
        seg_ids = tiny_dataset.segment_ids()
        pipe_index = {p: i for i, p in enumerate(tiny_dataset.pipe_ids())}
        owner = np.asarray(
            [pipe_index[tiny_dataset.network.segment(s).pipe_id] for s in seg_ids]
        )
        expected = np.zeros_like(pipe)
        np.maximum.at(expected, owner, seg)
        assert np.array_equal(pipe, expected)

    def test_failure_counts_by_pipe(self, tiny_dataset):
        counts = tiny_dataset.failure_counts_by_pipe()
        assert counts.sum() == len(tiny_dataset.failures)

    def test_counts_can_exceed_binary(self, tiny_dataset):
        counts = tiny_dataset.failure_counts_by_pipe()
        binary = tiny_dataset.pipe_failure_matrix().sum(axis=1)
        assert np.all(counts >= binary)


class TestSplitsAndSubsets:
    def test_split_years(self, tiny_dataset):
        train, test = tiny_dataset.split_failures()
        assert all(r.year < TEST_YEAR for r in train)
        assert all(r.year == TEST_YEAR for r in test)
        assert len(train) + len(test) == len(tiny_dataset.failures)

    def test_train_years_property(self, tiny_dataset):
        assert tiny_dataset.train_years == tuple(range(1998, 2009))
        assert tiny_dataset.test_year == 2009

    def test_subset_cwm(self, tiny_cwm, tiny_dataset):
        assert tiny_cwm.network.n_pipes < tiny_dataset.network.n_pipes
        assert all(
            p.pipe_class is PipeClass.CWM for p in tiny_cwm.network.iter_pipes()
        )
        cwm_ids = {p.pipe_id for p in tiny_cwm.network.iter_pipes()}
        assert all(r.pipe_id in cwm_ids for r in tiny_cwm.failures)

    def test_subset_drops_ground_truth(self, tiny_cwm):
        assert tiny_cwm.ground_truth is None

    def test_n_failures_by_class(self, tiny_dataset):
        total = tiny_dataset.n_failures()
        cwm = tiny_dataset.n_failures(PipeClass.CWM)
        rwm = tiny_dataset.n_failures(PipeClass.RWM)
        assert cwm + rwm == total

    def test_cwm_failure_share_plausible(self, tiny_dataset):
        """Paper: CWM failures are ~12% of all failures."""
        share = tiny_dataset.n_failures(PipeClass.CWM) / tiny_dataset.n_failures()
        assert 0.04 < share < 0.30
