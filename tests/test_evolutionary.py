"""Unit tests for the evolutionary optimisers."""

import numpy as np
import pytest

from repro.core.ranking.evolutionary import DifferentialEvolution, EvolutionStrategy


def sphere(w):
    return -float(np.sum((w - 1.5) ** 2))


def step_function(w):
    """Piecewise-constant objective, like the exact AUC."""
    return float(np.sum(np.floor(3.0 * w).clip(-3, 3)))


class TestEvolutionStrategy:
    def test_optimises_sphere(self):
        res = EvolutionStrategy(generations=80, seed=1).maximise(sphere, dim=4)
        assert np.allclose(res.best_params, 1.5, atol=0.2)
        assert res.best_value > -0.1

    def test_handles_piecewise_constant(self):
        res = EvolutionStrategy(generations=40, seed=2).maximise(step_function, dim=3)
        assert res.best_value >= 6.0  # near the plateau maximum 9

    def test_history_monotone(self):
        res = EvolutionStrategy(generations=30, seed=3).maximise(sphere, dim=2)
        assert all(b >= a - 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_warm_start_used(self):
        x0 = np.full(3, 1.5)
        res = EvolutionStrategy(generations=1, seed=4).maximise(sphere, dim=3, x0=x0)
        assert res.best_value >= sphere(x0) - 1e-12

    def test_bad_population_rejected(self):
        with pytest.raises(ValueError):
            EvolutionStrategy(population=5, parents=5).maximise(sphere, dim=2)

    def test_bad_x0_shape(self):
        with pytest.raises(ValueError):
            EvolutionStrategy().maximise(sphere, dim=3, x0=np.zeros(2))

    def test_deterministic_given_seed(self):
        a = EvolutionStrategy(generations=10, seed=9).maximise(sphere, dim=2)
        b = EvolutionStrategy(generations=10, seed=9).maximise(sphere, dim=2)
        assert np.array_equal(a.best_params, b.best_params)


class TestDifferentialEvolution:
    def test_optimises_sphere(self):
        res = DifferentialEvolution(generations=100, seed=1).maximise(sphere, dim=4)
        assert np.allclose(res.best_params, 1.5, atol=0.1)

    def test_handles_piecewise_constant(self):
        res = DifferentialEvolution(generations=60, seed=2).maximise(step_function, dim=3)
        assert res.best_value >= 6.0

    def test_history_monotone(self):
        res = DifferentialEvolution(generations=20, seed=3).maximise(sphere, dim=2)
        assert all(b >= a - 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_population_minimum(self):
        with pytest.raises(ValueError):
            DifferentialEvolution(population=3).maximise(sphere, dim=2)

    def test_warm_start_in_population(self):
        x0 = np.full(2, 1.5)
        res = DifferentialEvolution(generations=0, seed=5).maximise(sphere, dim=2, x0=x0)
        assert res.best_value >= sphere(x0) - 1e-12

    def test_multimodal_rastrigin_like(self):
        def rastrigin(w):
            return -float(10 * len(w) + np.sum(w**2 - 10 * np.cos(2 * np.pi * w)))

        res = DifferentialEvolution(population=60, generations=150, seed=7).maximise(
            rastrigin, dim=2
        )
        assert res.best_value > -2.0  # near global optimum 0
