"""End-to-end integration tests across the full pipeline."""

import numpy as np
import pytest

from repro import (
    FeatureConfig,
    build_model_data,
    default_models,
    empirical_auc,
    evaluate_models,
    load_region,
    load_wastewater_region,
    prepare_region_data,
)
from repro.eval.reporting import table_18_1, table_18_3, table_18_4
from repro.eval.riskmap import RiskMap
from repro.network.pipe import PipeClass


class TestFullPipeline:
    def test_paper_protocol_smoke(self):
        """Generate → features → fit the full line-up → evaluate, tiny scale."""
        data = prepare_region_data("B", scale=0.06, seed=21, pipe_class=None)
        models = default_models(seed=0, fast=True)
        # Trim the MCMC models further for test speed.
        models[0].n_sweeps, models[0].burn_in = 10, 3
        models[1].n_sweeps, models[1].burn_in = 30, 10
        models[5].generations = 5
        run = evaluate_models(data, models, region="B")
        assert set(run.evaluations) == {
            "DPMHBP",
            "HBP",
            "Cox",
            "SVM",
            "Weibull",
            "AUC-Rank",
        }
        for ev in run.evaluations.values():
            assert 0.0 <= ev.auc <= 1.0

    def test_tables_render(self, tiny_dataset):
        assert "Region" in table_18_1([tiny_dataset])

    def test_riskmap_from_model_scores(self, tiny_cwm):
        md = build_model_data(tiny_cwm)
        from repro.core.survival_models import CoxPHModel

        scores = CoxPHModel().fit_predict(md)
        rm = RiskMap(dataset=tiny_cwm, scores=scores)
        svg = rm.to_svg(width=300)
        assert "<svg" in svg

    def test_wastewater_pipeline(self, tiny_wastewater):
        md = build_model_data(tiny_wastewater, FeatureConfig(include_vegetation=True))
        assert "tree_canopy_cover" in md.feature_names
        from repro.core.survival_models import WeibullModel

        scores = WeibullModel().fit_predict(md)
        if md.pipe_fail_test.sum() > 0:
            assert empirical_auc(scores, md.pipe_fail_test) > 0.4


class TestReproducibility:
    def test_same_seed_same_everything(self):
        a = prepare_region_data("C", scale=0.04, seed=33, pipe_class=None)
        # bypass the lru-cache by loading fresh via a different call path
        ds = load_region("C", scale=0.04, seed=33)
        b = build_model_data(ds)
        assert np.allclose(a.X_pipe, b.X_pipe)
        assert np.array_equal(a.pipe_fail_test, b.pipe_fail_test)

    def test_regions_differ(self):
        a = load_region("A", scale=0.04, seed=1)
        c = load_region("C", scale=0.04, seed=1)
        assert a.network.n_pipes != c.network.n_pipes

    def test_wastewater_differs_from_water(self):
        w = load_region("A", scale=0.04, seed=2)
        ww = load_wastewater_region("A", scale=0.04, seed=2)
        assert ww.network.n_pipes != w.network.n_pipes
        assert ww.environment.canopy is not None


class TestLabelHygiene:
    def test_models_ignore_test_labels(self):
        """Every model must produce identical scores when test labels flip."""
        from dataclasses import replace

        from repro.core.survival_models import CoxPHModel, WeibullModel
        from repro.core.ranking.model import SVMRankingModel

        data = prepare_region_data("A", scale=0.05, seed=9, pipe_class=None)
        flipped = replace(data, pipe_fail_test=1.0 - data.pipe_fail_test)
        for model_cls in (CoxPHModel, WeibullModel):
            a = model_cls().fit_predict(data)
            b = model_cls().fit_predict(flipped)
            assert np.allclose(a, b), f"{model_cls.__name__} read test labels"
        a = SVMRankingModel(seed=0).fit_predict(data)
        b = SVMRankingModel(seed=0).fit_predict(flipped)
        assert np.allclose(a, b)
