"""Integration tests for the experiment runner."""

import numpy as np
import pytest

from repro.core.survival_models import CoxPHModel, TimeRateModel
from repro.eval.experiment import (
    ComparisonResult,
    NoTestFailuresError,
    evaluate_models,
    prepare_region_data,
    run_comparison,
)
from repro.network.pipe import PipeClass


@pytest.fixture(scope="module")
def small_run():
    data = prepare_region_data("A", scale=0.05, seed=9, pipe_class=None)
    models = [CoxPHModel(), TimeRateModel(kind="exponential")]
    return evaluate_models(data, models, region="A"), data


class TestEvaluateModels:
    def test_all_models_evaluated(self, small_run):
        run, _ = small_run
        assert set(run.evaluations) == {"Cox", "TimeExp"}

    def test_metrics_in_range(self, small_run):
        run, _ = small_run
        for ev in run.evaluations.values():
            assert 0.0 <= ev.auc <= 1.0
            assert ev.auc_budget_permyriad >= 0.0

    def test_scores_aligned_with_pipes(self, small_run):
        run, data = small_run
        for ev in run.evaluations.values():
            assert ev.scores.shape == (data.n_pipes,)

    def test_curve_reaches_one(self, small_run):
        run, _ = small_run
        ev = run.evaluations["Cox"]
        curve = ev.curve(run.labels)
        assert curve.detected[-1] == pytest.approx(1.0)

    def test_no_test_failures_rejected(self, small_run):
        from dataclasses import replace

        _, data = small_run
        dead = replace(data, pipe_fail_test=np.zeros(data.n_pipes))
        # The dedicated subclass, still catchable as ValueError (old contract).
        with pytest.raises(NoTestFailuresError):
            evaluate_models(dead, [CoxPHModel()], region="X")
        assert issubclass(NoTestFailuresError, ValueError)

    def test_ranked_orders_best_first(self, small_run):
        run, _ = small_run
        ranked = run.ranked()
        assert [ev.auc for ev in ranked] == sorted(
            (ev.auc for ev in run.evaluations.values()), reverse=True
        )
        by_budget = run.ranked(metric="budget")
        assert by_budget[0].auc_budget_permyriad >= by_budget[-1].auc_budget_permyriad
        with pytest.raises(ValueError):
            run.ranked(metric="f1")


class TestPrepareRegionData:
    def test_cwm_subset(self):
        all_pipes = prepare_region_data("A", scale=0.05, seed=9, pipe_class=None)
        cwm = prepare_region_data("A", scale=0.05, seed=9, pipe_class=PipeClass.CWM)
        assert cwm.n_pipes < all_pipes.n_pipes


class TestRunComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        factory = lambda s: [CoxPHModel(), TimeRateModel(kind="exponential")]
        return run_comparison(
            regions=("A",),
            n_repeats=3,
            scale=0.05,
            models_factory=factory,
        )

    def test_structure(self, comparison):
        assert comparison.regions == ["A"]
        assert len(comparison.runs["A"]) == 3
        assert set(comparison.model_names()) == {"Cox", "TimeExp"}

    def test_samples_shape(self, comparison):
        assert comparison.auc_samples("A", "Cox").shape == (3,)
        assert comparison.budget_samples("A", "TimeExp").shape == (3,)

    def test_means_bounded(self, comparison):
        assert 0.0 <= comparison.mean_auc("A", "Cox") <= 1.0

    def test_t_test_runs(self, comparison):
        result = comparison.t_test("A", "Cox", "TimeExp")
        assert np.isfinite(result.statistic) or result.p_value in (0.0, 1.0)
        result_b = comparison.t_test("A", "Cox", "TimeExp", metric="budget")
        assert 0.0 <= result_b.p_value <= 1.0

    def test_repeats_differ(self, comparison):
        aucs = comparison.auc_samples("A", "Cox")
        assert len(set(np.round(aucs, 6))) > 1  # different seeds, different data

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            run_comparison(n_repeats=0)
