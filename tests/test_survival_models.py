"""Unit tests for the survival FailureModel adapters."""

import numpy as np
import pytest

from repro.core.ranking.objective import empirical_auc
from repro.core.survival_models import (
    CoxPHModel,
    TimeRateModel,
    WeibullModel,
    _cox_arrays,
    _pipe_year_exposure,
)


class TestCoxArrays:
    def test_entry_is_1998_age(self, small_model_data):
        entry, _exit, _event = _cox_arrays(small_model_data)
        assert np.allclose(entry, np.maximum(1998 - small_model_data.pipe_laid_year, 0))

    def test_events_match_training_failures(self, small_model_data):
        _entry, _exit, event = _cox_arrays(small_model_data)
        assert event.sum() == (small_model_data.pipe_fail_train.sum(1) > 0).sum()

    def test_exit_after_entry(self, small_model_data):
        entry, exit_age, _ = _cox_arrays(small_model_data)
        assert np.all(exit_age > entry - 1e-9)

    def test_failure_exit_uses_first_failure_year(self, small_model_data):
        md = small_model_data
        entry, exit_age, event = _cox_arrays(md)
        failed = np.flatnonzero(event == 1.0)[:5]
        for i in failed:
            first_col = np.argmax(md.pipe_fail_train[i])
            year = md.train_years[first_col]
            assert exit_age[i] == pytest.approx(year - md.pipe_laid_year[i] + 0.5)


class TestExposureRows:
    def test_row_count(self, small_model_data):
        X, counts, a0, a1 = _pipe_year_exposure(small_model_data)
        n = small_model_data.n_pipes * len(small_model_data.train_years)
        assert X.shape[0] == counts.size == a0.size == a1.size == n

    def test_one_year_windows(self, small_model_data):
        _, _, a0, a1 = _pipe_year_exposure(small_model_data)
        assert np.allclose(a1 - a0, 1.0)

    def test_counts_total(self, small_model_data):
        _, counts, _, _ = _pipe_year_exposure(small_model_data)
        assert counts.sum() == small_model_data.pipe_fail_train.sum()


class TestAdapters:
    def test_cox_beats_chance(self, small_model_data):
        scores = CoxPHModel().fit_predict(small_model_data)
        assert scores.shape == (small_model_data.n_pipes,)
        assert empirical_auc(scores, small_model_data.pipe_fail_test) > 0.5

    def test_weibull_beats_chance(self, small_model_data):
        scores = WeibullModel().fit_predict(small_model_data)
        assert empirical_auc(scores, small_model_data.pipe_fail_test) > 0.5

    @pytest.mark.parametrize("kind,name", [
        ("exponential", "TimeExp"), ("power", "TimePow"), ("linear", "TimeLin"),
    ])
    def test_time_models_run(self, small_model_data, kind, name):
        model = TimeRateModel(kind=kind)
        assert model.name == name
        scores = model.fit_predict(small_model_data)
        assert np.all(scores >= 0)

    def test_time_model_unknown_kind(self):
        with pytest.raises(ValueError):
            TimeRateModel(kind="quadratic")

    def test_predict_before_fit(self, small_model_data):
        for model in (CoxPHModel(), WeibullModel(), TimeRateModel(kind="power")):
            with pytest.raises(RuntimeError):
                model.predict_pipe_risk(small_model_data)

    def test_time_model_rate_depends_only_on_age(self, small_model_data):
        """Age-only models: per-metre rate is a function of age alone."""
        md = small_model_data
        scores = TimeRateModel(kind="exponential").fit_predict(md)
        ages = md.pipe_ages(md.test_year)
        dense = scores / np.maximum(md.pipe_lengths, 1.0)  # rate per metre
        same_age = np.flatnonzero(ages == ages[0])
        assert np.allclose(dense[same_age], dense[same_age][0], rtol=1e-9)
        # And the rate curve is monotone (exponential in age).
        order = np.argsort(ages)
        diffs = np.diff(dense[order])
        assert np.all(diffs >= -1e-12) or np.all(diffs <= 1e-12)
