"""Unit tests for the pipe / segment asset model."""

import pytest

from repro.network.pipe import (
    CWM_DIAMETER_MM,
    Coating,
    Material,
    Pipe,
    PipeClass,
    PipeSegment,
)


def make_pipe(diameter=300.0, laid=1950, n_segments=3, pipe_id="P1"):
    segs = [
        PipeSegment(f"{pipe_id}/s{k}", pipe_id, (k * 10.0, 0.0), ((k + 1) * 10.0, 0.0))
        for k in range(n_segments)
    ]
    return Pipe(
        pipe_id=pipe_id,
        material=Material.CICL,
        coating=Coating.TAR,
        diameter_mm=diameter,
        laid_year=laid,
        segments=segs,
    )


class TestPipeSegment:
    def test_length(self):
        seg = PipeSegment("s", "p", (0.0, 0.0), (3.0, 4.0))
        assert seg.length == pytest.approx(5.0)

    def test_midpoint(self):
        seg = PipeSegment("s", "p", (0.0, 0.0), (4.0, 2.0))
        assert seg.midpoint == (2.0, 1.0)

    def test_frozen(self):
        seg = PipeSegment("s", "p", (0.0, 0.0), (1.0, 0.0))
        with pytest.raises(AttributeError):
            seg.pipe_id = "other"


class TestPipe:
    def test_length_sums_segments(self):
        assert make_pipe(n_segments=4).length == pytest.approx(40.0)

    def test_n_segments(self):
        assert make_pipe(n_segments=5).n_segments == 5

    def test_class_boundary(self):
        assert make_pipe(diameter=CWM_DIAMETER_MM).pipe_class is PipeClass.CWM
        assert make_pipe(diameter=CWM_DIAMETER_MM - 1).pipe_class is PipeClass.RWM
        assert make_pipe(diameter=750.0).pipe_class is PipeClass.CWM

    def test_age(self):
        pipe = make_pipe(laid=1950)
        assert pipe.age_in(2000) == 50.0
        assert pipe.age_in(1940) == 0.0  # before laying: clipped

    def test_rejects_non_positive_diameter(self):
        with pytest.raises(ValueError):
            make_pipe(diameter=0.0)

    def test_rejects_foreign_segments(self):
        seg = PipeSegment("X/s0", "X", (0.0, 0.0), (1.0, 0.0))
        with pytest.raises(ValueError):
            Pipe("P1", Material.PVC, Coating.NONE, 100.0, 1990, [seg])

    def test_segment_index(self):
        pipe = make_pipe(n_segments=3)
        assert pipe.segment_index("P1/s1") == 1
        with pytest.raises(KeyError):
            pipe.segment_index("P1/s99")

    def test_empty_pipe_has_zero_length(self):
        pipe = Pipe("P9", Material.PVC, Coating.NONE, 100.0, 1990, [])
        assert pipe.length == 0.0
        assert pipe.n_segments == 0
