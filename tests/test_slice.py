"""Unit tests for the slice sampler."""

import numpy as np
import pytest
from scipy import stats

from repro.inference.slice import slice_probability_step, slice_sample_step


class TestSliceSampleStep:
    def test_targets_standard_normal(self, rng):
        x = 0.0
        samples = []
        for _ in range(6000):
            x = slice_sample_step(x, stats.norm.logpdf, rng, width=2.0)
            samples.append(x)
        s = np.asarray(samples[500:])
        assert s.mean() == pytest.approx(0.0, abs=0.08)
        assert s.std() == pytest.approx(1.0, abs=0.08)

    def test_targets_skewed_density(self, rng):
        logpdf = lambda x: float(stats.gamma.logpdf(x, 3.0)) if x > 0 else -np.inf
        x = 2.0
        samples = []
        for _ in range(8000):
            x = slice_sample_step(x, logpdf, rng, width=1.0)
            samples.append(x)
        s = np.asarray(samples[1000:])
        assert s.mean() == pytest.approx(3.0, abs=0.2)

    def test_width_insensitive(self):
        for width in (0.1, 1.0, 10.0):
            rng = np.random.default_rng(3)
            x = 0.0
            samples = [
                x := slice_sample_step(x, stats.norm.logpdf, rng, width=width)
                for _ in range(3000)
            ]
            assert np.mean(samples[500:]) == pytest.approx(0.0, abs=0.15)

    def test_invalid_width(self, rng):
        with pytest.raises(ValueError):
            slice_sample_step(0.0, stats.norm.logpdf, rng, width=0.0)


class TestSliceProbabilityStep:
    def test_targets_beta(self, rng):
        a, b = 2.0, 6.0
        p = 0.5
        samples = []
        for _ in range(8000):
            p = slice_probability_step(p, lambda q: float(stats.beta.logpdf(q, a, b)), rng)
            samples.append(p)
        s = np.asarray(samples[1000:])
        assert s.mean() == pytest.approx(a / (a + b), abs=0.02)
        assert s.var() == pytest.approx(stats.beta.var(a, b), rel=0.25)

    def test_stays_in_unit_interval(self, rng):
        p = 0.0001
        for _ in range(200):
            p = slice_probability_step(p, lambda _q: 0.0, rng)
            assert 0.0 < p < 1.0
