"""Shared fixtures: small cached datasets so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_region, load_wastewater_region
from repro.features import build_model_data
from repro.network import PipeClass


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small region A replica (all pipe classes)."""
    return load_region("A", scale=0.05, seed=9)


@pytest.fixture(scope="session")
def tiny_cwm(tiny_dataset):
    """Critical water mains subset of the tiny dataset."""
    return tiny_dataset.subset(PipeClass.CWM)


@pytest.fixture(scope="session")
def small_model_data(tiny_dataset):
    """ModelData over *all* pipes — enough failures for model behaviour tests."""
    return build_model_data(tiny_dataset)


@pytest.fixture(scope="session")
def tiny_wastewater():
    """A very small waste-water dataset with vegetation layers."""
    return load_wastewater_region("A", scale=0.04, seed=11)
