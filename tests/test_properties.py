"""Cross-module property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking.objective import empirical_auc
from repro.eval.metrics import detection_curve


class TestSurvivalComposition:
    """π = 1 − Π(1 − ρ) over a pipe's segments."""

    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=10)
    )
    @settings(max_examples=50)
    def test_union_bound(self, probs):
        """Series-system failure probability never exceeds the sum."""
        from dataclasses import dataclass

        rho = np.asarray(probs)
        pi = 1.0 - np.prod(1.0 - rho)
        assert pi <= rho.sum() + 1e-9
        assert pi >= rho.max() - 1e-9  # at least the worst segment

    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.3), min_size=2, max_size=8),
        st.integers(0, 7),
        st.floats(min_value=0.01, max_value=0.3),
    )
    @settings(max_examples=50)
    def test_monotone_in_each_segment(self, probs, idx, bump):
        rho = np.asarray(probs)
        idx = idx % len(rho)
        pi_before = 1.0 - np.prod(1.0 - rho)
        rho2 = rho.copy()
        rho2[idx] = min(rho2[idx] + bump, 1.0 - 1e-9)
        pi_after = 1.0 - np.prod(1.0 - rho2)
        assert pi_after >= pi_before - 1e-12

    def test_model_data_composition_matches_direct(self, small_model_data):
        md = small_model_data
        rng = np.random.default_rng(0)
        rho = rng.uniform(0, 0.1, md.n_segments)
        pi = md.survival_pipe_probability(rho)
        # Direct per-pipe computation.
        for i in rng.choice(md.n_pipes, size=20, replace=False):
            members = rho[md.seg_pipe_idx == i]
            assert pi[i] == pytest.approx(1.0 - np.prod(1.0 - members), rel=1e-9)


class TestRankingInvariances:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_auc_invariant_to_joint_permutation(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        scores = rng.standard_normal(n)
        labels = (rng.random(n) < 0.4).astype(float)
        if labels.sum() in (0, n):
            labels[0] = 1.0 - labels[0]
        perm = rng.permutation(n)
        assert empirical_auc(scores, labels) == pytest.approx(
            empirical_auc(scores[perm], labels[perm])
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_detection_curve_invariant_to_joint_permutation(self, seed):
        rng = np.random.default_rng(seed)
        n = 30
        scores = rng.standard_normal(n)  # distinct w.p. 1 → no tie effects
        labels = (rng.random(n) < 0.3).astype(float)
        if labels.sum() == 0:
            labels[0] = 1.0
        perm = rng.permutation(n)
        a = detection_curve(scores, labels)
        b = detection_curve(scores[perm], labels[perm])
        assert np.allclose(a.detected, b.detected)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_detection_area_matches_auc_for_rare_positives(self, seed):
        """For very low prevalence, detection-curve area ≈ ROC AUC."""
        rng = np.random.default_rng(seed)
        n = 3000
        scores = rng.standard_normal(n)
        labels = np.zeros(n)
        labels[rng.choice(n, size=8, replace=False)] = 1.0
        area = detection_curve(scores, labels).area(1.0)
        auc = empirical_auc(scores, labels)
        assert area == pytest.approx(auc, abs=0.01)


class TestCalibrationInvariant:
    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.integers(50, 500),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_calibrated_expectation_hits_target(self, target, n, seed):
        from repro.data.failures import _calibrate_multiplier

        rng = np.random.default_rng(seed)
        hazard = rng.lognormal(-2.0, 1.0, size=n * 12)
        target = min(target, 0.95 * hazard.size)  # feasible targets only
        mult = _calibrate_multiplier(hazard, target)
        achieved = float(np.sum(1.0 - np.exp(-mult * hazard)))
        assert achieved == pytest.approx(target, rel=1e-3)
