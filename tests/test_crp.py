"""Unit and property tests for the Chinese restaurant process."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes.crp import (
    alpha_for_expected_tables,
    expected_tables,
    gibbs_weights,
    log_eppf,
    relabel,
    sample_partition,
    table_counts,
)


class TestSamplePartition:
    def test_labels_contiguous(self, rng):
        labels = sample_partition(100, 2.0, rng)
        k = labels.max() + 1
        assert set(labels) == set(range(k))

    def test_first_customer_first_table(self, rng):
        assert sample_partition(1, 1.0, rng).tolist() == [0]

    def test_zero_customers(self, rng):
        assert sample_partition(0, 1.0, rng).size == 0

    def test_rejects_bad_alpha(self, rng):
        with pytest.raises(ValueError):
            sample_partition(10, 0.0, rng)

    def test_table_count_grows_with_alpha(self):
        rng = np.random.default_rng(7)
        small = np.mean([sample_partition(200, 0.5, rng).max() + 1 for _ in range(20)])
        rng = np.random.default_rng(7)
        large = np.mean([sample_partition(200, 10.0, rng).max() + 1 for _ in range(20)])
        assert large > small

    def test_expected_tables_matches_simulation(self):
        rng = np.random.default_rng(11)
        n, alpha = 150, 3.0
        sims = [sample_partition(n, alpha, rng).max() + 1 for _ in range(300)]
        assert np.mean(sims) == pytest.approx(expected_tables(n, alpha), rel=0.08)


class TestEPPF:
    def test_single_customer(self):
        assert log_eppf(np.array([1]), 2.0) == pytest.approx(0.0)

    def test_two_customers_same_table(self):
        # P = 1/(1+alpha)
        alpha = 2.0
        assert log_eppf(np.array([2]), alpha) == pytest.approx(np.log(1 / (1 + alpha)))

    def test_two_customers_split(self):
        alpha = 2.0
        assert log_eppf(np.array([1, 1]), alpha) == pytest.approx(np.log(alpha / (1 + alpha)))

    def test_normalises_over_partitions_n3(self):
        """Σ over all set partitions of 3 customers = 1."""
        alpha = 1.7
        partitions = [
            [3],  # {123}
            [2, 1],  # {12}{3}
            [2, 1],  # {13}{2}
            [2, 1],  # {23}{1}
            [1, 1, 1],  # {1}{2}{3}
        ]
        total = sum(np.exp(log_eppf(np.array(p), alpha)) for p in partitions)
        assert total == pytest.approx(1.0, rel=1e-9)

    @given(st.lists(st.integers(1, 10), min_size=1, max_size=6), st.floats(0.1, 10.0))
    @settings(max_examples=50)
    def test_invariant_to_order(self, counts, alpha):
        a = log_eppf(np.array(counts), alpha)
        b = log_eppf(np.array(sorted(counts)), alpha)
        assert a == pytest.approx(b)

    def test_matches_sequential_probability(self, rng):
        """EPPF equals the product of sequential seating probabilities."""
        alpha = 1.3
        labels = sample_partition(12, alpha, rng)
        # Sequential probability of this exact label sequence:
        prob = 1.0
        counts: list[float] = []
        for l, lab in enumerate(labels):
            if l == 0:
                counts.append(1.0)
                continue
            denom = l + alpha
            if lab < len(counts):
                prob *= counts[lab] / denom
                counts[lab] += 1
            else:
                prob *= alpha / denom
                counts.append(1.0)
        # EPPF is for the unordered partition; the sequential probability of
        # one ordering whose labels appear in canonical order equals it.
        assert np.log(prob) == pytest.approx(log_eppf(table_counts(labels), alpha))


class TestGibbsWeightsAndUtilities:
    def test_gibbs_weights_layout(self):
        w = gibbs_weights(np.array([3.0, 1.0]), 0.5)
        assert w.tolist() == [3.0, 1.0, 0.5]

    def test_gibbs_weights_reject_negative(self):
        with pytest.raises(ValueError):
            gibbs_weights(np.array([-1.0]), 0.5)

    def test_expected_tables_monotone_in_n(self):
        assert expected_tables(100, 1.0) > expected_tables(10, 1.0)

    def test_alpha_for_expected_tables_inverts(self):
        n, target = 500, 12.0
        alpha = alpha_for_expected_tables(n, target)
        assert expected_tables(n, alpha) == pytest.approx(target, rel=1e-3)

    def test_alpha_solver_bounds(self):
        with pytest.raises(ValueError):
            alpha_for_expected_tables(10, 100.0)

    def test_relabel_canonical(self):
        out = relabel(np.array([5, 5, 2, 5, 7]))
        assert out.tolist() == [0, 0, 1, 0, 2]

    def test_table_counts(self):
        assert table_counts(np.array([0, 0, 1, 2, 2])).tolist() == [2, 1, 2]
