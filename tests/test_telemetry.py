"""Telemetry: spans, counters, gauges, traces, and ``repro status``.

Pins the three contracts the instrumentation layer makes:

* recording — nested spans carry their per-thread ancestry path; counters
  and gauges are thread-safe; everything lands in the JSONL trace and
  round-trips through the aggregation helpers;
* the disabled default is a true no-op — one shared context-manager
  object, nothing recorded (the perf smoke bounds its cost);
* ``repro status`` renders a faithful report over a journalled run
  directory, in flight or finished, with or without a trace.
"""

import os
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main as cli_main
from repro.eval.experiment import ModelEvaluation, RegionRun
from repro.runs import CellSpec, JournalError, RunJournal
from repro.telemetry import (
    TRACE_ENV,
    TRACE_NAME,
    TelemetryRecorder,
    aggregate_counters,
    aggregate_gauges,
    aggregate_spans,
    format_status,
    format_trace_report,
    read_trace,
    render_metrics,
    render_recorder,
    run_status,
    sanitize_metric_name,
    summarize_trace,
    write_metrics,
)


@pytest.fixture(autouse=True)
def _clean_recorder(monkeypatch):
    """Every test starts from (and returns to) the disabled global recorder."""
    monkeypatch.delenv(TRACE_ENV, raising=False)
    telemetry.disable()
    yield
    telemetry.disable()


class TestSpans:
    def test_nested_spans_record_ancestry_paths(self):
        rec = telemetry.configure(enabled=True)
        with telemetry.span("outer", region="A"):
            with telemetry.span("inner"):
                pass
        paths = [s.path for s in rec.snapshot()["spans"]]
        # Inner closes first; both carry the full ancestry.
        assert paths == ["outer/inner", "outer"]

    def test_span_attrs_and_identity_fields(self):
        rec = telemetry.configure(enabled=True)
        with telemetry.span("fit", region="A", sweeps=5):
            pass
        (record,) = rec.snapshot()["spans"]
        assert record.name == "fit"
        assert record.attrs == {"region": "A", "sweeps": 5}
        assert record.pid == os.getpid()
        assert record.duration_s >= 0.0

    def test_per_thread_stacks_do_not_interleave(self):
        rec = telemetry.configure(enabled=True)
        barrier = threading.Barrier(2)

        def work(tag):
            with telemetry.span(f"outer-{tag}"):
                barrier.wait(timeout=5)
                with telemetry.span(f"inner-{tag}"):
                    pass

        threads = [threading.Thread(target=work, args=(t,)) for t in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        paths = {s.path for s in rec.snapshot()["spans"]}
        assert paths == {
            "outer-a/inner-a",
            "outer-a",
            "outer-b/inner-b",
            "outer-b",
        }

    def test_span_survives_exceptions(self):
        rec = telemetry.configure(enabled=True)
        with pytest.raises(RuntimeError):
            with telemetry.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in rec.snapshot()["spans"]] == ["boom"]
        # The stack unwound: a later span is top-level again.
        with telemetry.span("after"):
            pass
        assert rec.snapshot()["spans"][-1].path == "after"


class TestCountersAndGauges:
    def test_counts_accumulate_thread_safely(self):
        rec = telemetry.configure(enabled=True)

        def bump():
            for _ in range(1000):
                telemetry.count("hits")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.snapshot()["counters"] == {"hits": 4000.0}

    def test_gauge_keeps_latest_value(self):
        rec = telemetry.configure(enabled=True)
        telemetry.gauge("accept", 0.1)
        telemetry.gauge("accept", 0.3)
        assert rec.snapshot()["gauges"] == {"accept": 0.3}

    def test_timed_iter_counts_items(self):
        rec = telemetry.configure(enabled=True)
        assert list(telemetry.timed_iter("sweeps", range(4))) == [0, 1, 2, 3]
        assert rec.snapshot()["counters"] == {"sweeps": 4.0}

    def test_reset_drops_everything(self):
        rec = telemetry.configure(enabled=True)
        with telemetry.span("s"):
            telemetry.count("c")
        telemetry.gauge("g", 1.0)
        rec.reset()
        snap = rec.snapshot()
        assert snap["spans"] == [] and snap["counters"] == {} and snap["gauges"] == {}


class TestDisabledIsNoOp:
    def test_disabled_span_is_the_shared_singleton(self):
        assert not telemetry.enabled()
        a = telemetry.span("hot", attr=1)
        b = telemetry.span("other")
        assert a is b  # no allocation on the disabled path

    def test_disabled_records_nothing(self):
        with telemetry.span("hot"):
            telemetry.count("c", 5)
            telemetry.gauge("g", 2.0)
        snap = telemetry.get_recorder().snapshot()
        assert snap["spans"] == [] and snap["counters"] == {} and snap["gauges"] == {}

    def test_disabled_timed_iter_passthrough(self):
        assert list(telemetry.timed_iter("c", iter("ab"))) == ["a", "b"]
        assert telemetry.get_recorder().snapshot()["counters"] == {}


class TestTraceFile:
    def test_round_trip_through_aggregation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry.configure(trace_path=path)
        with telemetry.span("fit", region="A"):
            with telemetry.span("sweep"):
                telemetry.count("sweeps", 3)
        telemetry.gauge("accept", 0.25)
        telemetry.count("sweeps", 2)
        telemetry.flush()
        records = read_trace(path)
        spans = aggregate_spans(records)
        assert spans["fit"].count == 1 and spans["sweep"].count == 1
        assert "fit/sweep" in aggregate_spans(records, by="path")
        # Two counter flushes (top-level span exit, explicit) sum as deltas.
        assert aggregate_counters(records) == {"sweeps": 5.0}
        assert aggregate_gauges(records) == {"accept": 0.25}
        report = format_trace_report(summarize_trace(path))
        assert "fit" in report and "sweeps" in report and "accept" in report

    def test_counters_flush_on_top_level_span_exit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry.configure(trace_path=path)
        with telemetry.span("top"):
            telemetry.count("x")
        # No explicit flush: the top-level span exit exported the delta.
        assert aggregate_counters(read_trace(path)) == {"x": 1.0}

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry.configure(trace_path=path)
        with telemetry.span("ok"):
            pass
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "span", "name": "torn"\n')  # torn write
            handle.write("42\n")  # parseable but not a record
        records = read_trace(path)
        assert [r["name"] for r in records if r["kind"] == "span"] == ["ok"]

    def test_missing_trace_reads_empty(self, tmp_path):
        assert read_trace(tmp_path / "absent.jsonl") == []

    def test_configure_publishes_and_disable_retracts_env(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry.configure(trace_path=path)
        assert os.environ[TRACE_ENV] == str(path)
        telemetry.disable()
        assert TRACE_ENV not in os.environ

    def test_second_recorder_appends_to_same_file(self, tmp_path):
        """A pool worker's fresh recorder traces into the parent's file."""
        path = tmp_path / "trace.jsonl"
        telemetry.configure(trace_path=path)
        with telemetry.span("parent"):
            pass
        worker = TelemetryRecorder(enabled=True, trace_path=path)
        with worker.span("worker"):
            pass
        names = {r["name"] for r in read_trace(path) if r["kind"] == "span"}
        assert names == {"parent", "worker"}

    def test_unwritable_trace_path_never_raises(self, tmp_path):
        telemetry.configure(trace_path=tmp_path / "trace.jsonl")
        rec = telemetry.get_recorder()
        rec._trace_path = tmp_path  # a directory: every write hits OSError
        with telemetry.span("still-fine"):
            telemetry.count("c")
        telemetry.flush()
        assert [s.name for s in rec.snapshot()["spans"]] == ["still-fine"]

    def test_summarize_live_recorder(self):
        rec = telemetry.configure(enabled=True)
        with telemetry.span("mem"):
            telemetry.count("c", 2)
        summary = summarize_trace(rec)
        assert summary["spans"]["mem"].count == 1
        assert summary["counters"] == {"c": 2.0}


def _tiny_run(seed=0, n=20):
    rng = np.random.default_rng(seed)
    run = RegionRun(
        region="A",
        seed=seed,
        labels=(rng.random(n) < 0.2).astype(float),
        pipe_lengths=rng.uniform(1, 9, n),
    )
    run.evaluations["Cox"] = ModelEvaluation(
        model_name="Cox",
        scores=rng.standard_normal(n),
        auc=0.7,
        auc_budget_permyriad=3.0,
    )
    return run


def _journalled_run(tmp_path, finished=False):
    """A hand-built 1×3 run: A-r000 done, A-r002 failed, A-r001 started."""
    run_dir = tmp_path / "run"
    journal = RunJournal.create(run_dir, {"regions": ["A"], "n_repeats": 3})
    journal.log_event("run_started")
    journal.log_event("cell_started", cell="A-r000", attempt=1, seed=1000)
    journal.save_cell(CellSpec(region="A", repeat=0, seed=1000), _tiny_run(seed=1000))
    journal.log_event(
        "cell_completed", cell="A-r000", attempt=1, seed=1000, duration_s=1.25
    )
    journal.log_event("cell_started", cell="A-r002", attempt=1, seed=1002)
    journal.log_event("cell_retried", cell="A-r002", next_seed=51002)
    journal.log_event("cell_started", cell="A-r002", attempt=2, seed=51002)
    journal.record_failure(
        CellSpec(region="A", repeat=2, seed=51002),
        error="Traceback …\nInjectedFault: boom",
        error_type="InjectedFault",
        attempts=2,
    )
    journal.log_event("cell_started", cell="A-r001", attempt=1, seed=1001)
    if finished:
        journal.log_event("run_aborted")
    return run_dir


class TestRunStatus:
    def test_in_flight_states(self, tmp_path):
        status = run_status(_journalled_run(tmp_path))
        assert not status.finished
        assert status.regions == ["A"] and status.n_repeats == 3
        states = {c.cell_id: c.state for c in status.cells}
        assert states == {"A-r000": "done", "A-r001": "running", "A-r002": "failed"}
        assert status.counts() == {"done": 1, "failed": 1, "running": 1, "pending": 0}

    def test_finished_run_has_no_running_cells(self, tmp_path):
        status = run_status(_journalled_run(tmp_path, finished=True))
        assert status.finished
        states = {c.cell_id: c.state for c in status.cells}
        # A started-but-unfinished cell in a finished run is pending, not running.
        assert states["A-r001"] == "pending"

    def test_cell_detail_from_events_and_failure_records(self, tmp_path):
        status = run_status(_journalled_run(tmp_path))
        by_id = {c.cell_id: c for c in status.cells}
        assert by_id["A-r000"].duration_s == pytest.approx(1.25)
        failed = by_id["A-r002"]
        assert failed.attempts == 2
        assert failed.error_type == "InjectedFault"
        assert status.retries == {"A-r002": 1}

    def test_format_renders_strip_failures_and_retries(self, tmp_path):
        text = format_status(run_status(_journalled_run(tmp_path)))
        assert "[in flight]" in text
        assert "[#>x]" in text  # done / running / failed glyph strip
        assert "A-r002: InjectedFault after 2 attempt(s)" in text
        assert "retries: 1 (A-r002×1)" in text
        assert "InjectedFault: boom" in text

    def test_verbose_lists_untimed_cells(self, tmp_path):
        run_dir = _journalled_run(tmp_path)
        terse = format_status(run_status(run_dir))
        verbose = format_status(run_status(run_dir), verbose=True)
        assert "A-r001" not in terse  # untimed and unfailed: strip glyph only
        assert f"{'A-r001':<12s} running" in verbose

    def test_trace_summary_folded_in(self, tmp_path):
        run_dir = _journalled_run(tmp_path)
        telemetry.configure(trace_path=run_dir / TRACE_NAME)
        with telemetry.span("cell.compute"):
            telemetry.count("dpmhbp.sweeps", 40)
        telemetry.flush()
        telemetry.disable()
        status = run_status(run_dir)
        assert status.trace_summary is not None
        assert status.trace_summary["counters"] == {"dpmhbp.sweeps": 40.0}
        text = format_status(status)
        assert f"trace ({TRACE_NAME}):" in text and "cell.compute" in text

    def test_not_a_run_directory(self, tmp_path):
        with pytest.raises(JournalError, match="not a run directory"):
            run_status(tmp_path)

    def test_gauges_only_trace_with_zero_completed_cells(self, tmp_path):
        """Regression: a traced run that completed nothing renders cleanly.

        A run can die (or still be warming up) after writing only gauge
        lines — no spans, no counters, no completed cells. The report must
        not open its trace section with a stray blank line, and verbose
        must still list the pending cells even though none has a timing.
        """
        run_dir = tmp_path / "run"
        RunJournal.create(run_dir, {"regions": ["A"], "n_repeats": 2})
        telemetry.configure(trace_path=run_dir / TRACE_NAME)
        telemetry.gauge("chain.rhat", 1.02)
        telemetry.flush()
        telemetry.disable()

        status = run_status(run_dir)
        assert status.counts() == {"done": 0, "failed": 0, "running": 0, "pending": 2}
        assert status.trace_summary["gauges"] == {"chain.rhat": 1.02}

        text = format_status(status)
        # The gauge table follows the trace header directly — no leading
        # blank separator when spans and counters are absent.
        assert f"trace ({TRACE_NAME}):\ngauges:" in text
        assert "chain.rhat" in text

        verbose = format_status(status, verbose=True)
        assert f"{'A-r000':<12s} pending" in verbose
        assert f"{'A-r001':<12s} pending" in verbose
        # No timed cell: the duration column shows the placeholder and the
        # total/mean footer is withheld.
        assert "cell time:" not in verbose


class TestStatusCLI:
    def test_in_flight_exits_zero(self, tmp_path, capsys):
        run_dir = _journalled_run(tmp_path)
        assert cli_main(["status", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "in flight" in out and "A-r000" in out

    def test_finished_with_failures_exits_one(self, tmp_path, capsys):
        run_dir = _journalled_run(tmp_path, finished=True)
        assert cli_main(["status", str(run_dir)]) == 1
        assert "failures:" in capsys.readouterr().out

    def test_bad_directory_exits_two(self, tmp_path, capsys):
        assert cli_main(["status", str(tmp_path)]) == 2
        assert "not a run directory" in capsys.readouterr().err

    def test_trace_flag_reports_and_disables(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        rc = cli_main(
            ["summary", "--regions", "A", "--scale", "0.05", "--trace", str(trace)]
        )
        assert rc == 0
        assert "--- telemetry (summary) ---" in capsys.readouterr().err
        # The flag's enablement is scoped to the command: global state restored.
        assert not telemetry.enabled()
        assert TRACE_ENV not in os.environ


class TestPrometheusExporter:
    def test_sanitize_maps_dots_to_underscores(self):
        assert sanitize_metric_name("chain.rhat.n_clusters") == (
            "repro_chain_rhat_n_clusters"
        )
        # Idempotent on already-valid names, custom prefixes respected.
        assert sanitize_metric_name("gibbs_sweeps") == "repro_gibbs_sweeps"
        assert sanitize_metric_name("x.y", prefix="pfx_") == "pfx_x_y"
        with pytest.raises(ValueError):
            sanitize_metric_name("", prefix="")

    def test_render_emits_typed_sorted_families(self):
        text = render_metrics(
            {"dpmhbp.sweeps": 40.0, "gibbs.sweeps": 120.0},
            {"chain.rhat": 1.0171, "chain.health": 0.0},
        )
        lines = text.splitlines()
        # Counters first (sorted, _total-suffixed), then gauges (sorted).
        assert lines == [
            "# TYPE repro_dpmhbp_sweeps_total counter",
            "repro_dpmhbp_sweeps_total 40",
            "# TYPE repro_gibbs_sweeps_total counter",
            "repro_gibbs_sweeps_total 120",
            "# TYPE repro_chain_health gauge",
            "repro_chain_health 0",
            "# TYPE repro_chain_rhat gauge",
            "repro_chain_rhat 1.0171",
        ]
        assert text.endswith("\n")

    def test_total_suffix_not_doubled(self):
        text = render_metrics({"sweeps_total": 3.0}, {})
        assert "repro_sweeps_total 3" in text
        assert "total_total" not in text

    def test_non_finite_values_use_prometheus_literals(self):
        text = render_metrics({}, {
            "nan": float("nan"),
            "pos": float("inf"),
            "neg": float("-inf"),
        })
        assert "repro_nan NaN" in text
        assert "repro_pos +Inf" in text
        assert "repro_neg -Inf" in text

    def test_empty_recorder_renders_empty_string(self):
        assert render_metrics({}, {}) == ""

    def test_render_recorder_reads_live_state(self):
        telemetry.configure(enabled=True)
        telemetry.count("gibbs.sweeps", 7)
        telemetry.gauge("chain.rhat", 1.05)
        text = render_recorder()
        assert "repro_gibbs_sweeps_total 7" in text
        assert "repro_chain_rhat 1.05" in text

    def test_write_metrics_is_atomic_and_mkdirs(self, tmp_path):
        telemetry.configure(enabled=True)
        telemetry.gauge("chain.health", 2.0)
        path = write_metrics(tmp_path / "deep" / "metrics.prom")
        assert path.read_text() == (
            "# TYPE repro_chain_health gauge\nrepro_chain_health 2\n"
        )
        # No temp droppings left behind.
        assert [p.name for p in path.parent.iterdir()] == ["metrics.prom"]

    def test_cli_metrics_out_exports_run_counters(self, tmp_path, capsys, monkeypatch):
        # Serial execution keeps the counters in this process' recorder
        # (workers' counters only fold back through a trace file).
        monkeypatch.setenv("REPRO_JOBS", "1")
        metrics = tmp_path / "metrics.prom"
        rc = cli_main(
            [
                "compare",
                "--region",
                "A",
                "--scale",
                "0.05",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert rc == 0
        assert f"metrics: {metrics}" in capsys.readouterr().err
        text = metrics.read_text()
        assert "# TYPE repro_dpmhbp_sweeps_total counter" in text
        # The DPMHBP fit's pooled convergence verdict rode along as gauges.
        assert "# TYPE repro_chain_health gauge" in text
        # The flag's enablement was scoped to the command.
        assert not telemetry.enabled()
