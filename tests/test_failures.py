"""Unit tests for the failure simulator and its calibration."""

import numpy as np
import pytest

from repro.data.datasets import build_environment
from repro.data.failures import (
    _calibrate_multiplier,
    build_ground_truth,
    simulate_failures,
)
from repro.data.generator import generate_network
from repro.data.regions import OBSERVATION_YEARS, get_region
from repro.network.pipe import PipeClass


@pytest.fixture(scope="module")
def sim():
    spec = get_region("A", scale=0.05)
    rng = np.random.default_rng(3)
    net = generate_network(spec, rng)
    env = build_environment(net, spec, rng)
    truth = build_ground_truth(net, env.soil, env.traffic, spec, rng)
    records = simulate_failures(net, truth, rng)
    return spec, net, truth, records


class TestCalibrateMultiplier:
    def test_hits_target(self):
        h = np.full(1000, 0.01)
        mult = _calibrate_multiplier(h, 50.0)
        achieved = np.sum(1.0 - np.exp(-mult * h))
        assert achieved == pytest.approx(50.0, rel=1e-4)

    def test_zero_target(self):
        assert _calibrate_multiplier(np.ones(10), 0.0) == 0.0

    def test_nonlinear_saturation_handled(self):
        # Target close to the number of cells forces large multipliers.
        h = np.full(100, 1.0)
        mult = _calibrate_multiplier(h, 99.0)
        assert np.sum(1.0 - np.exp(-mult * h)) == pytest.approx(99.0, rel=1e-3)


class TestGroundTruth:
    def test_shapes(self, sim):
        _, net, truth, _ = sim
        n_seg = net.n_segments
        assert truth.hazard.shape == (n_seg, len(OBSERVATION_YEARS))
        assert truth.failure_probability.shape == truth.hazard.shape
        assert len(truth.segment_ids) == n_seg

    def test_probabilities_valid(self, sim):
        _, _, truth, _ = sim
        p = truth.failure_probability
        assert np.all((p >= 0) & (p < 1))

    def test_expected_totals_match_spec(self, sim):
        spec, net, truth, _ = sim
        cwm_ids = {p.pipe_id for p in net.pipes(PipeClass.CWM)}
        is_cwm = np.asarray([pid in cwm_ids for pid in truth.pipe_ids])
        expected_cwm = truth.failure_probability[is_cwm].sum()
        expected_rwm = truth.failure_probability[~is_cwm].sum()
        assert expected_cwm == pytest.approx(spec.target_failures_cwm, rel=0.02)
        assert expected_rwm == pytest.approx(spec.target_failures_rwm, rel=0.02)

    def test_hazard_grows_with_age(self, sim):
        """Network-wide hazard in 2009 exceeds 1998 (ageing stock)."""
        _, _, truth, _ = sim
        assert truth.hazard[:, -1].sum() > truth.hazard[:, 0].sum()

    def test_frailty_positive_with_heavy_tail(self, sim):
        _, _, truth, _ = sim
        assert np.all(truth.frailty > 0)
        assert truth.frailty.max() / np.median(truth.frailty) > 3.0

    def test_frailty_has_segment_and_pipe_components(self, sim):
        """Segments of one pipe differ (segment frailty) but share a pipe
        component: within-pipe frailties correlate less than independent."""
        _, _, truth, _ = sim
        by_pipe: dict[str, list[float]] = {}
        for pid, fr in zip(truth.pipe_ids, truth.frailty):
            by_pipe.setdefault(pid, []).append(float(fr))
        multi = [v for v in by_pipe.values() if len(v) >= 2]
        # Within a pipe, segment frailties are not identical...
        assert any(len(set(v)) > 1 for v in multi)
        # ...but the shared pipe component induces positive correlation:
        # pipe means vary more than they would under pure independence.
        import numpy as np

        firsts = np.array([v[0] for v in multi])
        seconds = np.array([v[1] for v in multi])
        assert np.corrcoef(np.log(firsts), np.log(seconds))[0, 1] > 0.05


class TestSimulatedRecords:
    def test_total_count_near_target(self, sim):
        spec, _, _, records = sim
        # Binomial noise around the calibrated expectation.
        sigma = np.sqrt(spec.target_failures_all)
        assert abs(len(records) - spec.target_failures_all) < 5 * sigma

    def test_records_sorted_and_valid(self, sim):
        _, net, _, records = sim
        assert records == sorted(records)
        for rec in records[:100]:
            seg = net.segment(rec.segment_id)
            assert seg.pipe_id == rec.pipe_id
            assert rec.location == seg.midpoint
            assert rec.year in OBSERVATION_YEARS

    def test_at_most_one_failure_per_segment_year(self, sim):
        _, _, _, records = sim
        keys = [(r.segment_id, r.year) for r in records]
        assert len(keys) == len(set(keys))

    def test_failures_cluster_on_high_hazard_segments(self, sim):
        """Failed segments have systematically higher latent hazard."""
        _, _, truth, records = sim
        index = {sid: i for i, sid in enumerate(truth.segment_ids)}
        failed_rows = {index[r.segment_id] for r in records}
        mean_h = truth.hazard.mean(axis=1)
        failed_mask = np.zeros(len(mean_h), dtype=bool)
        failed_mask[list(failed_rows)] = True
        assert mean_h[failed_mask].mean() > 2.0 * mean_h[~failed_mask].mean()

    def test_determinism(self):
        spec = get_region("B", scale=0.03)
        outs = []
        for _ in range(2):
            rng = np.random.default_rng(99)
            net = generate_network(spec, rng)
            env = build_environment(net, spec, rng)
            truth = build_ground_truth(net, env.soil, env.traffic, spec, rng)
            outs.append(simulate_failures(net, truth, rng))
        assert outs[0] == outs[1]
