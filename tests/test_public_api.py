"""The public API surface: everything advertised must import and be usable."""

import inspect

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_exports_resolve(self, name):
        assert hasattr(repro, name), f"repro.{name} missing"

    def test_models_share_interface(self):
        from repro.core.base import FailureModel

        for cls in (
            repro.AUCRankingModel,
            repro.CoxPHModel,
            repro.DPMHBPModel,
            repro.HBPModel,
            repro.HBPBestModel,
            repro.SVMRankingModel,
            repro.WeibullModel,
        ):
            assert issubclass(cls, FailureModel)
            assert callable(getattr(cls, "fit"))
            assert callable(getattr(cls, "predict_pipe_risk"))

    def test_public_functions_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_subpackages_importable(self):
        import repro.bayes
        import repro.core
        import repro.data
        import repro.eval
        import repro.features
        import repro.gis
        import repro.inference
        import repro.ml
        import repro.network
        import repro.survival

    def test_default_models_names_match_paper(self):
        names = [m.name for m in repro.default_models(fast=True)]
        for paper_model in ("DPMHBP", "HBP", "Cox", "SVM", "Weibull"):
            assert paper_model in names
