"""The public API surface: everything advertised must import and be usable."""

import inspect
import json

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_exports_resolve(self, name):
        assert hasattr(repro, name), f"repro.{name} missing"

    def test_models_share_interface(self):
        from repro.core.base import FailureModel

        for cls in (
            repro.AUCRankingModel,
            repro.CoxPHModel,
            repro.DPMHBPModel,
            repro.HBPModel,
            repro.HBPBestModel,
            repro.SVMRankingModel,
            repro.WeibullModel,
        ):
            assert issubclass(cls, FailureModel)
            assert callable(getattr(cls, "fit"))
            assert callable(getattr(cls, "predict_pipe_risk"))

    def test_public_functions_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_subpackages_importable(self):
        import repro.bayes
        import repro.core
        import repro.data
        import repro.eval
        import repro.features
        import repro.gis
        import repro.inference
        import repro.ml
        import repro.network
        import repro.survival

    def test_default_models_names_match_paper(self):
        names = [m.name for m in repro.default_models(fast=True)]
        for paper_model in ("DPMHBP", "HBP", "Cox", "SVM", "Weibull"):
            assert paper_model in names

    def test_default_models_follow_paper_ordering(self):
        """The line-up leads with PAPER_MODELS in table order (extensions after)."""
        from repro.eval.experiment import PAPER_MODELS

        names = [m.name for m in repro.default_models(fast=True)]
        assert tuple(names[: len(PAPER_MODELS)]) == PAPER_MODELS

    def test_runs_subsystem_exported(self):
        import repro.runs

        for name in repro.runs.__all__:
            assert hasattr(repro.runs, name), f"repro.runs.{name} missing"
        for name in ("CellSpec", "FaultInjector", "RunJournal", "RunPolicy"):
            assert getattr(repro, name) is getattr(repro.runs, name)


class TestGetParamsContract:
    """``FailureModel.get_params``: plain-data config, no fitted state."""

    def test_params_are_json_able_plain_data(self):
        for model in repro.default_models(fast=True):
            params = model.get_params()
            json.dumps(params)  # must not raise
            assert params["name"] == model.name

    def test_fitted_state_excluded(self):
        for model in repro.default_models(fast=True):
            for key in model.get_params():
                assert not key.startswith("_") and not key.endswith("_"), (
                    f"{type(model).__name__}.get_params leaked fitted field {key!r}"
                )

    def test_params_reconstruct_an_equivalent_model(self):
        for model in repro.default_models(fast=True):
            clone = type(model)(**model.get_params())
            assert clone.get_params() == model.get_params()
