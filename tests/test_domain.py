"""Unit tests for domain-knowledge feature screening."""

import numpy as np
import pytest

from repro.features.builder import build_model_data
from repro.features.domain import (
    basic_config,
    correlation_screen,
    expert_config,
    expert_screen,
    is_expert_endorsed,
    naive_config,
)


class TestEndorsement:
    @pytest.mark.parametrize(
        "name",
        [
            "material=PVC",
            "coating=TAR",
            "diameter_mm",
            "soil_corrosiveness=severe",
            "dist_to_intersection_m",
            "tree_canopy_cover",
        ],
    )
    def test_expert_features_endorsed(self, name):
        assert is_expert_endorsed(name)

    @pytest.mark.parametrize("name", ["decoy_0", "decoy_7", "random_junk"])
    def test_decoys_rejected(self, name):
        assert not is_expert_endorsed(name)


class TestExpertScreen:
    def test_removes_decoys(self, tiny_dataset):
        md = build_model_data(tiny_dataset, naive_config(n_decoys=4))
        screened = expert_screen(md)
        assert not any(n.startswith("decoy_") for n in screened.feature_names)
        assert screened.X_pipe.shape[1] == len(screened.feature_names)

    def test_keeps_expert_features(self, tiny_dataset):
        md = build_model_data(tiny_dataset, naive_config(n_decoys=2))
        screened = expert_screen(md)
        assert "diameter_mm" in screened.feature_names
        assert any(n.startswith("soil_geology=") for n in screened.feature_names)

    def test_columns_stay_aligned(self, tiny_dataset):
        md = build_model_data(tiny_dataset, naive_config(n_decoys=2))
        screened = expert_screen(md)
        col = screened.feature_names.index("diameter_mm")
        orig = md.feature_names.index("diameter_mm")
        assert np.array_equal(screened.X_pipe[:, col], md.X_pipe[:, orig])


class TestCorrelationScreen:
    def test_keeps_something(self, small_model_data):
        out = correlation_screen(small_model_data, threshold=0.01)
        assert 0 < len(out.feature_names) <= len(small_model_data.feature_names)

    def test_high_threshold_raises(self, small_model_data):
        with pytest.raises(ValueError):
            correlation_screen(small_model_data, threshold=0.999)

    def test_keeps_strong_correlates(self, small_model_data):
        # log-length correlates with any-failure labels by construction
        # (hazard scales with length); a permissive threshold keeps it.
        out = correlation_screen(small_model_data, threshold=0.005)
        assert "log_length_m" in out.feature_names


class TestConfigs:
    def test_basic_excludes_environment(self):
        cfg = basic_config()
        assert not cfg.include_soil and not cfg.include_traffic

    def test_naive_includes_decoys(self):
        assert naive_config(5).n_noise_decoys == 5

    def test_expert_is_clean(self):
        cfg = expert_config()
        assert cfg.n_noise_decoys == 0 and cfg.include_soil
