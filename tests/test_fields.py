"""Unit tests for GIS field primitives."""

import numpy as np
import pytest

from repro.gis.fields import CategoricalField, ScalarField
from repro.network.geometry import BoundingBox

BOX = BoundingBox(0.0, 0.0, 1000.0, 1000.0)


class TestCategoricalField:
    def test_value_is_nearest_seed_label(self):
        field = CategoricalField(
            seeds=np.array([[0.0, 0.0], [100.0, 0.0]]),
            labels=["left", "right"],
            categories=["left", "right"],
        )
        assert field.value_at((10.0, 0.0)) == "left"
        assert field.value_at((90.0, 0.0)) == "right"

    def test_values_at_many(self):
        field = CategoricalField(
            seeds=np.array([[0.0, 0.0]]), labels=["only"], categories=["only"]
        )
        assert field.values_at([(1.0, 1.0), (5.0, 5.0)]) == ["only", "only"]

    def test_piecewise_constant_regions(self, rng):
        field = CategoricalField.random(BOX, ["a", "b", "c"], 5, rng)
        # Points very close together share a value (almost surely).
        v1 = field.value_at((500.0, 500.0))
        v2 = field.value_at((500.1, 500.1))
        assert v1 == v2

    def test_random_covers_all_categories(self, rng):
        field = CategoricalField.random(BOX, ["a", "b", "c", "d"], 10, rng)
        assert set(field.labels) == {"a", "b", "c", "d"}

    def test_random_respects_weights(self, rng):
        field = CategoricalField.random(BOX, ["common", "rare"], 400, rng, weights=(0.95, 0.05))
        common = sum(1 for l in field.labels if l == "common")
        assert common > 300

    def test_label_category_mismatch(self):
        with pytest.raises(ValueError):
            CategoricalField(np.array([[0.0, 0.0]]), ["x"], ["a"])

    def test_bad_weights(self, rng):
        with pytest.raises(ValueError):
            CategoricalField.random(BOX, ["a", "b"], 5, rng, weights=(1.0,))


class TestScalarField:
    def test_values_in_unit_interval(self, rng):
        field = ScalarField.random(BOX, rng)
        pts = rng.uniform(0, 1000, size=(200, 2))
        v = field.values_at(pts)
        assert np.all((v >= 0) & (v <= 1))

    def test_peak_at_bump_center(self):
        field = ScalarField(
            centers=np.array([[500.0, 500.0]]),
            amplitudes=np.array([0.8]),
            length_scale=50.0,
            baseline=0.0,
        )
        assert field.value_at((500.0, 500.0)) == pytest.approx(0.8)
        assert field.value_at((900.0, 900.0)) < 0.01

    def test_smoothness(self):
        field = ScalarField(
            centers=np.array([[500.0, 500.0]]),
            amplitudes=np.array([0.5]),
            length_scale=100.0,
        )
        a = field.value_at((500.0, 500.0))
        b = field.value_at((501.0, 500.0))
        assert abs(a - b) < 0.001

    def test_single_point_matches_batch(self, rng):
        field = ScalarField.random(BOX, rng)
        p = (123.0, 456.0)
        assert field.value_at(p) == pytest.approx(field.values_at([p])[0])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ScalarField(np.array([[0.0, 0.0]]), np.array([1.0, 2.0]), 10.0)
        with pytest.raises(ValueError):
            ScalarField(np.array([[0.0, 0.0]]), np.array([1.0]), -1.0)
        with pytest.raises(ValueError):
            ScalarField.random(BOX, np.random.default_rng(0), n_bumps=0)
