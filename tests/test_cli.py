"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summary_defaults(self):
        args = build_parser().parse_args(["summary"])
        assert args.regions == ["A", "B", "C"]

    def test_compare_region_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--region", "Z"])

    def test_plan_budget(self):
        args = build_parser().parse_args(["plan", "--budget", "0.02"])
        assert args.budget == 0.02

    def test_jobs_and_executor_flags(self):
        args = build_parser().parse_args(["summary", "--jobs", "4", "--executor", "threads"])
        assert args.jobs == 4
        assert args.executor == "threads"
        # Unset by default so env/serial resolution applies downstream.
        defaults = build_parser().parse_args(["summary"])
        assert defaults.jobs is None and defaults.executor is None

    def test_executor_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--executor", "gpu"])

    def test_parent_flags_shared_by_every_subcommand(self):
        """The parent parser declares the common flags once for all commands."""
        for command in ("summary", "compare", "grid", "riskmap", "plan"):
            args = build_parser().parse_args([command, "--jobs", "2", "--scale", "0.1"])
            assert args.jobs == 2 and args.scale == 0.1
            assert args.on_error == "raise"  # run-control flags ride along too

    def test_grid_run_control_flags(self):
        args = build_parser().parse_args(
            [
                "grid",
                "--regions", "A", "B",
                "--repeats", "4",
                "--run-dir", "runs/exp1",
                "--on-error", "retry",
                "--retries", "1",
                "--cell-timeout", "30",
            ]
        )
        assert args.regions == ["A", "B"]
        assert args.repeats == 4
        assert str(args.run_dir) == "runs/exp1"
        assert args.on_error == "retry"
        assert args.retries == 1
        assert args.cell_timeout == 30.0

    def test_grid_on_error_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["grid", "--on-error", "explode"])

    def test_grid_rejects_run_dir_plus_resume(self, tmp_path):
        from repro.cli import main

        code = main(
            ["grid", "--run-dir", str(tmp_path / "a"), "--resume", str(tmp_path / "b")]
        )
        assert code == 2


class TestCommands:
    def test_summary_runs(self, capsys):
        assert main(["summary", "--regions", "A", "--scale", "0.03", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Region A" in out and "CWM" in out

    def test_riskmap_runs(self, tmp_path, capsys):
        out_file = tmp_path / "m.svg"
        code = main(
            [
                "riskmap",
                "--region",
                "A",
                "--scale",
                "0.05",
                "--seed",
                "9",
                "--sweeps",
                "6",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()

    def test_plan_runs(self, capsys):
        code = main(
            ["plan", "--region", "A", "--scale", "0.05", "--seed", "9", "--sweeps", "6", "--budget", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "net savings" in out
