"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summary_defaults(self):
        args = build_parser().parse_args(["summary"])
        assert args.regions == ["A", "B", "C"]

    def test_compare_region_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--region", "Z"])

    def test_plan_budget(self):
        args = build_parser().parse_args(["plan", "--budget", "0.02"])
        assert args.budget == 0.02

    def test_jobs_and_executor_flags(self):
        args = build_parser().parse_args(["summary", "--jobs", "4", "--executor", "threads"])
        assert args.jobs == 4
        assert args.executor == "threads"
        # Unset by default so env/serial resolution applies downstream.
        defaults = build_parser().parse_args(["summary"])
        assert defaults.jobs is None and defaults.executor is None

    def test_executor_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--executor", "gpu"])


class TestCommands:
    def test_summary_runs(self, capsys):
        assert main(["summary", "--regions", "A", "--scale", "0.03", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Region A" in out and "CWM" in out

    def test_riskmap_runs(self, tmp_path, capsys):
        out_file = tmp_path / "m.svg"
        code = main(
            [
                "riskmap",
                "--region",
                "A",
                "--scale",
                "0.05",
                "--seed",
                "9",
                "--sweeps",
                "6",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()

    def test_plan_runs(self, capsys):
        code = main(
            ["plan", "--region", "A", "--scale", "0.05", "--seed", "9", "--sweeps", "6", "--budget", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "net savings" in out
