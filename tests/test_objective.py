"""Unit and property tests for the AUC ranking objective (Eq. 18.10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking.objective import (
    empirical_auc,
    sigmoid_auc,
    top_fraction_hit_rate,
)


def brute_auc(scores, labels):
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
    return wins / (len(pos) * len(neg))


class TestEmpiricalAUC:
    def test_perfect_ranking(self):
        assert empirical_auc(np.array([3.0, 2.0, 1.0]), np.array([1, 1, 0])) == 1.0

    def test_inverted_ranking(self):
        assert empirical_auc(np.array([1.0, 2.0, 3.0]), np.array([1, 0, 0])) == 0.0

    def test_random_ties_half(self):
        assert empirical_auc(np.zeros(10), np.array([1] * 5 + [0] * 5)) == 0.5

    def test_matches_pairwise_definition(self, rng):
        scores = rng.standard_normal(60)
        labels = (rng.random(60) < 0.3).astype(float)
        if labels.sum() in (0, 60):
            labels[0], labels[1] = 1, 0
        assert empirical_auc(scores, labels) == pytest.approx(brute_auc(scores, labels))

    def test_matches_pairwise_with_ties(self, rng):
        scores = rng.integers(0, 4, 50).astype(float)  # heavy ties
        labels = (rng.random(50) < 0.4).astype(float)
        labels[0], labels[1] = 1, 0
        assert empirical_auc(scores, labels) == pytest.approx(brute_auc(scores, labels))

    def test_degenerate_labels_rejected(self):
        with pytest.raises(ValueError):
            empirical_auc(np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            empirical_auc(np.ones(3), np.zeros(3))

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            empirical_auc(np.ones(3), np.ones(2))

    @given(st.integers(2, 40), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_monotone_transform_invariance(self, n, seed):
        """AUC depends only on the ranking: invariant to exp()."""
        rng = np.random.default_rng(seed)
        scores = rng.standard_normal(n)
        labels = (rng.random(n) < 0.5).astype(float)
        if labels.sum() in (0, n):
            labels[0] = 1.0 - labels[0]
        a = empirical_auc(scores, labels)
        b = empirical_auc(np.exp(scores / 3.0), labels)
        assert a == pytest.approx(b)

    @given(st.integers(2, 40), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_label_flip_symmetry(self, n, seed):
        """AUC(scores, y) + AUC(scores, 1-y) = 1 for tie-free scores."""
        rng = np.random.default_rng(seed)
        scores = rng.permutation(n).astype(float)  # distinct
        labels = (rng.random(n) < 0.5).astype(float)
        if labels.sum() in (0, n):
            labels[0] = 1.0 - labels[0]
        assert empirical_auc(scores, labels) + empirical_auc(scores, 1 - labels) == pytest.approx(1.0)


class TestSigmoidAUC:
    def test_approaches_exact_with_sharpness(self, rng):
        scores = rng.standard_normal(80)
        labels = (rng.random(80) < 0.3).astype(float)
        labels[:2] = [1, 0]
        exact = empirical_auc(scores, labels)
        smooth = sigmoid_auc(scores, labels, sharpness=500.0)
        assert smooth == pytest.approx(exact, abs=0.02)

    def test_bounded(self, rng):
        scores = rng.standard_normal(30)
        labels = np.array([1] * 10 + [0] * 20, dtype=float)
        assert 0.0 <= sigmoid_auc(scores, labels) <= 1.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            sigmoid_auc(np.ones(3), np.ones(3))


class TestTopFractionHitRate:
    def test_perfect_concentration(self):
        scores = np.array([10.0, 9.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        labels = np.array([1, 1, 0, 0, 0, 0, 0, 0, 0, 0], dtype=float)
        assert top_fraction_hit_rate(scores, labels, 0.2) == 1.0

    def test_zero_when_positives_at_bottom(self):
        scores = np.arange(10.0)
        labels = np.zeros(10)
        labels[:2] = 1  # lowest scores
        assert top_fraction_hit_rate(scores, labels, 0.2) == 0.0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            top_fraction_hit_rate(np.ones(3), np.array([1.0, 0, 0]), 0.0)

    def test_no_positives_rejected(self):
        with pytest.raises(ValueError):
            top_fraction_hit_rate(np.ones(3), np.zeros(3), 0.5)
