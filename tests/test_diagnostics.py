"""Unit tests for MCMC convergence diagnostics."""

import numpy as np
import pytest

from repro.inference.diagnostics import (
    autocorrelation,
    effective_sample_size,
    geweke_zscore,
    split_rhat,
    summarise_chain,
)


def ar1(n, rho, rng, start=0.0):
    x = np.empty(n)
    x[0] = start
    noise = rng.standard_normal(n)
    for i in range(1, n):
        x[i] = rho * x[i - 1] + noise[i] * np.sqrt(1 - rho**2)
    return x


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        x = rng.standard_normal(256)
        assert autocorrelation(x)[0] == pytest.approx(1.0)

    def test_iid_has_small_lag1(self, rng):
        x = rng.standard_normal(20000)
        assert abs(autocorrelation(x, max_lag=1)[1]) < 0.03

    def test_ar1_lag1_matches_rho(self, rng):
        x = ar1(40000, 0.7, rng)
        assert autocorrelation(x, max_lag=1)[1] == pytest.approx(0.7, abs=0.03)

    def test_constant_series_safe(self):
        acf = autocorrelation(np.ones(50), max_lag=5)
        assert acf[0] == 1.0 and np.all(acf[1:] == 0.0)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            autocorrelation(np.array([1.0]))


class TestESS:
    def test_iid_ess_near_n(self, rng):
        x = rng.standard_normal(4000)
        assert effective_sample_size(x) > 3000

    def test_correlated_chain_shrinks(self, rng):
        x = ar1(4000, 0.9, rng)
        ess = effective_sample_size(x)
        # Theory: ESS ≈ n(1-ρ)/(1+ρ) ≈ n/19.
        assert ess < 1000

    def test_never_exceeds_n(self, rng):
        x = rng.standard_normal(100)
        assert effective_sample_size(x) <= 100

    def test_tiny_chain(self):
        assert effective_sample_size(np.array([1.0, 2.0])) == 2.0

    def test_constant_chain_is_nan(self):
        # nan means "undiagnosable", never the flattering ESS == n.
        assert np.isnan(effective_sample_size(np.full(100, 3.7)))

    def test_constant_length_3_is_nan(self):
        assert np.isnan(effective_sample_size(np.zeros(3)))

    def test_varying_length_3_is_n(self):
        assert effective_sample_size(np.array([1.0, 2.0, 3.0])) == 3.0


class TestGeweke:
    def test_stationary_chain_small_z(self, rng):
        x = rng.standard_normal(5000)
        assert abs(geweke_zscore(x)) < 3.0

    def test_trending_chain_flagged(self, rng):
        x = np.linspace(0, 5, 2000) + 0.1 * rng.standard_normal(2000)
        assert abs(geweke_zscore(x)) > 5.0

    def test_short_chain_raises(self):
        with pytest.raises(ValueError):
            geweke_zscore(np.ones(10))

    def test_bad_windows_raise(self, rng):
        with pytest.raises(ValueError):
            geweke_zscore(rng.standard_normal(100), first=0.7, last=0.7)

    def test_constant_chain_is_nan_not_zero(self):
        # A constant chain is undiagnosable — not "perfectly converged".
        assert np.isnan(geweke_zscore(np.full(200, 2.5)))

    def test_constant_window_is_nan(self, rng):
        # Early window constant, late window varying: no defined z-score.
        x = np.concatenate([np.zeros(100), rng.standard_normal(900)])
        assert np.isnan(geweke_zscore(x))


class TestSplitRhat:
    def test_well_mixed_near_one(self, rng):
        chains = rng.standard_normal((4, 2000))
        assert split_rhat(chains) == pytest.approx(1.0, abs=0.05)

    def test_disjoint_chains_flagged(self, rng):
        a = rng.standard_normal((1, 1000))
        b = rng.standard_normal((1, 1000)) + 10.0
        assert split_rhat(np.vstack([a, b])) > 2.0

    def test_single_chain_with_trend_flagged(self, rng):
        x = np.linspace(0, 10, 1000) + 0.01 * rng.standard_normal(1000)
        assert split_rhat(x) > 1.5

    def test_constant_chains_are_nan(self):
        # Identical constant chains prove the quantity degenerate, not mixed.
        assert np.isnan(split_rhat(np.ones((2, 100))))

    def test_disjoint_constant_chains_are_nan(self):
        # W == 0 with B > 0: the ratio is undefined, not "infinitely bad".
        chains = np.vstack([np.zeros(50), np.ones(50)])
        assert np.isnan(split_rhat(chains))

    def test_too_short_raises(self):
        with pytest.raises(ValueError, match="at least 4 samples"):
            split_rhat(np.ones((2, 3)))

    def test_length_3_single_chain_raises_clearly(self):
        with pytest.raises(ValueError, match="at least 4 samples"):
            split_rhat(np.array([1.0, 2.0, 3.0]))

    def test_three_dim_input_raises(self):
        with pytest.raises(ValueError, match="n_chains"):
            split_rhat(np.zeros((2, 2, 8)))

    def test_odd_length_drops_last_sample(self, rng):
        # Documented: odd n uses the first 2*(n//2) samples, so a wild
        # final sample cannot move the statistic.
        chains = rng.standard_normal((4, 101))
        spiked = chains.copy()
        spiked[:, -1] = 1e9
        assert split_rhat(spiked) == pytest.approx(split_rhat(chains[:, :100]))


class TestSummarise:
    def test_keys_and_values(self, rng):
        x = rng.standard_normal(500)
        s = summarise_chain(x)
        assert set(s) == {"mean", "sd", "ess", "q05", "q95"}
        assert s["q05"] < s["mean"] < s["q95"]

    def test_constant_chain_carries_nan_ess(self):
        s = summarise_chain(np.full(50, 1.5))
        assert s["mean"] == 1.5 and s["sd"] == 0.0
        assert np.isnan(s["ess"])

    def test_length_3_chain_does_not_raise(self):
        s = summarise_chain(np.array([1.0, 2.0, 4.0]))
        assert s["ess"] == 3.0
        s_const = summarise_chain(np.zeros(3))
        assert np.isnan(s_const["ess"])

    def test_odd_length_chain_summarises(self, rng):
        s = summarise_chain(rng.standard_normal(101))
        assert np.isfinite(s["ess"])
