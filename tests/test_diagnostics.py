"""Unit tests for MCMC convergence diagnostics."""

import numpy as np
import pytest

from repro.inference.diagnostics import (
    autocorrelation,
    effective_sample_size,
    geweke_zscore,
    split_rhat,
    summarise_chain,
)


def ar1(n, rho, rng, start=0.0):
    x = np.empty(n)
    x[0] = start
    noise = rng.standard_normal(n)
    for i in range(1, n):
        x[i] = rho * x[i - 1] + noise[i] * np.sqrt(1 - rho**2)
    return x


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        x = rng.standard_normal(256)
        assert autocorrelation(x)[0] == pytest.approx(1.0)

    def test_iid_has_small_lag1(self, rng):
        x = rng.standard_normal(20000)
        assert abs(autocorrelation(x, max_lag=1)[1]) < 0.03

    def test_ar1_lag1_matches_rho(self, rng):
        x = ar1(40000, 0.7, rng)
        assert autocorrelation(x, max_lag=1)[1] == pytest.approx(0.7, abs=0.03)

    def test_constant_series_safe(self):
        acf = autocorrelation(np.ones(50), max_lag=5)
        assert acf[0] == 1.0 and np.all(acf[1:] == 0.0)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            autocorrelation(np.array([1.0]))


class TestESS:
    def test_iid_ess_near_n(self, rng):
        x = rng.standard_normal(4000)
        assert effective_sample_size(x) > 3000

    def test_correlated_chain_shrinks(self, rng):
        x = ar1(4000, 0.9, rng)
        ess = effective_sample_size(x)
        # Theory: ESS ≈ n(1-ρ)/(1+ρ) ≈ n/19.
        assert ess < 1000

    def test_never_exceeds_n(self, rng):
        x = rng.standard_normal(100)
        assert effective_sample_size(x) <= 100

    def test_tiny_chain(self):
        assert effective_sample_size(np.array([1.0, 2.0])) == 2.0


class TestGeweke:
    def test_stationary_chain_small_z(self, rng):
        x = rng.standard_normal(5000)
        assert abs(geweke_zscore(x)) < 3.0

    def test_trending_chain_flagged(self, rng):
        x = np.linspace(0, 5, 2000) + 0.1 * rng.standard_normal(2000)
        assert abs(geweke_zscore(x)) > 5.0

    def test_short_chain_raises(self):
        with pytest.raises(ValueError):
            geweke_zscore(np.ones(10))

    def test_bad_windows_raise(self, rng):
        with pytest.raises(ValueError):
            geweke_zscore(rng.standard_normal(100), first=0.7, last=0.7)


class TestSplitRhat:
    def test_well_mixed_near_one(self, rng):
        chains = rng.standard_normal((4, 2000))
        assert split_rhat(chains) == pytest.approx(1.0, abs=0.05)

    def test_disjoint_chains_flagged(self, rng):
        a = rng.standard_normal((1, 1000))
        b = rng.standard_normal((1, 1000)) + 10.0
        assert split_rhat(np.vstack([a, b])) > 2.0

    def test_single_chain_with_trend_flagged(self, rng):
        x = np.linspace(0, 10, 1000) + 0.01 * rng.standard_normal(1000)
        assert split_rhat(x) > 1.5

    def test_constant_chain_is_one(self):
        assert split_rhat(np.ones((2, 100))) == 1.0

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            split_rhat(np.ones((2, 3)))


class TestSummarise:
    def test_keys_and_values(self, rng):
        x = rng.standard_normal(500)
        s = summarise_chain(x)
        assert set(s) == {"mean", "sd", "ess", "q05", "q95"}
        assert s["q05"] < s["mean"] < s["q95"]
