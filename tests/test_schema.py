"""Unit tests for record schemas and CSV round-trips."""

import pytest

from repro.data.schema import (
    FailureRecord,
    read_failures_csv,
    write_failures_csv,
    write_pipes_csv,
)
from repro.network.pipe import Coating, Material, Pipe, PipeSegment


class TestFailureRecord:
    def test_ordering_by_year_first(self):
        a = FailureRecord(2001, "P2", "P2/s0", (0.0, 0.0))
        b = FailureRecord(2000, "P1", "P1/s0", (0.0, 0.0))
        assert sorted([a, b])[0] is b

    def test_implausible_year_rejected(self):
        with pytest.raises(ValueError):
            FailureRecord(1500, "P", "P/s0", (0.0, 0.0))

    def test_hashable_for_dedup(self):
        a = FailureRecord(2000, "P", "P/s0", (1.0, 2.0))
        b = FailureRecord(2000, "P", "P/s0", (1.0, 2.0))
        assert len({a, b}) == 1


class TestCSVRoundTrip:
    def test_failures_round_trip(self, tmp_path):
        records = [
            FailureRecord(2001, "P1", "P1/s0", (1.5, 2.5)),
            FailureRecord(2003, "P2", "P2/s1", (-3.0, 4.0)),
        ]
        path = tmp_path / "failures.csv"
        n = write_failures_csv(path, records)
        assert n == 2
        assert read_failures_csv(path) == records

    def test_empty_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_failures_csv(path, [])
        assert read_failures_csv(path) == []

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("year,pipe_id\n2001,P1\n")
        with pytest.raises(ValueError):
            read_failures_csv(path)

    def test_pipes_csv_written(self, tmp_path):
        pipe = Pipe(
            "P1",
            Material.CICL,
            Coating.TAR,
            300.0,
            1950,
            [PipeSegment("P1/s0", "P1", (0.0, 0.0), (10.0, 0.0))],
        )
        path = tmp_path / "pipes.csv"
        assert write_pipes_csv(path, [pipe]) == 1
        text = path.read_text()
        assert "CICL" in text and "1950" in text and "10.0" in text
