"""Unit tests for the network generator."""

import numpy as np
import pytest

from repro.data.generator import era_bucket, generate_network
from repro.data.regions import get_region
from repro.network.pipe import CWM_DIAMETER_MM, Material, PipeClass


@pytest.fixture(scope="module")
def net_and_spec():
    spec = get_region("A", scale=0.03)
    rng = np.random.default_rng(42)
    return generate_network(spec, rng), spec


class TestEraBucket:
    def test_boundaries(self):
        assert era_bucket(1900) == 0
        assert era_bucket(1930) == 1  # boundary year joins the later era
        assert era_bucket(1954) == 1
        assert era_bucket(1955) == 2
        assert era_bucket(1990) == 4
        assert era_bucket(1997) == 4


class TestCounts:
    def test_pipe_counts_match_spec(self, net_and_spec):
        net, spec = net_and_spec
        assert net.n_pipes == spec.n_pipes
        assert len(net.pipes(PipeClass.CWM)) == spec.n_cwm

    def test_class_consistent_with_diameter(self, net_and_spec):
        net, _ = net_and_spec
        for pipe in net.iter_pipes():
            if pipe.pipe_class is PipeClass.CWM:
                assert pipe.diameter_mm >= CWM_DIAMETER_MM
            else:
                assert pipe.diameter_mm < CWM_DIAMETER_MM


class TestAttributes:
    def test_laid_years_within_range(self, net_and_spec):
        net, spec = net_and_spec
        lo, hi = net.laid_year_range()
        assert lo >= spec.laid_year_lo and hi <= spec.laid_year_hi

    def test_laid_years_span_range(self, net_and_spec):
        net, spec = net_and_spec
        lo, hi = net.laid_year_range()
        span = spec.laid_year_hi - spec.laid_year_lo
        assert hi - lo > 0.8 * span  # booms + backfill cover the era

    def test_materials_era_appropriate(self, net_and_spec):
        net, _ = net_and_spec
        for pipe in net.iter_pipes():
            if pipe.material is Material.PVC:
                assert pipe.laid_year >= 1975  # PVC arrives in era 3
            if pipe.material is Material.CI:
                assert pipe.laid_year < 1955  # bare cast iron is early stock

    def test_segment_lengths_roughly_constant(self, net_and_spec):
        """The DPMHBP premise: segment lengths have small variance."""
        net, _ = net_and_spec
        lengths = np.asarray([s.length for s in net.segments()])
        # Single-segment short pipes widen the spread; the bulk is tight.
        assert np.std(lengths) / np.mean(lengths) < 0.5

    def test_segments_connected_in_series(self, net_and_spec):
        net, _ = net_and_spec
        for pipe in list(net.iter_pipes())[:50]:
            for a, b in zip(pipe.segments[:-1], pipe.segments[1:]):
                assert a.end == pytest.approx(b.start)

    def test_pipe_ids_unique_and_prefixed(self, net_and_spec):
        net, spec = net_and_spec
        ids = [p.pipe_id for p in net.iter_pipes()]
        assert len(set(ids)) == len(ids)
        assert all(i.startswith(spec.name) for i in ids)


class TestDeterminism:
    def test_same_seed_same_network(self):
        spec = get_region("B", scale=0.02)
        a = generate_network(spec, np.random.default_rng(7))
        b = generate_network(spec, np.random.default_rng(7))
        pa, pb = a.pipes()[10], b.pipes()[10]
        assert pa.pipe_id == pb.pipe_id
        assert pa.material == pb.material
        assert pa.laid_year == pb.laid_year
        assert pa.segments[0].start == pb.segments[0].start

    def test_different_seed_different_network(self):
        spec = get_region("B", scale=0.02)
        a = generate_network(spec, np.random.default_rng(1))
        b = generate_network(spec, np.random.default_rng(2))
        assert any(
            x.laid_year != y.laid_year for x, y in zip(a.pipes()[:50], b.pipes()[:50])
        )
