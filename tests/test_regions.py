"""Unit tests for region specifications and scaling."""

import pytest

from repro.data.regions import (
    OBSERVATION_YEARS,
    REGION_A,
    REGION_B,
    REGION_C,
    TEST_YEAR,
    TRAIN_YEARS,
    get_region,
)


class TestPaperConstants:
    """The specs must match Table 18.1 exactly at scale 1."""

    def test_region_a(self):
        assert REGION_A.n_pipes == 15_189
        assert REGION_A.n_cwm == 3_793
        assert REGION_A.target_failures_all == 4_093
        assert REGION_A.target_failures_cwm == 520
        assert (REGION_A.laid_year_lo, REGION_A.laid_year_hi) == (1930, 1997)

    def test_region_b(self):
        assert REGION_B.n_pipes == 11_836
        assert REGION_B.n_cwm == 2_457
        assert REGION_B.target_failures_all == 3_694
        assert (REGION_B.laid_year_lo, REGION_B.laid_year_hi) == (1888, 1997)

    def test_region_c(self):
        assert REGION_C.n_pipes == 18_001
        assert REGION_C.target_failures_cwm == 563
        assert REGION_C.density_per_km2 == 300.0

    def test_observation_period(self):
        assert OBSERVATION_YEARS == tuple(range(1998, 2010))
        assert TRAIN_YEARS == tuple(range(1998, 2009))
        assert TEST_YEAR == 2009

    def test_cwm_shares_match_paper(self):
        """CWM share of pipes ~25/21/28%, of failures ~12.7/11.7/12.7%."""
        assert REGION_A.n_cwm / REGION_A.n_pipes == pytest.approx(0.2497, abs=0.001)
        assert REGION_B.n_cwm / REGION_B.n_pipes == pytest.approx(0.2076, abs=0.001)
        assert REGION_C.n_cwm / REGION_C.n_pipes == pytest.approx(0.28, abs=0.001)
        assert REGION_A.target_failures_cwm / REGION_A.target_failures_all == pytest.approx(
            0.1271, abs=0.001
        )


class TestDerivedQuantities:
    def test_area_from_density(self):
        assert REGION_A.area_km2 == pytest.approx(210_000 / 629.0)

    def test_denser_region_smaller_blocks(self):
        assert REGION_B.block_size_m < REGION_A.block_size_m < REGION_C.block_size_m

    def test_rwm_counts(self):
        assert REGION_A.n_rwm == REGION_A.n_pipes - REGION_A.n_cwm
        assert REGION_A.target_failures_rwm == 4_093 - 520


class TestScaling:
    def test_scale_one_is_identity(self):
        assert REGION_A.scaled(1.0) is REGION_A

    def test_counts_scale_proportionally(self):
        s = REGION_A.scaled(0.1)
        assert s.n_pipes == pytest.approx(1519, abs=1)
        assert s.n_cwm == pytest.approx(379, abs=1)
        assert s.target_failures_cwm == pytest.approx(52, abs=1)

    def test_density_preserved(self):
        s = REGION_A.scaled(0.25)
        assert s.density_per_km2 == REGION_A.density_per_km2
        # Area shrinks with population.
        assert s.area_km2 == pytest.approx(REGION_A.area_km2 * 0.25, rel=0.01)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            REGION_A.scaled(0.0)
        with pytest.raises(ValueError):
            REGION_A.scaled(1.5)


class TestGetRegion:
    def test_lookup_case_insensitive(self):
        assert get_region("a", scale=1.0).name == "A"

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            get_region("Z")

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        spec = get_region("A")
        assert spec.n_pipes == pytest.approx(REGION_A.n_pipes * 0.5, abs=1)

    def test_env_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ValueError):
            get_region("A")

    def test_env_scale_out_of_range(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ValueError):
            get_region("A")
