"""Lifetime tests for the shared-memory data plane and persistent pools.

The contract under test: every segment this process publishes is gone —
from the owner registry *and* from ``/dev/shm`` — after the normal
release path, after a worker raises mid-map, after a worker is killed
hard enough to break the pool, and after the shared region cache is
cleared. A leaked segment survives process exit on Linux, so these are
the tests that keep long CI runs from filling the shm tmpfs.
"""

import os
import signal

import numpy as np
import pytest

from repro.core.dpmhbp import DPMHBPModel
from repro.parallel import (
    ExecutorConfig,
    active_segments,
    cached_model_data,
    clear_model_data_cache,
    export_shared_region_cache,
    parallel_map,
    pool_stats,
    publish_bundle,
    publish_model_data,
    release,
    resolve_bundle,
    resolve_model_data,
    retain,
)
from repro.parallel.shm import SEGMENT_PREFIX

PROCS = ExecutorConfig(mode="processes", jobs=2)
SERIAL = ExecutorConfig()


@pytest.fixture(autouse=True)
def _clean_shared_state():
    """Start each test with no cached regions or exported segments.

    Pool creation snapshots the region cache into shared memory
    (``export_shared_region_cache``), so leftovers from earlier test
    modules would otherwise make the leak assertions here ambiguous.
    """
    clear_model_data_cache()
    yield


def _dev_shm_entries() -> list[str]:
    """Segments owned by *this* process still visible in the shm filesystem."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover — non-Linux
        pytest.skip("/dev/shm not available")
    mine = f"{SEGMENT_PREFIX}_{os.getpid()}_"
    return sorted(name for name in os.listdir("/dev/shm") if name.startswith(mine))


def _arrays() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    return {
        "failures": (rng.random((50, 11)) < 0.1).astype(np.int8),
        "features": rng.standard_normal((50, 4)),
        "empty": np.zeros((0, 3)),
    }


def _sum_field(task):
    """Module-level pool worker: resolve the bundle, reduce one field."""
    handle, i = task
    arrays = resolve_bundle(handle)
    return float(arrays["features"][i % arrays["features"].shape[0]].sum())


def _raise_on_odd(task):
    handle, i = task
    if i % 2:
        raise ValueError(f"item {i} is odd")
    return _sum_field(task)


def _kill_self(task):  # pragma: no cover — runs (and dies) in a worker
    os.kill(os.getpid(), signal.SIGKILL)


class TestBundleLifetime:
    def test_publish_resolve_release_roundtrip(self):
        arrays = _arrays()
        handle = publish_bundle(arrays, config=PROCS)
        assert not handle.is_local
        assert handle.segment in active_segments()
        assert _dev_shm_entries() == [handle.segment]
        views = resolve_bundle(handle)
        for name, src in arrays.items():
            assert np.array_equal(views[name], src)
            assert views[name].dtype == src.dtype
            assert not views[name].flags.writeable
        release(handle)
        assert active_segments() == []
        assert _dev_shm_entries() == []

    def test_shared_views_reject_mutation(self):
        handle = publish_bundle(_arrays(), config=PROCS)
        try:
            views = resolve_bundle(handle)
            with pytest.raises(ValueError, match="read-only"):
                views["features"][0, 0] = 99.0
        finally:
            release(handle)

    def test_serial_config_degrades_to_references(self):
        arrays = _arrays()
        handle = publish_bundle(arrays, config=SERIAL)
        assert handle.is_local
        assert _dev_shm_entries() == []
        views = resolve_bundle(handle)
        for name in arrays:
            assert views[name] is arrays[name]  # by reference, zero copies
        release(handle)
        with pytest.raises(KeyError):
            resolve_bundle(handle)

    def test_payload_rides_the_handle(self):
        handle = publish_bundle(
            _arrays(), payload={"region": "A", "years": (1996, 2006)}, config=PROCS
        )
        try:
            assert handle.payload == {"region": "A", "years": (1996, 2006)}
        finally:
            release(handle)

    def test_refcount_survives_one_release(self):
        handle = publish_bundle(_arrays(), config=PROCS)
        retain(handle)
        release(handle)
        assert handle.segment in active_segments()  # still one reference
        release(handle)
        assert active_segments() == []
        assert _dev_shm_entries() == []

    def test_release_is_idempotent(self):
        handle = publish_bundle(_arrays(), config=PROCS)
        release(handle)
        release(handle)  # second release of a gone segment must not raise
        assert _dev_shm_entries() == []


class TestModelDataPlane:
    def test_model_data_roundtrip(self):
        clear_model_data_cache()
        data = cached_model_data("A", scale=0.05, seed=9)
        handle = publish_model_data(data, config=PROCS)
        try:
            rebuilt = resolve_model_data(handle)
            assert rebuilt.region == data.region
            assert rebuilt.pipe_ids == data.pipe_ids
            assert np.array_equal(rebuilt.X_pipe, data.X_pipe)
            assert np.array_equal(rebuilt.seg_fail_train, data.seg_fail_train)
            assert not rebuilt.X_pipe.flags.writeable
        finally:
            release(handle)
        assert _dev_shm_entries() == []

    def test_clear_cache_releases_exported_segments(self):
        clear_model_data_cache()
        cached_model_data("A", scale=0.05, seed=9)
        exported = export_shared_region_cache()
        assert len(exported) == 1
        assert not exported[0][1].is_local
        assert active_segments() != []
        clear_model_data_cache()
        assert active_segments() == []
        assert _dev_shm_entries() == []

    def test_export_is_memoised(self):
        clear_model_data_cache()
        cached_model_data("A", scale=0.05, seed=9)
        first = export_shared_region_cache()
        second = export_shared_region_cache()
        assert [h.segment for _, h in first] == [h.segment for _, h in second]
        clear_model_data_cache()


class TestFanOutLifetime:
    def test_map_then_release_leaves_nothing(self):
        handle = publish_bundle(_arrays(), config=PROCS)
        try:
            results = parallel_map(
                _sum_field, [(handle, i) for i in range(6)], PROCS, chunksize=1
            )
        finally:
            release(handle)
        assert len(results) == 6
        assert active_segments() == []
        assert _dev_shm_entries() == []

    def test_worker_exception_still_releases(self):
        handle = publish_bundle(_arrays(), config=PROCS)
        with pytest.raises(ValueError, match="odd"):
            try:
                parallel_map(
                    _raise_on_odd, [(handle, i) for i in range(4)], PROCS, chunksize=1
                )
            finally:
                release(handle)
        assert active_segments() == []
        assert _dev_shm_entries() == []

    def test_killed_worker_breaks_pool_but_leaks_nothing(self):
        from concurrent.futures.process import BrokenProcessPool

        handle = publish_bundle(_arrays(), config=PROCS)
        before = pool_stats()
        # Two items: a single-item map short-circuits to the in-process
        # serial path, which would kill the test process itself.
        with pytest.raises(BrokenProcessPool):
            try:
                parallel_map(
                    _kill_self, [(handle, 0), (handle, 1)], PROCS, chunksize=1
                )
            finally:
                release(handle)
        assert pool_stats()["evicted"] == before["evicted"] + 1
        # The broken pool was retired: the next map gets a fresh one and works.
        fresh = publish_bundle(_arrays(), config=PROCS)
        try:
            results = parallel_map(
                _sum_field, [(fresh, i) for i in range(3)], PROCS, chunksize=1
            )
        finally:
            release(fresh)
        assert len(results) == 3
        assert active_segments() == []
        assert _dev_shm_entries() == []


class TestChainFanOut:
    def test_processes_fit_leaves_no_segments(self, small_model_data):
        model = DPMHBPModel(
            n_sweeps=4, burn_in=1, seed=0, n_chains=2, jobs=2, executor="processes"
        )
        model.fit(small_model_data)
        assert active_segments() == []
        assert _dev_shm_entries() == []
