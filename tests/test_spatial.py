"""Unit tests for the grid spatial index (exactness against brute force)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.spatial import GridIndex


class TestGridIndexBasics:
    def test_single_point(self):
        idx = GridIndex([(1.0, 1.0)])
        i, d = idx.nearest((4.0, 5.0))
        assert i == 0
        assert d == pytest.approx(5.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GridIndex([])

    def test_query_on_indexed_point(self):
        pts = [(0.0, 0.0), (10.0, 0.0), (5.0, 5.0)]
        idx = GridIndex(pts)
        i, d = idx.nearest((5.0, 5.0))
        assert i == 2 and d == 0.0

    def test_nearest_distances_vectorised(self):
        idx = GridIndex([(0.0, 0.0), (10.0, 0.0)])
        out = idx.nearest_distances([(1.0, 0.0), (9.0, 0.0)])
        assert out == pytest.approx([1.0, 1.0])

    def test_len(self):
        assert len(GridIndex([(0.0, 0.0), (1.0, 1.0)])) == 2


class TestGridIndexExactness:
    def brute(self, pts, q):
        pts = np.asarray(pts)
        d = np.hypot(pts[:, 0] - q[0], pts[:, 1] - q[1])
        return float(d.min())

    def test_matches_brute_force_random(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1000, size=(200, 2))
        idx = GridIndex([tuple(p) for p in pts])
        for q in rng.uniform(-100, 1100, size=(50, 2)):
            assert idx.nearest(tuple(q))[1] == pytest.approx(self.brute(pts, q))

    def test_clustered_points(self):
        rng = np.random.default_rng(1)
        pts = np.concatenate(
            [rng.normal(0, 1, (50, 2)), rng.normal(500, 1, (50, 2))]
        )
        idx = GridIndex([tuple(p) for p in pts])
        for q in [(250.0, 250.0), (0.0, 0.0), (500.0, 500.0)]:
            assert idx.nearest(q)[1] == pytest.approx(self.brute(pts, q))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ),
        st.tuples(
            st.floats(min_value=-50, max_value=150, allow_nan=False),
            st.floats(min_value=-50, max_value=150, allow_nan=False),
        ),
    )
    def test_property_exact(self, pts, q):
        idx = GridIndex(pts)
        assert idx.nearest(q)[1] == pytest.approx(self.brute(pts, q), abs=1e-9)

    def test_custom_cell_size(self):
        pts = [(0.0, 0.0), (100.0, 100.0)]
        idx = GridIndex(pts, cell_size=5.0)
        assert idx.nearest((99.0, 99.0))[0] == 1
