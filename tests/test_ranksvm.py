"""Unit tests for RankSVM."""

import numpy as np
import pytest

from repro.core.ranking.objective import empirical_auc
from repro.core.ranking.ranksvm import RankSVM


def linear_ranking_data(rng, n=500, d=4, noise=0.3):
    X = rng.standard_normal((n, d))
    w = np.array([1.5, -1.0, 0.5, 0.0])[:d]
    score = X @ w + noise * rng.standard_normal(n)
    labels = (score > np.quantile(score, 0.8)).astype(float)
    return X, labels, w


class TestRankSVM:
    def test_high_auc_on_linear_data(self, rng):
        X, y, _ = linear_ranking_data(rng)
        model = RankSVM(n_pairs=20000, epochs=2, seed=1).fit(X, y)
        assert empirical_auc(model.decision_function(X), y) > 0.9

    def test_recovers_weight_direction(self, rng):
        X, y, w = linear_ranking_data(rng, noise=0.1)
        model = RankSVM(n_pairs=30000, epochs=2, seed=2).fit(X, y)
        cos = model.coef_ @ w / (np.linalg.norm(model.coef_) * np.linalg.norm(w))
        assert cos > 0.9

    def test_pairwise_accuracy_equals_auc(self, rng):
        X, y, _ = linear_ranking_data(rng, n=200)
        model = RankSVM(n_pairs=5000, seed=3).fit(X, y)
        assert model.pairwise_accuracy(X, y) == pytest.approx(
            empirical_auc(model.decision_function(X), y)
        )

    def test_needs_both_classes(self, rng):
        with pytest.raises(ValueError):
            RankSVM().fit(rng.standard_normal((5, 2)), np.zeros(5))

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            RankSVM().decision_function(np.ones((1, 2)))

    def test_deterministic(self, rng):
        X, y, _ = linear_ranking_data(rng, n=150)
        a = RankSVM(seed=5, n_pairs=2000).fit(X, y).coef_
        b = RankSVM(seed=5, n_pairs=2000).fit(X, y).coef_
        assert np.array_equal(a, b)

    def test_weight_norm_bounded_by_projection(self, rng):
        X, y, _ = linear_ranking_data(rng, n=200)
        model = RankSVM(lam=0.01, n_pairs=5000, seed=6).fit(X, y)
        assert np.linalg.norm(model.coef_) <= 1.0 / np.sqrt(0.01) + 1e-9

    def test_imbalance_robustness(self, rng):
        """With 2% positives, ranking must still beat chance clearly."""
        n = 1000
        X = rng.standard_normal((n, 3))
        score = X @ np.array([1.0, 0.5, -0.5])
        y = (score > np.quantile(score, 0.98)).astype(float)
        model = RankSVM(n_pairs=20000, seed=7).fit(X, y)
        assert empirical_auc(model.decision_function(X), y) > 0.85
