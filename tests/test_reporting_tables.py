"""Unit tests for the comparison-result tables (synthetic results)."""

import numpy as np
import pytest

from repro.eval.experiment import ComparisonResult, ModelEvaluation, RegionRun
from repro.eval.reporting import detection_readout, table_18_3, table_18_4


def make_run(region, seed, aucs: dict[str, float], n=40, n_pos=6):
    rng = np.random.default_rng(seed)
    labels = np.zeros(n)
    labels[:n_pos] = 1.0
    run = RegionRun(
        region=region,
        seed=seed,
        labels=labels,
        pipe_lengths=rng.uniform(50, 500, n),
    )
    for name, target in aucs.items():
        # Scores correlated with labels in proportion to the target AUC.
        noise = rng.standard_normal(n)
        strength = max(0.0, 2.0 * (target - 0.5))
        scores = strength * labels + 0.5 * noise
        from repro.eval.metrics import auc_at_budget, empirical_auc, permyriad

        run.evaluations[name] = ModelEvaluation(
            model_name=name,
            scores=scores,
            auc=empirical_auc(scores, labels),
            auc_budget_permyriad=permyriad(auc_at_budget(scores, labels)),
        )
    return run


@pytest.fixture(scope="module")
def fake_comparison():
    aucs = {"DPMHBP": 0.9, "HBP": 0.8, "Cox": 0.6}
    runs = {
        r: [make_run(r, 100 * i + ord(r), aucs) for i in range(4)]
        for r in ("A", "B")
    }
    return ComparisonResult(runs=runs)


class TestComparisonResult:
    def test_model_names(self, fake_comparison):
        assert fake_comparison.model_names() == ["DPMHBP", "HBP", "Cox"]

    def test_auc_samples_shape(self, fake_comparison):
        assert fake_comparison.auc_samples("A", "DPMHBP").shape == (4,)

    def test_strong_model_wins(self, fake_comparison):
        assert fake_comparison.mean_auc("A", "DPMHBP") > fake_comparison.mean_auc("A", "Cox")

    def test_t_test_direction(self, fake_comparison):
        t = fake_comparison.t_test("A", "DPMHBP", "Cox")
        assert t.mean_difference > 0

    def test_budget_metric_selector(self, fake_comparison):
        t = fake_comparison.t_test("A", "DPMHBP", "Cox", metric="budget")
        assert 0.0 <= t.p_value <= 1.0


class TestTables:
    def test_table_18_3_contents(self, fake_comparison):
        out = table_18_3(fake_comparison)
        assert "AUC(100%)" in out and "AUC(1%)" in out
        assert "A:DPMHBP" in out and "B:Cox" in out
        assert "%" in out and "bp" in out

    def test_table_18_3_model_subset(self, fake_comparison):
        out = table_18_3(fake_comparison, models=["DPMHBP"])
        assert "Cox" not in out

    def test_table_18_4_excludes_reference(self, fake_comparison):
        out = table_18_4(fake_comparison, reference="DPMHBP")
        assert "vs HBP" in out and "vs Cox" in out
        assert "vs DPMHBP" not in out

    def test_table_18_4_p_value_stamps(self, fake_comparison):
        out = table_18_4(fake_comparison)
        assert "<0.05" in out or "=" in out

    def test_detection_readout(self, fake_comparison):
        out = detection_readout(fake_comparison, budgets=(0.1, 0.5))
        assert "@10%" in out and "@50%" in out
        assert "DPMHBP" in out
