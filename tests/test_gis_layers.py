"""Unit tests for soil, traffic, canopy and moisture layers."""

import numpy as np
import pytest

from repro.gis.canopy import CanopyMap
from repro.gis.moisture import MoistureMap
from repro.gis.soil import (
    CORROSIVENESS_LEVELS,
    SoilLayers,
    corrosiveness_severity,
    expansiveness_severity,
)
from repro.gis.traffic import TrafficNetwork
from repro.network.geometry import BoundingBox

BOX = BoundingBox(0.0, 0.0, 2000.0, 2000.0)


class TestSoilLayers:
    def test_sample_keys_and_lengths(self, rng):
        soil = SoilLayers.random(BOX, rng)
        pts = [(100.0, 100.0), (1500.0, 900.0)]
        values = soil.sample(pts)
        assert set(values) == {
            "soil_corrosiveness",
            "soil_expansiveness",
            "soil_geology",
            "soil_map",
        }
        assert all(len(v) == 2 for v in values.values())

    def test_values_from_known_vocab(self, rng):
        soil = SoilLayers.random(BOX, rng)
        pts = [(float(x), float(x)) for x in range(0, 2000, 100)]
        for level in soil.sample(pts)["soil_corrosiveness"]:
            assert level in CORROSIVENESS_LEVELS

    def test_severity_mappings(self):
        sev = corrosiveness_severity(["low", "severe"])
        assert sev[0] == 0.0 and sev[1] == 1.0
        sev = expansiveness_severity(["low", "high"])
        assert sev[0] == 0.0 and sev[1] == 1.0

    def test_severity_unknown_raises(self):
        with pytest.raises(KeyError):
            corrosiveness_severity(["mystery"])


class TestTrafficNetwork:
    def test_distance_zero_at_intersection(self):
        net = TrafficNetwork(intersections=np.array([[5.0, 5.0]]))
        assert net.distance_to_nearest([(5.0, 5.0)])[0] == 0.0

    def test_distance_exact(self):
        net = TrafficNetwork(intersections=np.array([[0.0, 0.0], [100.0, 0.0]]))
        assert net.distance_to_nearest([(3.0, 4.0)])[0] == pytest.approx(5.0)

    def test_grid_density_follows_block_size(self, rng):
        fine = TrafficNetwork.from_street_grid(BOX, 100.0, rng, keep_fraction=1.0)
        coarse = TrafficNetwork.from_street_grid(BOX, 400.0, rng, keep_fraction=1.0)
        assert fine.n_intersections > coarse.n_intersections

    def test_keep_fraction_thins(self, rng):
        full = TrafficNetwork.from_street_grid(BOX, 200.0, rng, keep_fraction=1.0)
        rng2 = np.random.default_rng(0)
        thin = TrafficNetwork.from_street_grid(BOX, 200.0, rng2, keep_fraction=0.3)
        assert thin.n_intersections < full.n_intersections

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TrafficNetwork(intersections=np.zeros((0, 2)))

    def test_rejects_bad_block(self, rng):
        with pytest.raises(ValueError):
            TrafficNetwork.from_street_grid(BOX, -5.0, rng)


class TestCanopyAndMoisture:
    def test_canopy_in_unit_interval(self, rng):
        canopy = CanopyMap.random(BOX, rng)
        pts = rng.uniform(0, 2000, size=(100, 2))
        cover = canopy.coverage_at([tuple(p) for p in pts])
        assert np.all((cover >= 0) & (cover <= 1))

    def test_moisture_year_multiplier(self, rng):
        moisture = MoistureMap.random(BOX, rng, years=[2000, 2001])
        pts = [(500.0, 500.0)]
        base = moisture.moisture_at(pts)[0]
        m2000 = moisture.moisture_at(pts, year=2000)[0]
        assert m2000 == pytest.approx(
            min(base * moisture.year_multipliers[2000], 1.0)
        )

    def test_unknown_year_uses_unit_multiplier(self, rng):
        moisture = MoistureMap.random(BOX, rng, years=[2000])
        pts = [(100.0, 100.0)]
        assert moisture.moisture_at(pts, year=1950)[0] == pytest.approx(
            moisture.moisture_at(pts)[0]
        )

    def test_moisture_clipped(self, rng):
        moisture = MoistureMap.random(BOX, rng, years=[2005])
        moisture.year_multipliers[2005] = 100.0
        pts = rng.uniform(0, 2000, size=(50, 2))
        assert np.all(moisture.moisture_at([tuple(p) for p in pts], year=2005) <= 1.0)
