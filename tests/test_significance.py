"""Unit tests for the significance machinery (validated against scipy)."""

import numpy as np
import pytest
from scipy import stats

from repro.eval.significance import (
    bootstrap_auc_samples,
    paired_t_test,
    t_sf,
)


class TestTSF:
    @pytest.mark.parametrize("t", [-3.0, -0.5, 0.0, 0.5, 2.0, 10.0])
    @pytest.mark.parametrize("df", [1, 4, 9, 30])
    def test_matches_scipy(self, t, df):
        assert t_sf(t, df) == pytest.approx(stats.t.sf(t, df), rel=1e-9)

    def test_invalid_df(self):
        with pytest.raises(ValueError):
            t_sf(1.0, 0)


class TestPairedTTest:
    def test_matches_scipy_one_sided(self, rng):
        a = rng.normal(0.7, 0.05, 12)
        b = rng.normal(0.65, 0.05, 12)
        ours = paired_t_test(a, b)
        ref = stats.ttest_rel(a, b, alternative="greater")
        assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-9)

    def test_matches_scipy_two_sided(self, rng):
        a = rng.normal(0.0, 1.0, 10)
        b = rng.normal(0.2, 1.0, 10)
        ours = paired_t_test(a, b, alternative="two-sided")
        ref = stats.ttest_rel(a, b)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-9)

    def test_clear_difference_significant(self, rng):
        a = rng.normal(0.8, 0.01, 8)
        b = rng.normal(0.6, 0.01, 8)
        result = paired_t_test(a, b)
        assert result.significant()
        assert result.statistic > 5

    def test_no_difference_not_significant(self, rng):
        a = rng.normal(0.7, 0.05, 10)
        result = paired_t_test(a, a + rng.normal(0, 0.05, 10))
        # The difference is pure noise; p should rarely be tiny.
        assert result.p_value > 0.001

    def test_degenerate_identical_pairs(self):
        a = np.array([0.5, 0.5, 0.5])
        result = paired_t_test(a, a)
        assert result.p_value == 1.0

    def test_degenerate_constant_positive_difference(self):
        a = np.array([0.6, 0.7, 0.8])
        result = paired_t_test(a, a - 0.1)
        assert result.p_value == 0.0
        assert result.significant()

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test(np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            paired_t_test(np.ones(1), np.ones(1))
        with pytest.raises(ValueError):
            paired_t_test(np.ones(3), np.zeros(3), alternative="less")

    def test_df_and_mean_difference(self, rng):
        a = rng.normal(0.7, 0.1, 15)
        b = rng.normal(0.6, 0.1, 15)
        result = paired_t_test(a, b)
        assert result.df == 14
        assert result.mean_difference == pytest.approx(float((a - b).mean()))


class TestBootstrap:
    def test_sample_count_and_range(self, rng):
        scores = rng.standard_normal(200)
        labels = (rng.random(200) < 0.2).astype(float)
        labels[:2] = [1, 0]
        samples = bootstrap_auc_samples(scores, labels, n_boot=50, seed=1)
        assert samples.shape == (50,)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_centred_on_point_estimate(self, rng):
        from repro.eval.metrics import empirical_auc

        n = 500
        latent = rng.standard_normal(n)
        labels = (latent > 1.0).astype(float)
        scores = latent + 0.5 * rng.standard_normal(n)
        point = empirical_auc(scores, labels)
        samples = bootstrap_auc_samples(scores, labels, n_boot=200, seed=2)
        assert samples.mean() == pytest.approx(point, abs=0.03)

    def test_impossible_bootstrap_raises(self, rng):
        # One positive in two points: most resamples are degenerate, but
        # some succeed; a single-class dataset must fail cleanly.
        scores = np.array([1.0, 0.0])
        labels = np.array([1.0, 1.0])
        with pytest.raises(RuntimeError):
            bootstrap_auc_samples(scores, labels, n_boot=10, seed=3)
