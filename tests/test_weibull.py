"""Unit tests for the Weibull NHPP model."""

import numpy as np
import pytest

from repro.survival.weibull import WeibullNHPP, _weibull_exposure


class TestExposure:
    def test_power_difference(self):
        out = _weibull_exposure(np.array([2.0]), np.array([3.0]), 2.0)
        assert out[0] == pytest.approx(5.0)  # 9 - 4

    def test_floor_positive(self):
        out = _weibull_exposure(np.array([1.0]), np.array([1.0]), 1.5)
        assert out[0] > 0

    def test_negative_ages_clipped(self):
        out = _weibull_exposure(np.array([-5.0]), np.array([1.0]), 2.0)
        assert out[0] == pytest.approx(1.0)


class TestFitting:
    def test_recovers_shape(self, rng):
        n = 3000
        ages = rng.uniform(1.0, 60.0, n)
        true_shape = 2.0
        lam = 0.0008 * ((ages + 1.0) ** true_shape - ages**true_shape)
        counts = rng.poisson(lam)
        model = WeibullNHPP().fit(np.zeros((n, 1)), counts, ages, ages + 1.0)
        assert model.shape_ == pytest.approx(true_shape, abs=0.35)

    def test_recovers_covariate_effect(self, rng):
        n = 3000
        ages = rng.uniform(1.0, 40.0, n)
        x = rng.standard_normal(n)
        lam = 0.01 * ((ages + 1.0) ** 1.5 - ages**1.5) * np.exp(0.7 * x)
        counts = rng.poisson(lam)
        model = WeibullNHPP(l2=1e-6).fit(x[:, None], counts, ages, ages + 1.0)
        assert model.glm_.coef_[1] == pytest.approx(0.7, abs=0.15)

    def test_decreasing_intensity_shape_below_one(self, rng):
        n = 4000
        ages = rng.uniform(1.0, 60.0, n)
        true_shape = 0.5
        lam = 0.05 * ((ages + 1.0) ** true_shape - ages**true_shape)
        counts = rng.poisson(lam)
        model = WeibullNHPP().fit(np.zeros((n, 1)), counts, ages, ages + 1.0)
        assert model.shape_ < 1.0

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            WeibullNHPP().fit(np.ones((3, 1)), np.ones(2), np.ones(3), np.ones(3))


class TestPrediction:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(5)
        n = 2000
        ages = rng.uniform(1.0, 50.0, n)
        x = rng.standard_normal(n)
        lam = 0.001 * ((ages + 1.0) ** 1.8 - ages**1.8) * np.exp(0.5 * x)
        counts = rng.poisson(lam)
        return WeibullNHPP().fit(x[:, None], counts, ages, ages + 1.0)

    def test_expected_failures_grow_with_age(self, fitted):
        X = np.zeros((2, 1))
        young = fitted.expected_failures(X[:1], np.array([5.0]), np.array([6.0]))
        old = fitted.expected_failures(X[1:], np.array([50.0]), np.array([51.0]))
        assert old[0] > young[0]

    def test_probability_bounded(self, fitted, rng):
        X = rng.standard_normal((50, 1))
        ages = rng.uniform(1, 80, 50)
        p = fitted.failure_probability(X, ages, ages + 1.0)
        assert np.all((p >= 0) & (p <= 1))

    def test_probability_below_expectation(self, fitted):
        X = np.array([[2.0]])
        e = fitted.expected_failures(X, np.array([60.0]), np.array([61.0]))
        p = fitted.failure_probability(X, np.array([60.0]), np.array([61.0]))
        assert p[0] <= e[0]

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            WeibullNHPP().expected_failures(np.ones((1, 1)), np.ones(1), np.ones(1) + 1)
