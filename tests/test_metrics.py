"""Unit and property tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    auc_at_budget,
    detection_curve,
    empirical_auc,
    permyriad,
    roc_curve,
)


def random_scored(rng, n=50, rate=0.3):
    scores = rng.standard_normal(n)
    labels = (rng.random(n) < rate).astype(float)
    if labels.sum() == 0:
        labels[0] = 1.0
    if labels.sum() == n:
        labels[-1] = 0.0
    return scores, labels


class TestDetectionCurve:
    def test_monotone_nondecreasing(self, rng):
        scores, labels = random_scored(rng)
        curve = detection_curve(scores, labels)
        assert np.all(np.diff(curve.detected) >= 0)
        assert np.all(np.diff(curve.inspected) > 0)

    def test_endpoints(self, rng):
        scores, labels = random_scored(rng)
        curve = detection_curve(scores, labels)
        assert curve.inspected[-1] == pytest.approx(1.0)
        assert curve.detected[-1] == pytest.approx(1.0)

    def test_perfect_ranking_steep(self):
        scores = np.arange(10.0)[::-1]
        labels = np.array([1, 1, 0, 0, 0, 0, 0, 0, 0, 0], dtype=float)
        curve = detection_curve(scores, labels)
        assert curve.detected_at(0.2) == pytest.approx(1.0)

    def test_length_weighted_axis(self):
        scores = np.array([2.0, 1.0])
        labels = np.array([1.0, 0.0])
        lengths = np.array([900.0, 100.0])
        curve = detection_curve(scores, labels, lengths=lengths)
        # Inspecting the top pipe means inspecting 90% of the length.
        assert curve.inspected[0] == pytest.approx(0.9)

    def test_tie_break_deterministic(self, rng):
        scores = np.zeros(30)
        labels = (rng.random(30) < 0.3).astype(float)
        labels[0] = 1.0
        a = detection_curve(scores, labels)
        b = detection_curve(scores, labels)
        assert np.array_equal(a.detected, b.detected)

    def test_no_failures_rejected(self):
        with pytest.raises(ValueError):
            detection_curve(np.ones(5), np.zeros(5))

    def test_detected_at_interpolates(self):
        scores = np.array([3.0, 2.0, 1.0, 0.0])
        labels = np.array([1.0, 0.0, 0.0, 1.0])
        curve = detection_curve(scores, labels)
        assert curve.detected_at(0.0) == 0.0
        assert 0.0 < curve.detected_at(0.125) <= 0.5

    def test_budget_validation(self, rng):
        scores, labels = random_scored(rng)
        curve = detection_curve(scores, labels)
        with pytest.raises(ValueError):
            curve.detected_at(1.5)
        with pytest.raises(ValueError):
            curve.area(0.0)

    @given(st.integers(5, 60), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_area_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        scores, labels = random_scored(rng, n=n)
        curve = detection_curve(scores, labels)
        assert 0.0 <= curve.area(1.0) <= 1.0
        assert 0.0 <= curve.area(0.01) <= 0.01 + 1e-12


class TestBudgetAUC:
    def test_full_budget_close_to_roc_auc(self, rng):
        """AUC over [0,1] of the detection curve ≈ ROC AUC for low prevalence."""
        scores, labels = random_scored(rng, n=2000, rate=0.01)
        a = auc_at_budget(scores, labels, budget=1.0)
        b = empirical_auc(scores, labels)
        assert a == pytest.approx(b, abs=0.02)

    def test_better_model_higher_budget_auc(self, rng):
        n = 1000
        latent = rng.standard_normal(n)
        labels = (latent > np.quantile(latent, 0.98)).astype(float)
        good = latent + 0.1 * rng.standard_normal(n)
        bad = rng.standard_normal(n)
        assert auc_at_budget(good, labels) > auc_at_budget(bad, labels)

    def test_permyriad(self):
        assert permyriad(0.000809) == pytest.approx(8.09)


class TestROCCurve:
    def test_monotone(self, rng):
        scores, labels = random_scored(rng, n=100)
        fpr, tpr = roc_curve(scores, labels)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_ends_at_one_one(self, rng):
        scores, labels = random_scored(rng)
        fpr, tpr = roc_curve(scores, labels)
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_trapezoid_matches_empirical_auc(self, rng):
        scores = rng.standard_normal(200)
        labels = (rng.random(200) < 0.3).astype(float)
        labels[:2] = [1, 0]
        fpr, tpr = roc_curve(scores, labels)
        area = np.trapezoid(np.concatenate([[0.0], tpr]), np.concatenate([[0.0], fpr]))
        assert area == pytest.approx(empirical_auc(scores, labels), abs=1e-9)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.ones(3), np.zeros(3))

    def test_starts_at_origin(self, rng):
        scores, labels = random_scored(rng)
        fpr, tpr = roc_curve(scores, labels)
        assert fpr[0] == 0.0 and tpr[0] == 0.0

    def test_tied_scores_reference_values(self):
        """Tied block collapsed to one point (sklearn drop_intermediate=False)."""
        scores = np.array([0.8, 0.8, 0.6, 0.4])
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        fpr, tpr = roc_curve(scores, labels)
        assert np.allclose(fpr, [0.0, 0.5, 0.5, 1.0])
        assert np.allclose(tpr, [0.0, 0.5, 1.0, 1.0])

    def test_one_point_per_unique_threshold(self, rng):
        scores = rng.choice([0.2, 0.7], size=40)
        labels = (rng.random(40) < 0.5).astype(float)
        labels[0], labels[1] = 1.0, 0.0
        fpr, tpr = roc_curve(scores, labels)
        assert len(fpr) == len(tpr) == 3  # origin + two unique thresholds

    def test_tie_permutation_invariant(self, rng):
        """Regression: input order within a tied block must not move the curve."""
        scores = rng.choice([0.1, 0.5, 0.9], size=60)
        labels = (rng.random(60) < 0.4).astype(float)
        labels[0], labels[1] = 1.0, 0.0
        fpr_a, tpr_a = roc_curve(scores, labels)
        perm = rng.permutation(60)
        fpr_b, tpr_b = roc_curve(scores[perm], labels[perm])
        assert np.array_equal(fpr_a, fpr_b)
        assert np.array_equal(tpr_a, tpr_b)

    def test_heavy_ties_trapezoid_matches_empirical_auc(self, rng):
        """Trapezoidal area over the curve equals the midrank AUC under ties."""
        scores = rng.choice([0.0, 1.0, 2.0], size=200)
        labels = (rng.random(200) < 0.3).astype(float)
        labels[:2] = [1, 0]
        fpr, tpr = roc_curve(scores, labels)
        area = np.trapezoid(tpr, fpr)
        assert area == pytest.approx(empirical_auc(scores, labels), abs=1e-12)
