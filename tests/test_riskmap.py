"""Unit tests for risk-map generation (Fig. 18.9)."""

import numpy as np
import pytest

from repro.eval.riskmap import RiskMap


@pytest.fixture(scope="module")
def riskmap(tiny_cwm):
    rng = np.random.default_rng(4)
    scores = rng.random(tiny_cwm.network.n_pipes)
    return RiskMap(dataset=tiny_cwm, scores=scores)


class TestBands:
    def test_band_sizes_follow_percentiles(self, riskmap):
        bands = riskmap.band_of()
        n = len(bands)
        top = (bands == 0).sum()
        assert top == pytest.approx(0.1 * n, abs=1)

    def test_highest_scores_in_top_band(self, riskmap):
        bands = riskmap.band_of()
        order = np.argsort(-riskmap.scores)
        n_top = (bands == 0).sum()
        assert set(bands[order[:n_top]]) == {0}

    def test_score_shape_validated(self, tiny_cwm):
        with pytest.raises(ValueError):
            RiskMap(dataset=tiny_cwm, scores=np.ones(3))


class TestFailureOverlay:
    def test_test_failure_points(self, riskmap, tiny_cwm):
        pts = riskmap.test_failure_points()
        expected = [r for r in tiny_cwm.failures if r.year == tiny_cwm.test_year]
        assert len(pts) == len(expected)

    def test_top_band_hit_rate_range(self, riskmap):
        rate = riskmap.top_band_hit_rate()
        assert 0.0 <= rate <= 1.0

    def test_oracle_scores_maximise_hit_rate(self, tiny_cwm):
        """Scoring test-failing pipes first puts them all in the top band."""
        pipe_ids = tiny_cwm.pipe_ids()
        failed = {r.pipe_id for r in tiny_cwm.failures if r.year == tiny_cwm.test_year}
        scores = np.asarray([1.0 if p in failed else 0.0 for p in pipe_ids])
        rm = RiskMap(dataset=tiny_cwm, scores=scores)
        if failed and len(failed) <= 0.1 * len(pipe_ids):
            assert rm.top_band_hit_rate() == 1.0


class TestSVG:
    def test_valid_svg_document(self, riskmap):
        svg = riskmap.to_svg(width=400)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "<line" in svg

    def test_contains_all_band_colours(self, riskmap):
        svg = riskmap.to_svg()
        for _upper, colour, _label in riskmap.bands:
            assert colour in svg

    def test_stars_drawn_for_failures(self, riskmap):
        svg = riskmap.to_svg()
        assert svg.count("<polygon") == len(riskmap.test_failure_points())

    def test_legend_labels(self, riskmap):
        svg = riskmap.to_svg()
        assert "top 10% risk" in svg

    def test_save_svg(self, riskmap, tmp_path):
        path = riskmap.save_svg(tmp_path / "map.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")
