"""Unit tests for DPMHBP multi-chain pooling."""

import numpy as np
import pytest

from repro.core.dpmhbp import DPMHBPModel


@pytest.fixture(scope="module")
def two_chain_model(small_model_data):
    model = DPMHBPModel(n_sweeps=12, burn_in=4, n_chains=2, seed=0)
    model.fit(small_model_data)
    return model


class TestChainPooling:
    def test_two_chains_recorded(self, two_chain_model):
        assert len(two_chain_model.chain_posteriors_) == 2

    def test_pooled_mean_is_chain_average(self, two_chain_model):
        chains = two_chain_model.chain_posteriors_
        expected = np.mean([p.rho_mean for p in chains], axis=0)
        assert np.allclose(two_chain_model.posterior_.rho_mean, expected)

    def test_pooled_variance_includes_between_chain(self, two_chain_model):
        chains = two_chain_model.chain_posteriors_
        within = np.mean([p.rho_std**2 for p in chains], axis=0)
        pooled_var = two_chain_model.posterior_.rho_std**2
        assert np.all(pooled_var >= within - 1e-12)

    def test_chains_differ(self, two_chain_model):
        a, b = two_chain_model.chain_posteriors_
        assert not np.allclose(a.rho_mean, b.rho_mean)

    def test_single_chain_matches_raw_sampler(self, small_model_data):
        model = DPMHBPModel(n_sweeps=10, burn_in=3, n_chains=1, seed=5)
        model.fit(small_model_data)
        assert len(model.chain_posteriors_) == 1
        assert np.allclose(
            model.posterior_.rho_mean, model.chain_posteriors_[0].rho_mean
        )

    def test_invalid_chain_count(self, small_model_data):
        with pytest.raises(ValueError):
            DPMHBPModel(n_chains=0).fit(small_model_data)

    def test_credible_interval_bounds(self, two_chain_model):
        lo, hi = two_chain_model.posterior_.credible_interval()
        assert np.all(lo <= two_chain_model.posterior_.rho_mean + 1e-12)
        assert np.all(hi >= two_chain_model.posterior_.rho_mean - 1e-12)
        assert np.all((lo >= 0) & (hi <= 1))

    def test_interval_width_grows_with_z(self, two_chain_model):
        lo1, hi1 = two_chain_model.posterior_.credible_interval(z=1.0)
        lo2, hi2 = two_chain_model.posterior_.credible_interval(z=2.0)
        assert np.all(hi2 - lo2 >= hi1 - lo1 - 1e-12)
