"""Model-health monitoring: convergence verdicts, drift, and the doctor.

Pins the contracts of :mod:`repro.monitor`:

* thresholds resolve defaults ← ``REPRO_HEALTH_*`` env ← kwargs, and
  reject inverted bands;
* :class:`ChainHealth` turns per-sweep scalars into per-quantity
  ESS/Geweke/split-R̂ verdicts — healthy chains pass, divergent chains
  are flagged, constant (nan) quantities stay "undiagnosable" without
  escalating or passing anything;
* a real two-chain DPMHBP fit produces finite R̂/ESS for the cluster
  count and the collapsed log-likelihood, and ``DPMHBPModel`` pools its
  chains into ``health_`` (plus ``health.json`` when checkpointing);
* drift baselines flag cell×model×metric moves outside the band;
* ``repro doctor`` folds failures > chain health > drift into exit
  codes 0/1/2, with ``--json`` and ``--metrics-out`` round-tripping.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main as cli_main
from repro.core.dpmhbp import DPMHBP, DPMHBPModel, DPMHBPPosterior
from repro.eval.experiment import ModelEvaluation, RegionRun
from repro.inference.gibbs import GibbsSampler
from repro.monitor import (
    ChainHealth,
    HealthReport,
    HealthThresholds,
    compare_run,
    compare_to_baseline,
    diagnose,
    load_baseline,
    metrics_snapshot,
    save_baseline,
)
from repro.monitor.__main__ import main as monitor_main
from repro.monitor.doctor import EXIT_CODES, collect_health
from repro.monitor.drift import latest_baseline
from repro.runs import CellSpec, RunJournal
from repro.telemetry import TRACE_ENV


@pytest.fixture(autouse=True)
def _clean_recorder(monkeypatch):
    """Telemetry off and no REPRO_HEALTH_* overrides leaking between tests."""
    monkeypatch.delenv(TRACE_ENV, raising=False)
    for field in ("RHAT_WARN", "RHAT_FAIL", "ESS_WARN", "ESS_FAIL",
                  "GEWEKE_WARN", "GEWEKE_FAIL"):
        monkeypatch.delenv(f"REPRO_HEALTH_{field}", raising=False)
    telemetry.disable()
    yield
    telemetry.disable()


def _white_noise_chains(n_chains=2, n=400, seed=0):
    """Independent draws: every diagnostic should come out clean."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n_chains, n))


def _divergent_chains(n=200, offset=50.0, seed=1):
    """Two chains around means ``offset`` apart: R̂ must blow up."""
    rng = np.random.default_rng(seed)
    return np.stack([rng.standard_normal(n), rng.standard_normal(n) + offset])


class TestHealthThresholds:
    def test_defaults_are_the_conventional_bands(self):
        t = HealthThresholds()
        assert (t.rhat_warn, t.rhat_fail) == (1.1, 1.3)
        assert (t.ess_warn, t.ess_fail) == (25.0, 10.0)
        assert (t.geweke_warn, t.geweke_fail) == (2.5, 4.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rhat_warn": 0.9},  # below the R-hat floor of 1.0
            {"rhat_warn": 1.4, "rhat_fail": 1.2},  # warn above fail
            {"ess_warn": 5.0, "ess_fail": 10.0},  # fail above warn
            {"geweke_warn": 0.0},  # degenerate band
        ],
    )
    def test_inverted_bands_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HealthThresholds(**kwargs)

    def test_env_overrides_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEALTH_RHAT_WARN", "1.05")
        monkeypatch.setenv("REPRO_HEALTH_ESS_FAIL", "2")
        t = HealthThresholds.from_env()
        assert t.rhat_warn == 1.05
        assert t.ess_fail == 2.0
        assert t.rhat_fail == 1.3  # untouched fields keep their defaults

    def test_kwargs_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEALTH_RHAT_WARN", "1.05")
        assert HealthThresholds.from_env(rhat_warn=1.2).rhat_warn == 1.2

    def test_non_numeric_env_is_a_loud_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEALTH_RHAT_WARN", "loose")
        with pytest.raises(ValueError, match="REPRO_HEALTH_RHAT_WARN"):
            HealthThresholds.from_env()


class TestChainHealth:
    def test_healthy_chains_pass(self):
        health = ChainHealth()
        for chain in _white_noise_chains():
            health.ingest_chain({"theta": chain})
        report = health.report(publish=False)
        assert report.verdict == "pass" and report.ok
        q = report.quantities["theta"]
        assert q.n_chains == 2 and q.n_samples == 400
        assert np.isfinite(q.rhat) and q.rhat < 1.1
        assert np.isfinite(q.ess) and q.ess > 25.0
        assert np.isfinite(q.geweke_z)
        assert q.verdict == "pass" and q.reasons == ()

    def test_divergent_chains_are_flagged(self):
        health = ChainHealth()
        for chain in _divergent_chains():
            health.ingest_chain({"theta": chain})
        report = health.report(publish=False)
        assert report.verdict != "pass"
        q = report.quantities["theta"]
        assert q.rhat > 1.3
        assert any("R-hat" in reason for reason in q.reasons)

    def test_divergent_chains_warn_inside_the_warn_band(self):
        # Push every fail bound out of reach: the same divergence must
        # land in the warn band, not silently pass.
        health = ChainHealth(rhat_fail=1e6, geweke_fail=1e6, ess_fail=0.0)
        for chain in _divergent_chains():
            health.ingest_chain({"theta": chain})
        report = health.report(publish=False)
        assert report.verdict == "warn"
        assert report.quantities["theta"].verdict == "warn"

    def test_constant_quantity_is_undiagnosable_not_fail(self):
        health = ChainHealth()
        for chain in _white_noise_chains():
            health.ingest_chain({"theta": chain, "flat": np.full(400, 7.0)})
        report = health.report(publish=False)
        flat = report.quantities["flat"]
        assert flat.verdict == "undiagnosable"
        assert np.isnan(flat.rhat) and np.isnan(flat.ess) and np.isnan(flat.geweke_z)
        # ... and it neither fails nor passes the folded verdict.
        assert report.verdict == "pass"

    def test_only_undiagnosable_quantities_fold_to_undiagnosable(self):
        health = ChainHealth()
        health.ingest_chain({"flat": np.full(50, 1.0)})
        report = health.report(publish=False)
        assert report.verdict == "undiagnosable"
        assert not report.ok
        assert np.isnan(report.worst_rhat())
        assert EXIT_CODES[report.verdict] == 0  # undiagnosable never fails CI

    def test_worst_quantity_wins_the_fold(self):
        health = ChainHealth()
        noise = _white_noise_chains()
        bad = _divergent_chains()
        for i in range(2):
            health.ingest_chain({"good": noise[i], "bad": bad[i]})
        report = health.report(publish=False)
        assert report.quantities["good"].verdict == "pass"
        assert report.quantities["bad"].verdict == "fail"
        assert report.verdict == "fail"
        assert report.worst_rhat() == report.quantities["bad"].rhat

    def test_burn_in_trims_the_transient(self):
        rng = np.random.default_rng(3)
        # 100 wildly-off transient sweeps, then stationarity.
        chains = [
            np.concatenate([np.full(100, 500.0 * (c + 1)), rng.standard_normal(300)])
            for c in range(2)
        ]
        flagged = ChainHealth(burn_in=0)
        healthy = ChainHealth(burn_in=100)
        for chain in chains:
            flagged.ingest_chain({"theta": chain})
            healthy.ingest_chain({"theta": chain})
        assert flagged.report(publish=False).verdict == "fail"
        report = healthy.report(publish=False)
        assert report.verdict == "pass"
        assert report.quantities["theta"].n_samples == 300

    def test_short_series_leave_rhat_and_geweke_undiagnosable(self):
        health = ChainHealth()
        health.ingest_chain({"theta": np.array([1.0, 2.0, 1.5])})  # < 4 samples
        q = health.report(publish=False).quantities["theta"]
        assert np.isnan(q.rhat)
        assert np.isnan(q.geweke_z)  # < MIN_GEWEKE_SAMPLES too

    def test_live_recording_via_callback(self):
        health = ChainHealth()
        hook = health.as_callback(chain=1)
        for sweep in range(5):
            hook(sweep, {"n_clusters": float(sweep), "log_lik": -10.0 - sweep})
        assert health.n_chains == 1
        trace = health.chain_trace(1)
        assert trace.get("n_clusters").tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_on_sweep_mirrors_gauges_when_telemetry_on(self):
        rec = telemetry.configure(enabled=True)
        ChainHealth().on_sweep({"n_clusters": 12.0})
        assert rec.snapshot()["gauges"]["chain.n_clusters"] == 12.0

    def test_report_publishes_summary_gauges(self):
        rec = telemetry.configure(enabled=True)
        health = ChainHealth()
        for chain in _white_noise_chains():
            health.ingest_chain({"theta": chain})
        health.report()
        gauges = rec.snapshot()["gauges"]
        assert gauges["chain.health"] == 0.0  # pass
        assert gauges["chain.rhat"] == pytest.approx(gauges["chain.rhat.theta"])
        assert "chain.ess.theta" in gauges and "chain.geweke.theta" in gauges

    def test_thresholds_and_overrides_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ChainHealth(thresholds=HealthThresholds(), rhat_warn=1.2)
        with pytest.raises(ValueError):
            ChainHealth(burn_in=-1)

    def test_report_round_trips_through_json(self):
        health = ChainHealth()
        for chain in _white_noise_chains():
            health.ingest_chain({"theta": chain, "flat": np.full(400, 2.0)})
        report = health.report(publish=False)
        restored = HealthReport.from_json(json.loads(json.dumps(report.to_json())))
        assert restored.verdict == report.verdict
        assert restored.thresholds == report.thresholds
        for name, q in report.quantities.items():
            r = restored.quantities[name]
            assert r.verdict == q.verdict and r.reasons == q.reasons
            for stat in ("mean", "ess", "geweke_z", "rhat"):
                np.testing.assert_equal(getattr(r, stat), getattr(q, stat))

    def test_format_renders_table_and_verdict(self):
        health = ChainHealth()
        for chain in _white_noise_chains():
            health.ingest_chain({"theta": chain})
        text = health.report(publish=False).format()
        assert "quantity" in text and "R-hat" in text
        assert "health verdict: PASS" in text


def _synthetic_segments(seed=0, n=150, years=10):
    """A tiny two-regime failure matrix whose DPMHBP cluster count moves."""
    rng = np.random.default_rng(seed)
    p = rng.choice([0.02, 0.15], size=(n, 1), p=[0.7, 0.3])
    failures = (rng.random((n, years)) < p).astype(int)
    features = rng.standard_normal((n, 4))
    return failures, features


class TestDPMHBPHealth:
    def test_two_chain_fit_has_finite_rhat_and_ess(self):
        """The acceptance bar: a real 2-chain fit is fully diagnosable."""
        failures, features = _synthetic_segments()
        health = ChainHealth(burn_in=10)
        for seed in (0, 101):
            posterior = DPMHBP(alpha=4.0, n_sweeps=40, burn_in=10, seed=seed).fit(
                failures, features
            )
            health.ingest_chain(
                {
                    "n_clusters": np.asarray(posterior.n_clusters_trace, dtype=float),
                    "log_lik": posterior.log_lik_trace,
                    "accept_q": posterior.accept_trace,
                }
            )
        report = health.report(publish=False)
        for name in ("n_clusters", "log_lik"):
            q = report.quantities[name]
            assert q.n_chains == 2
            assert np.isfinite(q.rhat), name
            assert np.isfinite(q.ess), name
        assert report.verdict in ("pass", "warn", "fail")

    def test_fit_records_per_sweep_traces(self):
        failures, features = _synthetic_segments()
        posterior = DPMHBP(n_sweeps=12, burn_in=4, seed=0).fit(failures, features)
        assert posterior.log_lik_trace.shape == (12,)
        assert posterior.accept_trace.shape == (12,)
        assert np.all(np.isfinite(posterior.log_lik_trace))
        assert np.all((posterior.accept_trace >= 0) & (posterior.accept_trace <= 1))

    def test_sweep_callback_sees_every_sweep(self):
        failures, features = _synthetic_segments()
        health = ChainHealth()
        DPMHBP(n_sweeps=8, burn_in=2, seed=0, sweep_callback=health.as_callback()).fit(
            failures, features
        )
        trace = health.chain_trace(0)
        assert trace.get("n_clusters").size == 8
        assert trace.get("log_lik").size == 8
        assert trace.get("accept_q").size == 8

    def test_checkpoint_round_trips_traces(self, tmp_path):
        failures, features = _synthetic_segments()
        posterior = DPMHBP(n_sweeps=6, burn_in=2, seed=0).fit(failures, features)
        path = posterior.save(tmp_path / "chain_0.npz")
        restored = DPMHBPPosterior.load(path)
        np.testing.assert_allclose(restored.log_lik_trace, posterior.log_lik_trace)
        np.testing.assert_allclose(restored.accept_trace, posterior.accept_trace)

    def test_pre_monitoring_checkpoints_still_load(self, tmp_path):
        """Old ``.npz`` checkpoints lack the sweep traces; load must cope."""
        failures, features = _synthetic_segments()
        posterior = DPMHBP(n_sweeps=6, burn_in=2, seed=0).fit(failures, features)
        posterior.save(tmp_path / "new.npz")
        with np.load(tmp_path / "new.npz") as arrays:
            old = {
                k: arrays[k]
                for k in arrays.files
                if k not in ("log_lik_trace", "accept_trace")
            }
        np.savez(tmp_path / "old.npz", **old)
        restored = DPMHBPPosterior.load(tmp_path / "old.npz")
        assert restored.log_lik_trace.size == 0
        assert restored.accept_trace.size == 0
        np.testing.assert_allclose(restored.rho_mean, posterior.rho_mean)

    def test_model_pools_chains_into_health(self, small_model_data, tmp_path):
        model = DPMHBPModel(
            n_sweeps=12,
            burn_in=4,
            n_chains=2,
            jobs=1,
            seed=3,
            checkpoint_dir=str(tmp_path),
        ).fit(small_model_data)
        report = model.health_
        assert isinstance(report, HealthReport)
        assert set(report.quantities) >= {"n_clusters", "log_lik", "accept_q"}
        assert report.quantities["log_lik"].n_chains == 2
        assert np.isfinite(report.quantities["log_lik"].rhat)
        # ... and the report landed next to the chain checkpoints.
        saved = HealthReport.from_json(
            json.loads((tmp_path / "health.json").read_text())
        )
        assert saved.verdict == report.verdict

    def test_monitor_off_skips_health(self, small_model_data):
        model = DPMHBPModel(
            n_sweeps=4, burn_in=0, n_chains=1, jobs=1, monitor=False
        ).fit(small_model_data)
        assert model.health_ is None


class TestGibbsMonitorHook:
    def _sampler(self, monitor=None):
        rng = np.random.default_rng(0)
        sampler = GibbsSampler(
            state={"x": 0.0},
            rng=rng,
            trace_fn=lambda state: {"x": state["x"], "vec": np.zeros(3)},
            monitor=monitor,
            monitor_chain=2,
        )

        def step(state, rng):
            state["x"] += rng.standard_normal()
            return {"accept": 1.0}

        return sampler.add_block("walk", step)

    def test_monitor_records_block_stats_and_scalar_trace(self):
        health = ChainHealth()
        self._sampler(monitor=health).run(30)
        trace = health.chain_trace(2)
        assert trace.get("walk.accept").size == 30
        assert trace.get("x").size == 30
        assert "vec" not in trace  # non-scalar quantities are not health material

    def test_unmonitored_sampler_is_unchanged(self):
        sampler = self._sampler(monitor=None)
        sampler.run(10)
        assert len(sampler.diagnostics["walk.accept"]) == 10
        assert sampler.trace.get("x").size == 10


# ---------------------------------------------------------------- drift/doctor


def _completed_run(tmp_path, auc=0.7, fail_one=False, name="run"):
    """A journalled 1×2 run with one (or two) completed cells of metrics."""
    run_dir = tmp_path / name
    journal = RunJournal.create(run_dir, {"regions": ["A"], "n_repeats": 2})
    journal.log_event("run_started")
    rng = np.random.default_rng(0)
    n = 20
    for repeat, cell_auc in ((0, auc), (1, auc + 0.05)):
        cell = f"A-r{repeat:03d}"
        if fail_one and repeat == 1:
            journal.log_event("cell_started", cell=cell, attempt=1, seed=repeat)
            journal.record_failure(
                CellSpec(region="A", repeat=repeat, seed=repeat),
                error="Traceback …\nInjectedFault: boom",
                error_type="InjectedFault",
                attempts=2,
            )
            continue
        run = RegionRun(
            region="A",
            seed=repeat,
            labels=(rng.random(n) < 0.2).astype(float),
            pipe_lengths=rng.uniform(1, 9, n),
        )
        run.evaluations["Cox"] = ModelEvaluation(
            model_name="Cox",
            scores=rng.standard_normal(n),
            auc=cell_auc,
            auc_budget_permyriad=3.0,
        )
        journal.log_event("cell_started", cell=cell, attempt=1, seed=repeat)
        journal.save_cell(CellSpec(region="A", repeat=repeat, seed=repeat), run)
        journal.log_event("cell_completed", cell=cell, attempt=1, duration_s=0.5)
    journal.log_event("run_completed")
    return run_dir


class TestDrift:
    def test_snapshot_reads_completed_cell_metrics(self, tmp_path):
        snapshot = metrics_snapshot(_completed_run(tmp_path))
        assert snapshot["cells"]["A-r000"]["Cox"]["auc"] == pytest.approx(0.7)
        assert snapshot["cells"]["A-r001"]["Cox"]["auc"] == pytest.approx(0.75)

    def test_failed_cells_contribute_no_metrics(self, tmp_path):
        snapshot = metrics_snapshot(_completed_run(tmp_path, fail_one=True))
        assert list(snapshot["cells"]) == ["A-r000"]

    def test_save_compare_round_trip(self, tmp_path):
        run_dir = _completed_run(tmp_path)
        path = save_baseline(run_dir, directory=tmp_path, rev="abc123")
        assert path.name == "HEALTH_abc123.json"
        assert latest_baseline(tmp_path) == path
        report = compare_run(run_dir, path)
        assert report.ok and report.verdict == "pass"
        assert report.n_compared == 4  # 2 cells × 2 metrics
        assert report.baseline_rev == "abc123"

    def test_unit_scale_metrics_use_the_absolute_band(self, tmp_path):
        run_dir = _completed_run(tmp_path)
        baseline = load_baseline(save_baseline(run_dir, directory=tmp_path, rev="r"))
        baseline["cells"]["A-r000"]["Cox"]["auc"] = 0.75  # moved 0.05 > band 0.02
        report = compare_to_baseline(baseline, metrics_snapshot(run_dir))
        (flag,) = report.flags
        assert flag.key == "A-r000/Cox/auc"
        assert not flag.relative
        assert flag.delta == pytest.approx(-0.05)
        assert "DRIFT: A-r000/Cox/auc" in report.format()

    def test_unbounded_metrics_use_the_relative_band(self):
        baseline = {"rev": "r", "cells": {"c": {"M": {"loss": 100.0}}}}
        within = {"cells": {"c": {"M": {"loss": 101.0}}}}  # +1% < 2%
        outside = {"cells": {"c": {"M": {"loss": 104.0}}}}  # +4% > 2%
        assert compare_to_baseline(baseline, within).ok
        report = compare_to_baseline(baseline, outside)
        assert [f.relative for f in report.flags] == [True]

    def test_missing_and_added_metrics_do_not_flag(self):
        baseline = {"rev": "r", "cells": {"c": {"Old": {"auc": 0.7}}}}
        current = {"cells": {"c": {"New": {"auc": 0.7}}}}
        report = compare_to_baseline(baseline, current)
        assert report.ok
        assert report.missing == ["c/Old/auc"]
        assert report.added == ["c/New/auc"]

    def test_band_must_be_positive(self):
        with pytest.raises(ValueError, match="band"):
            compare_to_baseline({"cells": {}}, {"cells": {}}, band=0.0)

    def test_load_baseline_rejects_non_baselines(self, tmp_path):
        path = tmp_path / "HEALTH_x.json"
        path.write_text('{"rev": "x"}')
        with pytest.raises(ValueError, match="no 'cells' key"):
            load_baseline(path)

    def test_monitor_cli_save_then_compare(self, tmp_path, capsys):
        run_dir = _completed_run(tmp_path)
        rc = monitor_main(
            ["save", str(run_dir), "--dir", str(tmp_path), "--rev", "test"]
        )
        assert rc == 0
        assert "2 cell(s), 4 metric(s)" in capsys.readouterr().out
        rc = monitor_main(["compare", str(run_dir), "--dir", str(tmp_path)])
        assert rc == 0
        assert "no metric drifted" in capsys.readouterr().out

    def test_monitor_cli_flags_drift_with_exit_one(self, tmp_path, capsys):
        run_dir = _completed_run(tmp_path)
        baseline = save_baseline(run_dir, directory=tmp_path, rev="test")
        payload = json.loads(baseline.read_text())
        payload["cells"]["A-r000"]["Cox"]["auc"] = 0.9
        baseline.write_text(json.dumps(payload))
        rc = monitor_main(["compare", str(run_dir), str(baseline), "--json"])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["verdict"] == "warn"
        assert [f["metric"] for f in report["flags"]] == ["auc"]

    def test_monitor_cli_without_baseline_exits_two(self, tmp_path, capsys):
        run_dir = _completed_run(tmp_path)
        rc = monitor_main(["compare", str(run_dir), "--dir", str(tmp_path / "empty")])
        assert rc == 2
        assert "no HEALTH_*.json baseline" in capsys.readouterr().err


class TestDoctor:
    def _health_json(self, run_dir, chains, subdir="ckpt"):
        health = ChainHealth()
        for chain in chains:
            health.ingest_chain({"theta": chain})
        report = health.report(publish=False)
        target = run_dir / subdir
        target.mkdir(parents=True, exist_ok=True)
        (target / "health.json").write_text(json.dumps(report.to_json()))
        return report

    def test_healthy_run_passes_with_exit_zero(self, tmp_path):
        run_dir = _completed_run(tmp_path)
        self._health_json(run_dir, _white_noise_chains())
        report = diagnose(run_dir)
        assert report.verdict == "pass" and report.exit_code == 0
        assert report.cells_completed == 2 and not report.cells_failed
        assert report.health["ckpt"].verdict == "pass"
        text = report.format()
        assert "doctor verdict: PASS (exit 0)" in text
        assert "[ckpt]" in text

    def test_failed_cells_force_exit_two(self, tmp_path):
        run_dir = _completed_run(tmp_path, fail_one=True)
        report = diagnose(run_dir)
        assert report.verdict == "fail" and report.exit_code == 2
        assert "A-r001" in report.cells_failed
        assert "FAILED A-r001: InjectedFault" in report.format()

    def test_divergent_chains_escalate_the_verdict(self, tmp_path):
        run_dir = _completed_run(tmp_path)
        self._health_json(run_dir, _divergent_chains())
        report = diagnose(run_dir)
        assert report.verdict == "fail" and report.exit_code == 2

    def test_drift_is_a_warning_exit_one(self, tmp_path):
        run_dir = _completed_run(tmp_path)
        baseline = save_baseline(run_dir, directory=tmp_path, rev="r")
        payload = json.loads(baseline.read_text())
        payload["cells"]["A-r000"]["Cox"]["auc"] = 0.9
        baseline.write_text(json.dumps(payload))
        report = diagnose(run_dir, baseline=baseline)
        assert report.verdict == "warn" and report.exit_code == 1
        assert len(report.drift.flags) == 1

    def test_no_artifacts_is_still_a_pass(self, tmp_path):
        report = diagnose(_completed_run(tmp_path))
        assert report.verdict == "pass"
        assert report.health == {}
        assert "no chain health artifacts" in report.format()

    def test_bare_chain_checkpoints_are_diagnosed(self, tmp_path):
        run_dir = _completed_run(tmp_path)
        failures, features = _synthetic_segments()
        ckpt = run_dir / "cells" / "dpmhbp"
        for chain, seed in enumerate((0, 101)):
            posterior = DPMHBP(n_sweeps=9, burn_in=3, seed=seed).fit(
                failures, features
            )
            posterior.save(ckpt / f"chain_{chain}.npz")
        reports = collect_health(run_dir)
        assert set(reports) == {"cells/dpmhbp"}
        report = reports["cells/dpmhbp"]
        # Burn-in defaults to a third of the trace when undeclared.
        assert report.quantities["n_clusters"].n_samples == 6
        assert report.quantities["n_clusters"].n_chains == 2

    def test_saved_health_json_wins_over_bare_checkpoints(self, tmp_path):
        run_dir = _completed_run(tmp_path)
        failures, features = _synthetic_segments()
        ckpt = run_dir / "ckpt"
        DPMHBP(n_sweeps=6, burn_in=2, seed=0).fit(failures, features).save(
            ckpt / "chain_0.npz"
        )
        saved = self._health_json(run_dir, _white_noise_chains(), subdir="ckpt")
        reports = collect_health(run_dir)
        assert list(reports) == ["ckpt"]
        assert set(reports["ckpt"].quantities) == set(saved.quantities)

    def test_json_report_round_trips(self, tmp_path):
        run_dir = _completed_run(tmp_path, fail_one=True)
        payload = json.loads(json.dumps(diagnose(run_dir).to_json()))
        assert payload["verdict"] == "fail" and payload["exit_code"] == 2
        assert payload["cells_failed"]["A-r001"]["error_type"] == "InjectedFault"
        assert payload["cells_completed"] == 1


class TestDoctorCLI:
    def test_healthy_run_exits_zero(self, tmp_path, capsys):
        run_dir = _completed_run(tmp_path)
        assert cli_main(["doctor", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "doctor verdict: PASS (exit 0)" in out

    def test_failed_run_exits_two(self, tmp_path, capsys):
        run_dir = _completed_run(tmp_path, fail_one=True)
        assert cli_main(["doctor", str(run_dir)]) == 2
        assert "FAILED A-r001" in capsys.readouterr().out

    def test_drifted_baseline_exits_one(self, tmp_path, capsys):
        run_dir = _completed_run(tmp_path)
        baseline = save_baseline(run_dir, directory=tmp_path, rev="r")
        payload = json.loads(baseline.read_text())
        payload["cells"]["A-r000"]["Cox"]["auc"] = 0.9
        baseline.write_text(json.dumps(payload))
        assert cli_main(["doctor", str(run_dir), "--baseline", str(baseline)]) == 1
        assert "DRIFT: A-r000/Cox/auc" in capsys.readouterr().out

    def test_json_output_parses(self, tmp_path, capsys):
        run_dir = _completed_run(tmp_path)
        assert cli_main(["doctor", str(run_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "pass"
        assert payload["exit_code"] == 0
        assert payload["drift"] is None

    def test_not_a_run_directory_exits_two(self, tmp_path, capsys):
        assert cli_main(["doctor", str(tmp_path)]) == 2
        assert "not a run directory" in capsys.readouterr().err

    def test_metrics_out_writes_prometheus_text(self, tmp_path, capsys):
        run_dir = _completed_run(tmp_path)
        self._write_health(run_dir)
        metrics = tmp_path / "doctor.prom"
        rc = cli_main(["doctor", str(run_dir), "--metrics-out", str(metrics)])
        assert rc == 0
        text = metrics.read_text()
        assert "# TYPE repro_doctor_health gauge" in text
        assert "repro_doctor_health 0" in text
        assert "# TYPE repro_chain_rhat gauge" in text
        assert "repro_doctor_cells_completed 2" in text
        # The passive command stays quiet on stdout apart from the report.
        assert "doctor verdict" in capsys.readouterr().out
        # ... and the flag's enablement was scoped to the command.
        assert not telemetry.enabled()

    @staticmethod
    def _write_health(run_dir):
        health = ChainHealth()
        for chain in _white_noise_chains():
            health.ingest_chain({"theta": chain})
        ckpt = run_dir / "ckpt"
        ckpt.mkdir()
        (ckpt / "health.json").write_text(
            json.dumps(health.report(publish=False).to_json())
        )
