"""Unit tests for the DPMHBP sampler and model."""

import numpy as np
import pytest

from repro.core.dpmhbp import DPMHBP, DPMHBPModel
from repro.core.ranking.objective import empirical_auc


def clustered_data(rng, n_per=120, years=11):
    """Two latent cohorts with distinct rates and distinct features."""
    q = np.concatenate([np.full(n_per, 0.02), np.full(n_per, 0.30)])
    failures = (rng.random((2 * n_per, years)) < q[:, None]).astype(np.int8)
    features = np.concatenate(
        [rng.normal(-1.5, 0.4, (n_per, 2)), rng.normal(1.5, 0.4, (n_per, 2))]
    )
    truth = np.concatenate([np.zeros(n_per, int), np.ones(n_per, int)])
    return failures, features, truth


class TestSampler:
    def test_discovers_two_cohorts(self, rng):
        failures, features, truth = clustered_data(rng)
        post = DPMHBP(n_sweeps=40, burn_in=15, seed=1, feature_weight=1.0).fit(
            failures, features
        )
        # Posterior mean rho separates cohorts sharply.
        lo = post.rho_mean[truth == 0].mean()
        hi = post.rho_mean[truth == 1].mean()
        assert hi > 5 * lo

    def test_assignments_respect_features(self, rng):
        failures, features, truth = clustered_data(rng)
        post = DPMHBP(n_sweeps=40, burn_in=15, seed=2, feature_weight=1.0).fit(
            failures, features
        )
        z = post.last_assignments
        # The dominant cluster of each cohort must differ.
        top0 = np.bincount(z[truth == 0]).argmax()
        top1 = np.bincount(z[truth == 1]).argmax()
        assert top0 != top1

    def test_cluster_count_unbounded_but_finite(self, rng):
        failures, features, _ = clustered_data(rng, n_per=60)
        post = DPMHBP(n_sweeps=25, burn_in=10, seed=3, alpha=8.0).fit(failures, features)
        assert 1 <= post.n_clusters_trace[-1] <= 120

    def test_history_only_mode(self, rng):
        failures, _, truth = clustered_data(rng)
        post = DPMHBP(n_sweeps=25, burn_in=10, seed=4, feature_weight=0.0).fit(failures)
        hi = post.rho_mean[truth == 1].mean()
        lo = post.rho_mean[truth == 0].mean()
        assert hi > 3 * lo  # rates alone separate these cohorts

    def test_init_labels_seed_partition(self, rng):
        failures, features, truth = clustered_data(rng, n_per=50)
        post = DPMHBP(n_sweeps=10, burn_in=3, seed=5).fit(
            failures, features, init_labels=truth
        )
        assert post.rho_mean.shape == (100,)

    def test_init_labels_with_gaps_compacted(self, rng):
        """Non-contiguous init labels must be relabelled, not patched by
        mutating a random segment's assignment (the old empty-cluster
        hazard): every cluster in the final state has at least one member."""
        failures, features, truth = clustered_data(rng, n_per=40)
        gappy = np.where(truth == 0, 0, 5)  # labels {0, 5}, clusters 1-4 empty
        post = DPMHBP(n_sweeps=8, burn_in=2, seed=11).fit(
            failures, features, init_labels=gappy
        )
        assert np.array_equal(
            np.unique(post.last_assignments), np.arange(post.last_q.size)
        )

    def test_no_empty_clusters_after_fit(self, rng):
        failures, features, _ = clustered_data(rng, n_per=50)
        for seed in (0, 1, 2, 3):
            post = DPMHBP(n_sweeps=12, burn_in=4, seed=seed).fit(failures, features)
            assert np.array_equal(
                np.unique(post.last_assignments), np.arange(post.last_q.size)
            )

    def test_init_labels_validation(self, rng):
        failures, features, _ = clustered_data(rng, n_per=20)
        with pytest.raises(ValueError):
            DPMHBP(n_sweeps=5, burn_in=1).fit(failures, features, init_labels=np.zeros(3))

    def test_rho_bounded(self, rng):
        failures, features, _ = clustered_data(rng, n_per=40)
        post = DPMHBP(n_sweeps=20, burn_in=5, seed=6).fit(failures, features)
        assert np.all((post.rho_mean >= 0) & (post.rho_mean <= 1))

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            DPMHBP(n_sweeps=5, burn_in=10).fit(np.zeros((4, 3), dtype=np.int8))
        with pytest.raises(ValueError):
            DPMHBP(n_sweeps=5, burn_in=1).fit(np.zeros(4, dtype=np.int8))
        with pytest.raises(ValueError):
            DPMHBP(n_sweeps=5, burn_in=1).fit(
                np.zeros((4, 3), dtype=np.int8), np.zeros((5, 2))
            )

    def test_deterministic_given_seed(self, rng):
        failures, features, _ = clustered_data(rng, n_per=30)
        a = DPMHBP(n_sweeps=10, burn_in=3, seed=7).fit(failures, features)
        b = DPMHBP(n_sweeps=10, burn_in=3, seed=7).fit(failures, features)
        assert np.allclose(a.rho_mean, b.rho_mean)
        assert np.array_equal(a.last_assignments, b.last_assignments)


class TestDPMHBPModel:
    def test_fit_predict_shapes(self, small_model_data):
        model = DPMHBPModel(n_sweeps=15, burn_in=5, seed=0)
        scores = model.fit_predict(small_model_data)
        assert scores.shape == (small_model_data.n_pipes,)
        assert np.all(scores >= 0)

    def test_beats_chance(self, small_model_data):
        model = DPMHBPModel(n_sweeps=25, burn_in=8, seed=0)
        scores = model.fit_predict(small_model_data)
        assert empirical_auc(scores, small_model_data.pipe_fail_test) > 0.55

    def test_segment_risk_exposed(self, small_model_data):
        model = DPMHBPModel(n_sweeps=15, burn_in=5, seed=0).fit(small_model_data)
        rho = model.predict_segment_risk()
        assert rho.shape == (small_model_data.n_segments,)

    def test_longer_pipes_riskier_all_else_equal(self, small_model_data):
        """The series-system composition: more segments ⇒ higher π."""
        md = small_model_data
        model = DPMHBPModel(n_sweeps=15, burn_in=5, seed=0, covariates=False).fit(md)
        rho = model.predict_segment_risk()
        pipe_p = md.survival_pipe_probability(rho)
        counts = np.bincount(md.seg_pipe_idx, minlength=md.n_pipes)
        # Across the population, segment count and composed risk correlate.
        corr = np.corrcoef(counts, pipe_p)[0, 1]
        assert corr > 0.2

    def test_predict_before_fit(self, small_model_data):
        with pytest.raises(RuntimeError):
            DPMHBPModel().predict_pipe_risk(small_model_data)
        with pytest.raises(RuntimeError):
            DPMHBPModel().predict_segment_risk()
