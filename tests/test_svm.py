"""Unit tests for the Pegasos linear SVM."""

import numpy as np
import pytest

from repro.ml.svm import LinearSVM


class TestLinearSVM:
    def test_separable_accuracy(self, rng):
        X = rng.standard_normal((400, 2))
        y = (X @ np.array([2.0, -1.0]) > 0).astype(int)
        model = LinearSVM(epochs=15, seed=1).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_decision_function_sign_matches_predict(self, rng):
        X = rng.standard_normal((100, 3))
        y = (X[:, 0] > 0).astype(int)
        model = LinearSVM(epochs=5).fit(X, y)
        assert np.array_equal(model.predict(X), (model.decision_function(X) >= 0).astype(int))

    def test_imbalanced_data_balanced_mode(self, rng):
        """With 5% positives, balanced weighting must not collapse to all-negative."""
        n = 1000
        X = rng.standard_normal((n, 2))
        margin = X @ np.array([1.5, 0.5])
        threshold = np.quantile(margin, 0.95)
        y = (margin > threshold).astype(int)
        model = LinearSVM(epochs=20, balanced=True, seed=2).fit(X, y)
        recall = model.predict(X)[y == 1].mean()
        assert recall > 0.5

    def test_unbalanced_mode_runs(self, rng):
        X = rng.standard_normal((60, 2))
        y = (X[:, 0] > 0).astype(int)
        model = LinearSVM(balanced=False, epochs=5).fit(X, y)
        assert model.coef_ is not None

    def test_weight_norm_bounded(self, rng):
        X = rng.standard_normal((200, 4)) * 100
        y = (X[:, 0] > 0).astype(int)
        model = LinearSVM(lam=0.01, epochs=10).fit(X, y)
        assert np.linalg.norm(model.coef_) <= 1.0 / np.sqrt(0.01) + 1e-9

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.ones((3, 1)), np.array([0, 1, 2]))

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.ones((1, 1)))

    def test_deterministic_given_seed(self, rng):
        X = rng.standard_normal((100, 2))
        y = (X[:, 0] > 0).astype(int)
        a = LinearSVM(seed=7, epochs=3).fit(X, y).coef_
        b = LinearSVM(seed=7, epochs=3).fit(X, y).coef_
        assert np.array_equal(a, b)
