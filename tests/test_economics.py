"""Unit tests for the inspection-economics module."""

import numpy as np
import pytest

from repro.eval.economics import CostModel, plan_economics, savings_curve


class TestCostModel:
    def test_averted_cost(self):
        costs = CostModel(reactive_failure=100.0, proactive_renewal=40.0, detection_effectiveness=0.5)
        assert costs.averted_cost_per_failure == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(detection_effectiveness=1.5)
        with pytest.raises(ValueError):
            CostModel(inspection_per_km=-1.0)


class TestPlanEconomics:
    def test_budget_respected(self, small_model_data):
        md = small_model_data
        rng = np.random.default_rng(0)
        scores = rng.random(md.n_pipes)
        econ = plan_economics(md, scores, 0.05)
        assert econ.inspected_km * 1000.0 <= 0.05 * md.pipe_lengths.sum() + md.pipe_lengths.max()
        assert econ.n_inspected >= 1

    def test_caught_plus_missed_is_total(self, small_model_data):
        md = small_model_data
        scores = np.arange(md.n_pipes, dtype=float)
        econ = plan_economics(md, scores, 0.1)
        assert econ.failures_caught + econ.failures_missed == int(md.pipe_fail_test.sum())

    def test_oracle_scores_maximise_savings(self, small_model_data):
        md = small_model_data
        rng = np.random.default_rng(1)
        random_scores = rng.random(md.n_pipes)
        oracle_scores = md.pipe_fail_test + 0.001 * rng.random(md.n_pipes)
        e_random = plan_economics(md, random_scores, 0.05)
        e_oracle = plan_economics(md, oracle_scores, 0.05)
        assert e_oracle.failures_caught >= e_random.failures_caught
        assert e_oracle.net_savings >= e_random.net_savings

    def test_net_savings_arithmetic(self, small_model_data):
        md = small_model_data
        scores = np.ones(md.n_pipes)
        econ = plan_economics(md, scores, 0.02)
        assert econ.net_savings == pytest.approx(econ.averted_cost - econ.inspection_cost)

    def test_benefit_cost_ratio(self, small_model_data):
        md = small_model_data
        econ = plan_economics(md, np.ones(md.n_pipes), 0.02)
        if econ.inspection_cost > 0:
            assert econ.benefit_cost_ratio == pytest.approx(
                econ.averted_cost / econ.inspection_cost
            )

    def test_validation(self, small_model_data):
        md = small_model_data
        with pytest.raises(ValueError):
            plan_economics(md, np.ones(md.n_pipes), 0.0)
        with pytest.raises(ValueError):
            plan_economics(md, np.ones(3), 0.1)


class TestSavingsCurve:
    def test_shapes_and_alignment(self, small_model_data):
        md = small_model_data
        budgets, savings = savings_curve(md, np.ones(md.n_pipes), budgets=np.array([0.01, 0.05, 0.1]))
        assert budgets.shape == savings.shape == (3,)

    def test_benefit_cost_ratio_decreases_with_budget(self, small_model_data):
        """With a good ranking, marginal inspections get less profitable."""
        md = small_model_data
        rng = np.random.default_rng(2)
        oracle = md.pipe_fail_test + 0.001 * rng.random(md.n_pipes)
        small = plan_economics(md, oracle, 0.02)
        full = plan_economics(md, oracle, 1.0)
        assert full.benefit_cost_ratio <= small.benefit_cost_ratio
        # Full inspection catches everything but pays for the whole network.
        assert full.failures_missed == 0
        assert full.inspection_cost > small.inspection_cost
