"""Unit tests for planar geometry primitives."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.geometry import (
    BoundingBox,
    distance,
    interpolate,
    midpoint,
    point_segment_distance,
    polyline_length,
    resample_polyline,
    split_segment,
)

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)


class TestDistance:
    def test_zero_for_same_point(self):
        assert distance((3.0, 4.0), (3.0, 4.0)) == 0.0

    def test_pythagorean(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == 5.0

    @given(points, points)
    def test_symmetry(self, a, b):
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6


class TestPolylineLength:
    def test_empty_and_single(self):
        assert polyline_length([]) == 0.0
        assert polyline_length([(1.0, 1.0)]) == 0.0

    def test_two_points(self):
        assert polyline_length([(0.0, 0.0), (3.0, 4.0)]) == pytest.approx(5.0)

    def test_l_shape(self):
        pts = [(0.0, 0.0), (10.0, 0.0), (10.0, 5.0)]
        assert polyline_length(pts) == pytest.approx(15.0)

    @given(st.lists(points, min_size=2, max_size=8))
    def test_at_least_endpoint_distance(self, pts):
        assert polyline_length(pts) >= distance(pts[0], pts[-1]) - 1e-6


class TestInterpolate:
    def test_endpoints(self):
        assert interpolate((0.0, 0.0), (2.0, 4.0), 0.0) == (0.0, 0.0)
        assert interpolate((0.0, 0.0), (2.0, 4.0), 1.0) == (2.0, 4.0)

    def test_midpoint_matches(self):
        assert midpoint((0.0, 0.0), (2.0, 4.0)) == interpolate((0.0, 0.0), (2.0, 4.0), 0.5)


class TestPointSegmentDistance:
    def test_projection_inside(self):
        assert point_segment_distance((1.0, 1.0), (0.0, 0.0), (2.0, 0.0)) == pytest.approx(1.0)

    def test_projection_clamps_to_endpoint(self):
        assert point_segment_distance((5.0, 0.0), (0.0, 0.0), (2.0, 0.0)) == pytest.approx(3.0)

    def test_degenerate_segment(self):
        assert point_segment_distance((3.0, 4.0), (0.0, 0.0), (0.0, 0.0)) == pytest.approx(5.0)

    @given(points, points, points)
    def test_never_exceeds_endpoint_distances(self, p, a, b):
        d = point_segment_distance(p, a, b)
        assert d <= min(distance(p, a), distance(p, b)) + 1e-6


class TestSplitting:
    def test_split_counts_and_lengths(self):
        parts = split_segment((0.0, 0.0), (10.0, 0.0), 4)
        assert len(parts) == 4
        for (a, b) in parts:
            assert distance(a, b) == pytest.approx(2.5)

    def test_split_preserves_endpoints(self):
        parts = split_segment((1.0, 2.0), (5.0, 6.0), 3)
        assert parts[0][0] == (1.0, 2.0)
        assert parts[-1][1] == (5.0, 6.0)

    def test_split_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            split_segment((0.0, 0.0), (1.0, 0.0), 0)

    def test_resample_straight_line(self):
        parts = resample_polyline([(0.0, 0.0), (9.0, 0.0)], 3)
        assert len(parts) == 3
        assert parts[1][0] == pytest.approx((3.0, 0.0))

    def test_resample_bent_polyline_equal_arcs(self):
        pts = [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]
        parts = resample_polyline(pts, 4)
        lengths = [distance(a, b) for a, b in parts]
        # Arc lengths equal 5 each; chords can only be shorter at the bend.
        assert all(l <= 5.0 + 1e-9 for l in lengths)
        assert lengths[0] == pytest.approx(5.0)

    def test_resample_rejects_short_polyline(self):
        with pytest.raises(ValueError):
            resample_polyline([(0.0, 0.0)], 2)


class TestBoundingBox:
    def test_around_points(self):
        box = BoundingBox.around([(0.0, 1.0), (4.0, -2.0)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0.0, -2.0, 4.0, 1.0)

    def test_margin(self):
        box = BoundingBox.around([(0.0, 0.0), (2.0, 2.0)], margin=1.0)
        assert box.min_x == -1.0 and box.max_y == 3.0

    def test_area_and_dims(self):
        box = BoundingBox(0.0, 0.0, 4.0, 5.0)
        assert box.width == 4.0 and box.height == 5.0 and box.area == 20.0

    def test_contains(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains((0.5, 0.5))
        assert box.contains((1.0, 1.0))  # boundary counts
        assert not box.contains((1.1, 0.5))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.around([])
