"""Unit and property tests for distribution helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats
from scipy.special import betaln

from repro.bayes.distributions import (
    bernoulli_loglik,
    beta_binomial_logmarginal,
    beta_logpdf,
    beta_mean_concentration,
    clip_unit,
    gaussian_logpdf,
    gaussian_marginal_logpdf_sum,
    log_factorial,
)

probs = st.floats(min_value=0.01, max_value=0.99)
shapes = st.floats(min_value=0.1, max_value=50.0)


class TestBetaLogpdf:
    @given(probs, shapes, shapes)
    @settings(max_examples=50)
    def test_matches_scipy(self, x, a, b):
        assert beta_logpdf(x, a, b) == pytest.approx(stats.beta.logpdf(x, a, b), rel=1e-6)

    def test_boundary_clipped_finite(self):
        assert np.isfinite(beta_logpdf(0.0, 2.0, 3.0))
        assert np.isfinite(beta_logpdf(1.0, 2.0, 3.0))

    def test_vectorised(self):
        out = beta_logpdf(np.array([0.2, 0.5]), 2.0, 2.0)
        assert out.shape == (2,)


class TestBernoulliLoglik:
    def test_matches_direct(self):
        # 3 successes of 10 at p=0.2
        expected = 3 * np.log(0.2) + 7 * np.log(0.8)
        assert bernoulli_loglik(3, 10, 0.2) == pytest.approx(expected)

    def test_extreme_p_clipped(self):
        assert np.isfinite(bernoulli_loglik(1, 2, 0.0))
        assert np.isfinite(bernoulli_loglik(1, 2, 1.0))


class TestBetaBinomialMarginal:
    def test_closed_form(self):
        s, n, a, b = 2.0, 10.0, 1.5, 3.0
        expected = betaln(a + s, b + n - s) - betaln(a, b)
        assert beta_binomial_logmarginal(s, n, a, b) == pytest.approx(expected)

    @given(
        st.integers(0, 10),
        st.floats(min_value=1.0, max_value=20.0),
        st.floats(min_value=1.0, max_value=20.0),
    )
    @settings(max_examples=40)
    def test_matches_quadrature(self, s, a, b):
        # Shapes >= 1 keep the integrand bounded so the linear grid is exact
        # enough; smaller shapes are covered by the normalisation test below.
        n = 10
        grid = np.linspace(1e-9, 1 - 1e-9, 20001)
        integrand = grid**s * (1 - grid) ** (n - s) * stats.beta.pdf(grid, a, b)
        numeric = np.log(np.trapezoid(integrand, grid))
        assert beta_binomial_logmarginal(s, n, a, b) == pytest.approx(numeric, abs=5e-3)

    def test_normalises_over_s(self):
        # Σ_s C(n,s)·exp(logmarginal) = 1.
        n, a, b = 8, 2.0, 5.0
        from math import comb

        total = sum(
            comb(n, s) * np.exp(beta_binomial_logmarginal(s, n, a, b)) for s in range(n + 1)
        )
        assert total == pytest.approx(1.0, rel=1e-9)


class TestConversionsAndMisc:
    def test_mean_concentration(self):
        a, b = beta_mean_concentration(0.2, 10.0)
        assert (a, b) == (2.0, 8.0)
        assert stats.beta.mean(a, b) == pytest.approx(0.2)

    def test_mean_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            beta_mean_concentration(0.0, 1.0)
        with pytest.raises(ValueError):
            beta_mean_concentration(0.5, -1.0)

    def test_clip_unit(self):
        out = clip_unit(np.array([-1.0, 0.5, 2.0]))
        assert 0 < out[0] < 1 and out[1] == 0.5 and 0 < out[2] < 1

    def test_gaussian_logpdf_matches_scipy(self):
        assert gaussian_logpdf(np.array([1.2]), 0.5, 2.0)[0] == pytest.approx(
            stats.norm.logpdf(1.2, 0.5, np.sqrt(2.0))
        )

    def test_log_factorial(self):
        assert log_factorial(5) == pytest.approx(np.log(120.0))
        assert log_factorial(0) == pytest.approx(0.0)


class TestGaussianMarginal:
    def test_empty_is_zero(self):
        assert gaussian_marginal_logpdf_sum(np.array([]), 0.0, 1.0, 1.0) == 0.0

    def test_single_point_matches_convolution(self):
        # x ~ N(mu, s2), mu ~ N(m0, t2)  =>  x ~ N(m0, s2 + t2).
        x = np.array([0.7])
        got = gaussian_marginal_logpdf_sum(x, 0.2, 1.5, 0.8)
        want = stats.norm.logpdf(0.7, 0.2, np.sqrt(1.5 + 0.8))
        assert got == pytest.approx(want, rel=1e-9)

    def test_many_points_against_numeric_integral(self):
        rng = np.random.default_rng(3)
        x = rng.normal(1.0, 1.0, size=5)
        prior_mean, prior_var, noise = 0.0, 2.0, 1.3
        grid = np.linspace(-10, 12, 40001)
        like = np.exp(
            np.sum(stats.norm.logpdf(x[:, None], grid[None, :], np.sqrt(noise)), axis=0)
        ) * stats.norm.pdf(grid, prior_mean, np.sqrt(prior_var))
        numeric = np.log(np.trapezoid(like, grid))
        got = gaussian_marginal_logpdf_sum(x, prior_mean, prior_var, noise)
        assert got == pytest.approx(numeric, abs=1e-6)
