"""Unit tests for the hierarchical beta process model."""

import numpy as np
import pytest

from repro.core.hbp import HBPBestModel, HBPModel, fit_hbp
from repro.core.ranking.objective import empirical_auc


def two_group_data(rng, n_per=150, years=11, q_low=0.02, q_high=0.25):
    groups = np.concatenate([np.zeros(n_per, int), np.ones(n_per, int)])
    p = np.where(groups == 0, q_low, q_high)
    failures = (rng.random((2 * n_per, years)) < p[:, None]).astype(np.int8)
    return failures, groups


class TestFitHBP:
    def test_recovers_group_rates(self, rng):
        failures, groups = two_group_data(rng)
        post = fit_hbp(failures, groups, n_sweeps=300, burn_in=100, seed=1)
        assert post.q_mean[0] == pytest.approx(0.02, abs=0.015)
        assert post.q_mean[1] == pytest.approx(0.25, abs=0.05)

    def test_pi_shrinks_toward_group_rate(self, rng):
        failures, groups = two_group_data(rng)
        post = fit_hbp(failures, groups, c_group=30.0, n_sweeps=200, burn_in=80)
        # Zero-failure units in the high-rate group still get elevated risk.
        zero_high = (failures.sum(1) == 0) & (groups == 1)
        zero_low = (failures.sum(1) == 0) & (groups == 0)
        if zero_high.any() and zero_low.any():
            assert post.pi_mean[zero_high].mean() > post.pi_mean[zero_low].mean()

    def test_failure_history_raises_pi(self, rng):
        failures, groups = two_group_data(rng)
        post = fit_hbp(failures, groups, n_sweeps=150, burn_in=50)
        many = failures.sum(1) >= 3
        none = failures.sum(1) == 0
        assert post.pi_mean[many].mean() > post.pi_mean[none].mean()

    def test_acceptance_rate_reasonable(self, rng):
        failures, groups = two_group_data(rng)
        post = fit_hbp(failures, groups, n_sweeps=300, burn_in=100)
        assert 0.1 < post.accept_rate < 0.9

    def test_trace_shape(self, rng):
        failures, groups = two_group_data(rng, n_per=40)
        post = fit_hbp(failures, groups, n_sweeps=100, burn_in=40)
        assert post.q_trace.shape == (60, 2)

    def test_validation(self, rng):
        failures, groups = two_group_data(rng, n_per=10)
        with pytest.raises(ValueError):
            fit_hbp(failures[:5], groups, n_sweeps=10, burn_in=2)
        with pytest.raises(ValueError):
            fit_hbp(failures, groups, n_sweeps=10, burn_in=20)
        with pytest.raises(ValueError):
            fit_hbp(failures.ravel(), groups, n_sweeps=10, burn_in=2)
        with pytest.raises(ValueError):
            fit_hbp(failures, groups, n_sweeps=10, burn_in=2, sampler="gibbs")

    def test_slice_sampler_agrees_with_metropolis(self, rng):
        """Both q_k updates target the same posterior."""
        failures, groups = two_group_data(rng)
        mh = fit_hbp(failures, groups, n_sweeps=250, burn_in=100, seed=1)
        sl = fit_hbp(failures, groups, n_sweeps=250, burn_in=100, seed=1, sampler="slice")
        assert np.allclose(mh.q_mean, sl.q_mean, atol=0.04)


class TestHBPModel:
    @pytest.mark.parametrize("grouping", ["material", "diameter", "laid_year"])
    def test_fit_predict_all_groupings(self, small_model_data, grouping):
        model = HBPModel(grouping=grouping, n_sweeps=80, burn_in=30, seed=0)
        scores = model.fit_predict(small_model_data)
        assert scores.shape == (small_model_data.n_pipes,)
        assert np.all(scores >= 0)

    def test_beats_chance(self, small_model_data):
        model = HBPModel(grouping="material", n_sweeps=120, burn_in=40, seed=0)
        scores = model.fit_predict(small_model_data)
        assert empirical_auc(scores, small_model_data.pipe_fail_test) > 0.55

    def test_covariates_flag_changes_scores(self, small_model_data):
        a = HBPModel(n_sweeps=60, burn_in=20, covariates=True, seed=0).fit_predict(
            small_model_data
        )
        b = HBPModel(n_sweeps=60, burn_in=20, covariates=False, seed=0).fit_predict(
            small_model_data
        )
        assert not np.allclose(a, b)

    def test_predict_before_fit(self, small_model_data):
        with pytest.raises(RuntimeError):
            HBPModel().predict_pipe_risk(small_model_data)


class TestHBPBestModel:
    def test_selects_a_grouping(self, small_model_data):
        model = HBPBestModel(n_sweeps=60, burn_in=20, seed=0)
        model.fit(small_model_data)
        assert model.chosen_grouping_ in ("material", "diameter", "laid_year")
        scores = model.predict_pipe_risk(small_model_data)
        assert scores.shape == (small_model_data.n_pipes,)

    def test_never_reads_test_labels(self, small_model_data):
        """Selection must be identical when test labels are scrambled."""
        from dataclasses import replace

        md = small_model_data
        scrambled = replace(md, pipe_fail_test=1.0 - md.pipe_fail_test)
        a = HBPBestModel(n_sweeps=40, burn_in=15, seed=0)
        b = HBPBestModel(n_sweeps=40, burn_in=15, seed=0)
        a.fit(md)
        b.fit(scrambled)
        assert a.chosen_grouping_ == b.chosen_grouping_
