"""Unit tests for logistic and Poisson regression (IRLS)."""

import numpy as np
import pytest

from repro.ml.glm import LogisticRegression, PoissonRegression


class TestLogisticRegression:
    def test_recovers_coefficients(self, rng):
        n = 4000
        X = rng.standard_normal((n, 2))
        true = np.array([1.2, -0.7])
        p = 1.0 / (1.0 + np.exp(-(0.3 + X @ true)))
        y = (rng.random(n) < p).astype(float)
        model = LogisticRegression(l2=1e-6).fit(X, y)
        assert model.coef_[0] == pytest.approx(0.3, abs=0.15)  # intercept
        assert np.allclose(model.coef_[1:], true, atol=0.15)

    def test_predict_proba_in_unit_interval(self, rng):
        X = rng.standard_normal((100, 3))
        y = (rng.random(100) < 0.3).astype(float)
        p = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.all((p > 0) & (p < 1))

    def test_separable_data_bounded_by_ridge(self, rng):
        X = np.concatenate([np.full((20, 1), -2.0), np.full((20, 1), 2.0)])
        y = np.concatenate([np.zeros(20), np.ones(20)])
        model = LogisticRegression(l2=1e-2).fit(X, y)
        assert np.isfinite(model.coef_).all()

    def test_rejects_non_binary(self, rng):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((3, 1)), np.array([0.0, 1.0, 2.0]))

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.ones((1, 1)))

    def test_no_intercept_mode(self, rng):
        X = rng.standard_normal((500, 1))
        y = (rng.random(500) < 1 / (1 + np.exp(-2 * X[:, 0]))).astype(float)
        m = LogisticRegression(fit_intercept=False, l2=1e-6).fit(X, y)
        assert m.coef_.shape == (1,)
        assert m.coef_[0] == pytest.approx(2.0, abs=0.4)


class TestPoissonRegression:
    def test_recovers_coefficients(self, rng):
        n = 4000
        X = rng.standard_normal((n, 2))
        true = np.array([0.6, -0.4])
        y = rng.poisson(np.exp(0.2 + X @ true))
        model = PoissonRegression(l2=1e-6).fit(X, y)
        assert model.coef_[0] == pytest.approx(0.2, abs=0.1)
        assert np.allclose(model.coef_[1:], true, atol=0.1)

    def test_exposure_offset(self, rng):
        n = 3000
        exposure = rng.uniform(0.5, 5.0, n)
        y = rng.poisson(exposure * np.exp(0.4))
        model = PoissonRegression(l2=1e-8).fit(np.zeros((n, 1)), y, exposure=exposure)
        # Intercept should absorb the base rate exp(0.4).
        assert model.coef_[0] == pytest.approx(0.4, abs=0.08)

    def test_predict_rate_scales_with_exposure(self, rng):
        X = rng.standard_normal((100, 1))
        y = rng.poisson(np.exp(X[:, 0]))
        model = PoissonRegression().fit(X, y)
        base = model.predict_rate(X)
        doubled = model.predict_rate(X, exposure=np.full(100, 2.0))
        assert np.allclose(doubled, 2.0 * base)

    def test_covariate_factor_excludes_intercept(self, rng):
        X = rng.standard_normal((500, 1))
        y = rng.poisson(np.exp(2.0 + 0.5 * X[:, 0]))  # big intercept
        model = PoissonRegression().fit(X, y)
        factor = model.covariate_factor(X)
        # Geometric mean ~ exp(0.5 * mean(x)) ~ 1, not exp(2).
        assert np.exp(np.mean(np.log(factor))) == pytest.approx(1.0, abs=0.3)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            PoissonRegression().fit(np.ones((2, 1)), np.array([-1.0, 2.0]))

    def test_rejects_non_positive_exposure(self):
        with pytest.raises(ValueError):
            PoissonRegression().fit(np.ones((2, 1)), np.array([0.0, 1.0]), exposure=np.array([0.0, 1.0]))

    def test_all_zero_counts_stable(self):
        model = PoissonRegression().fit(np.ones((50, 1)), np.zeros(50))
        assert np.isfinite(model.coef_).all()

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            PoissonRegression().predict_rate(np.ones((1, 1)))
