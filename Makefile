# Convenience targets for the reproduction workflow.

.PHONY: install test lint bench bench-save bench-compare perfcheck perfcheck-procs health-save health-compare report examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

# Static checks. Skips gracefully where ruff isn't installed (the
# air-gapped reproduction image); CI installs it and enforces.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff)"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only -s

# Perf-regression harness (no pytest-benchmark needed): snapshot the five
# sampler benchmarks to BENCH_<rev>.json / fail on >25% median regressions.
bench-save:
	PYTHONPATH=src python -m repro.perf save

bench-compare:
	PYTHONPATH=src python -m repro.perf compare

# Fast perf smoke for tier-1 CI: one DPMHBP sweep + one exact-AUC call
# must land under a generous ceiling.
perfcheck:
	PYTHONPATH=src python -m repro.perf smoke

# Same smoke under the multi-process backend: exercises the persistent
# worker pool and the shared-memory data plane end to end.
perfcheck-procs:
	REPRO_EXECUTOR=processes REPRO_JOBS=2 PYTHONPATH=src python -m repro.perf smoke

# Metric-drift harness (mirrors bench-save/bench-compare for accuracy):
# snapshot a run directory's per-cell metrics to HEALTH_<rev>.json / fail
# when any cell's metric moves outside the band. Usage:
#   make health-save RUN_DIR=runs/my-run
#   make health-compare RUN_DIR=runs/my-run
RUN_DIR ?= runs/latest
health-save:
	PYTHONPATH=src python -m repro.monitor save $(RUN_DIR)

health-compare:
	PYTHONPATH=src python -m repro.monitor compare $(RUN_DIR)

report:
	python -c "from repro.eval.report import write_report; print(write_report('benchmarks/artifacts'))"

examples:
	python examples/quickstart.py --scale 0.1
	python examples/model_comparison.py --scale 0.1
	python examples/wastewater_chokes.py --scale 0.1
	python examples/risk_map_export.py --scale 0.1
	python examples/inspection_planning.py --scale 0.15
	python examples/survival_exploration.py --scale 0.1

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
