# Convenience targets for the reproduction workflow.

.PHONY: install test bench report examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -s

report:
	python -c "from repro.eval.report import write_report; print(write_report('benchmarks/artifacts'))"

examples:
	python examples/quickstart.py --scale 0.1
	python examples/model_comparison.py --scale 0.1
	python examples/wastewater_chokes.py --scale 0.1
	python examples/risk_map_export.py --scale 0.1
	python examples/inspection_planning.py --scale 0.15
	python examples/survival_exploration.py --scale 0.1

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
