"""Weibull (power-law) nonhomogeneous Poisson process failure model.

The Weibull process models pipe failures as a NHPP with intensity
``λ(t) = α·β·t^(β−1)`` in pipe age ``t`` (Constantine 1996; Ibrahim et al.
2005), so the expected number of failures in an age window ``(a, b]`` is
``α·(b^β − a^β)``. Covariates act multiplicatively, Cox-style:

    E[N_i(a, b]] = (b^β − a^β) · exp(γᵀz_i)            (α folded into γ₀)

Fitting profiles the shape ``β``: for a fixed β the model is a Poisson GLM
with offset ``log(b^β − a^β)``, solved exactly by IRLS; the outer 1-D
problem over β is solved by golden-section search on the profiled
likelihood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.glm import PoissonRegression


def _weibull_exposure(age_start: np.ndarray, age_end: np.ndarray, shape: float) -> np.ndarray:
    """``b^β − a^β`` with a floor that keeps the GLM offset finite."""
    a = np.maximum(np.asarray(age_start, dtype=float), 0.0)
    b = np.maximum(np.asarray(age_end, dtype=float), a + 1e-9)
    return np.maximum(b**shape - a**shape, 1e-9)


@dataclass
class WeibullNHPP:
    """Power-law NHPP with multiplicative covariates.

    Training data is one row per *pipe-year of exposure*: the failure count
    in that window, the pipe's age at the window start and end, and its
    covariates.
    """

    l2: float = 1e-4
    shape_bounds: tuple[float, float] = (0.2, 6.0)
    shape_: float | None = None
    glm_: PoissonRegression | None = None

    def fit(
        self,
        X: np.ndarray,
        counts: np.ndarray,
        age_start: np.ndarray,
        age_end: np.ndarray,
    ) -> "WeibullNHPP":
        X = np.asarray(X, dtype=float)
        counts = np.asarray(counts, dtype=float).ravel()
        age_start = np.asarray(age_start, dtype=float).ravel()
        age_end = np.asarray(age_end, dtype=float).ravel()
        if not (len(counts) == len(age_start) == len(age_end) == X.shape[0]):
            raise ValueError("X, counts and age windows must align")

        def profiled_negloglik(shape: float) -> tuple[float, PoissonRegression]:
            exposure = _weibull_exposure(age_start, age_end, shape)
            glm = PoissonRegression(l2=self.l2).fit(X, counts, exposure=exposure)
            mu = glm.predict_rate(X, exposure=exposure)
            mu = np.maximum(mu, 1e-300)
            ll = float(counts @ np.log(mu) - mu.sum())
            return -ll, glm

        # Golden-section search over the shape.
        lo, hi = self.shape_bounds
        invphi = (np.sqrt(5.0) - 1.0) / 2.0
        c = hi - invphi * (hi - lo)
        d = lo + invphi * (hi - lo)
        fc, glm_c = profiled_negloglik(c)
        fd, glm_d = profiled_negloglik(d)
        for _ in range(40):
            if fc < fd:
                hi, d, fd, glm_d = d, c, fc, glm_c
                c = hi - invphi * (hi - lo)
                fc, glm_c = profiled_negloglik(c)
            else:
                lo, c, fc, glm_c = c, d, fd, glm_d
                d = lo + invphi * (hi - lo)
                fd, glm_d = profiled_negloglik(d)
            if hi - lo < 1e-4:
                break
        if fc < fd:
            self.shape_, self.glm_ = c, glm_c
        else:
            self.shape_, self.glm_ = d, glm_d
        return self

    def expected_failures(
        self, X: np.ndarray, age_start: np.ndarray, age_end: np.ndarray
    ) -> np.ndarray:
        """``E[N(a, b]]`` per row — the ranking score for a future window."""
        if self.shape_ is None or self.glm_ is None:
            raise RuntimeError("model used before fit()")
        exposure = _weibull_exposure(age_start, age_end, self.shape_)
        return self.glm_.predict_rate(X, exposure=exposure)

    def failure_probability(
        self, X: np.ndarray, age_start: np.ndarray, age_end: np.ndarray
    ) -> np.ndarray:
        """P(at least one failure) = ``1 − exp(−E[N])`` under the NHPP."""
        return 1.0 - np.exp(-self.expected_failures(X, age_start, age_end))
