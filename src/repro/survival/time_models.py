"""Early single-covariate ageing models from the related-work section.

Three classics relating pipe age to failures per unit length per year:

* **time-exponential** (Shamir & Howard 1979): ``rate(t) = a·e^{A·t}``,
* **time-power** (Mavin 1996): ``rate(t) = a·t^{b}``,
* **time-linear** (Kettler & Goulter 1985): ``rate(t) = a + b·t``.

All three fit against pipe-year exposure records (failure count, age,
length). The exponential and power models are Poisson GLMs in disguise;
the linear model is a weighted least-squares fit on empirical age-binned
rates (its identity link admits negative rates, which are floored at zero
for prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.glm import PoissonRegression


@dataclass
class TimeExponentialModel:
    """``failures / (length·year) = a·exp(A·age)``."""

    l2: float = 1e-6
    glm_: PoissonRegression | None = None

    def fit(self, ages: np.ndarray, counts: np.ndarray, lengths: np.ndarray) -> "TimeExponentialModel":
        ages, counts, lengths = _validate(ages, counts, lengths)
        self.glm_ = PoissonRegression(l2=self.l2).fit(
            ages[:, None], counts, exposure=lengths
        )
        return self

    def rate(self, ages: np.ndarray) -> np.ndarray:
        """Failures per metre-year at the given ages."""
        if self.glm_ is None:
            raise RuntimeError("model used before fit()")
        ages = np.asarray(ages, dtype=float)
        return self.glm_.predict_rate(ages[:, None])

    def expected_failures(self, ages: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Expected one-year failure count for pipes of given age/length."""
        return self.rate(ages) * np.asarray(lengths, dtype=float)


@dataclass
class TimePowerModel:
    """``failures / (length·year) = a·age^b`` (log-age Poisson GLM)."""

    l2: float = 1e-6
    glm_: PoissonRegression | None = None

    def fit(self, ages: np.ndarray, counts: np.ndarray, lengths: np.ndarray) -> "TimePowerModel":
        ages, counts, lengths = _validate(ages, counts, lengths)
        self.glm_ = PoissonRegression(l2=self.l2).fit(
            np.log(np.maximum(ages, 0.5))[:, None], counts, exposure=lengths
        )
        return self

    def rate(self, ages: np.ndarray) -> np.ndarray:
        """Failures per metre-year at the given ages."""
        if self.glm_ is None:
            raise RuntimeError("model used before fit()")
        ages = np.asarray(ages, dtype=float)
        return self.glm_.predict_rate(np.log(np.maximum(ages, 0.5))[:, None])

    def expected_failures(self, ages: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return self.rate(ages) * np.asarray(lengths, dtype=float)


@dataclass
class TimeLinearModel:
    """``failures / (length·year) = a + b·age`` via weighted least squares.

    Empirical rates are computed per integer-age bin (weighting each bin by
    its exposure), then a straight line is fitted; predictions floor at 0.
    """

    intercept_: float | None = None
    slope_: float | None = None

    def fit(self, ages: np.ndarray, counts: np.ndarray, lengths: np.ndarray) -> "TimeLinearModel":
        ages, counts, lengths = _validate(ages, counts, lengths)
        bins = np.round(ages).astype(int)
        uniq = np.unique(bins)
        bin_ages, bin_rates, bin_weights = [], [], []
        for b in uniq:
            mask = bins == b
            exposure = float(lengths[mask].sum())
            if exposure <= 0:
                continue
            bin_ages.append(float(b))
            bin_rates.append(float(counts[mask].sum()) / exposure)
            bin_weights.append(exposure)
        a = np.asarray(bin_ages)
        r = np.asarray(bin_rates)
        w = np.asarray(bin_weights)
        design = np.stack([np.ones_like(a), a], axis=1)
        wd = design * w[:, None]
        coef = np.linalg.lstsq(wd.T @ design, wd.T @ r, rcond=None)[0]
        self.intercept_, self.slope_ = float(coef[0]), float(coef[1])
        return self

    def rate(self, ages: np.ndarray) -> np.ndarray:
        """Failures per metre-year (floored at zero)."""
        if self.intercept_ is None or self.slope_ is None:
            raise RuntimeError("model used before fit()")
        ages = np.asarray(ages, dtype=float)
        return np.maximum(self.intercept_ + self.slope_ * ages, 0.0)

    def expected_failures(self, ages: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return self.rate(ages) * np.asarray(lengths, dtype=float)


def _validate(
    ages: np.ndarray, counts: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    ages = np.asarray(ages, dtype=float).ravel()
    counts = np.asarray(counts, dtype=float).ravel()
    lengths = np.asarray(lengths, dtype=float).ravel()
    if not (len(ages) == len(counts) == len(lengths)):
        raise ValueError("ages, counts and lengths must align")
    if np.any(lengths <= 0):
        raise ValueError("lengths must be positive")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    return ages, counts, lengths
