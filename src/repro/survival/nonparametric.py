"""Nonparametric survival estimators: Kaplan–Meier, Nelson–Aalen, log-rank.

Exploration utilities for failure data: the survival function of pipe
lifetimes (with the left truncation pipe records force — assets enter
observation at their 1998 age), the cumulative hazard that the beta
process puts its prior over (Hjort's original motivation), and the
log-rank test for comparing failure behaviour across pipe strata (e.g.
materials), which is how domain experts sanity-check candidate groupings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from scipy.special import gammainc


def _validate(
    exit_time: np.ndarray, event: np.ndarray, entry_time: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    exit_time = np.asarray(exit_time, dtype=float).ravel()
    event = np.asarray(event, dtype=float).ravel()
    entry = (
        np.zeros_like(exit_time)
        if entry_time is None
        else np.asarray(entry_time, dtype=float).ravel()
    )
    if not (exit_time.shape == event.shape == entry.shape):
        raise ValueError("exit_time, event and entry_time must align")
    if set(np.unique(event)) - {0.0, 1.0}:
        raise ValueError("event must be binary 0/1")
    if np.any(exit_time < entry):
        raise ValueError("exit before entry")
    return exit_time, event, entry


@dataclass(frozen=True)
class SurvivalCurve:
    """A right-continuous step function estimated at event times."""

    times: np.ndarray
    values: np.ndarray

    def at(self, t: np.ndarray | float) -> np.ndarray:
        """Curve value at time(s) ``t`` (step function, right-continuous)."""
        t = np.atleast_1d(np.asarray(t, dtype=float))
        if self.times.size == 0:
            return np.full(t.shape, self._initial())
        idx = np.searchsorted(self.times, t, side="right") - 1
        return np.where(idx >= 0, self.values[np.maximum(idx, 0)], self._initial())

    def _initial(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class KaplanMeier(SurvivalCurve):
    """Product-limit estimate of S(t) = P(T > t)."""

    def _initial(self) -> float:
        return 1.0


@dataclass(frozen=True)
class NelsonAalen(SurvivalCurve):
    """Nelson–Aalen estimate of the cumulative hazard H(t)."""

    def _initial(self) -> float:
        return 0.0


def _risk_and_deaths(
    exit_time: np.ndarray, event: np.ndarray, entry: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(event times, at-risk counts, death counts) with left truncation."""
    times = np.unique(exit_time[event == 1.0])
    at_risk = np.array(
        [np.sum((entry < t) & (exit_time >= t)) for t in times], dtype=float
    )
    deaths = np.array(
        [np.sum((exit_time == t) & (event == 1.0)) for t in times], dtype=float
    )
    return times, at_risk, deaths


def kaplan_meier(
    exit_time: np.ndarray, event: np.ndarray, entry_time: np.ndarray | None = None
) -> KaplanMeier:
    """Kaplan–Meier survival curve (left truncation supported)."""
    exit_time, event, entry = _validate(exit_time, event, entry_time)
    times, at_risk, deaths = _risk_and_deaths(exit_time, event, entry)
    if times.size == 0:
        return KaplanMeier(times=np.zeros(0), values=np.zeros(0))
    surv = np.cumprod(1.0 - deaths / np.maximum(at_risk, 1e-300))
    return KaplanMeier(times=times, values=surv)


def nelson_aalen(
    exit_time: np.ndarray, event: np.ndarray, entry_time: np.ndarray | None = None
) -> NelsonAalen:
    """Nelson–Aalen cumulative hazard (left truncation supported)."""
    exit_time, event, entry = _validate(exit_time, event, entry_time)
    times, at_risk, deaths = _risk_and_deaths(exit_time, event, entry)
    if times.size == 0:
        return NelsonAalen(times=np.zeros(0), values=np.zeros(0))
    cumhaz = np.cumsum(deaths / np.maximum(at_risk, 1e-300))
    return NelsonAalen(times=times, values=cumhaz)


@dataclass(frozen=True)
class LogRankResult:
    """Outcome of a two-sample log-rank test."""

    statistic: float  # chi-squared with 1 df
    p_value: float
    observed: tuple[float, float]
    expected: tuple[float, float]


def chi2_sf(x: float, df: int) -> float:
    """Chi-squared survival function via the regularised lower gamma."""
    if df < 1:
        raise ValueError("df must be >= 1")
    if x <= 0:
        return 1.0
    return float(1.0 - gammainc(df / 2.0, x / 2.0))


def logrank_test(
    exit_a: np.ndarray,
    event_a: np.ndarray,
    exit_b: np.ndarray,
    event_b: np.ndarray,
    entry_a: np.ndarray | None = None,
    entry_b: np.ndarray | None = None,
) -> LogRankResult:
    """Two-sample log-rank test for equality of hazard functions.

    The standard Mantel–Haenszel construction: at each event time, compare
    group A's observed deaths against the expectation under a common
    hazard, accumulate the hypergeometric variance, and refer
    ``(O − E)² / V`` to chi-squared with one degree of freedom.
    """
    exit_a, event_a, ent_a = _validate(exit_a, event_a, entry_a)
    exit_b, event_b, ent_b = _validate(exit_b, event_b, entry_b)
    all_times = np.unique(
        np.concatenate([exit_a[event_a == 1.0], exit_b[event_b == 1.0]])
    )
    if all_times.size == 0:
        raise ValueError("no events in either group")
    o_a = e_a = var = 0.0
    obs_a = obs_b = 0.0
    for t in all_times:
        n_a = float(np.sum((ent_a < t) & (exit_a >= t)))
        n_b = float(np.sum((ent_b < t) & (exit_b >= t)))
        d_a = float(np.sum((exit_a == t) & (event_a == 1.0)))
        d_b = float(np.sum((exit_b == t) & (event_b == 1.0)))
        n = n_a + n_b
        d = d_a + d_b
        if n < 2 or d == 0:
            obs_a += d_a
            obs_b += d_b
            continue
        o_a += d_a
        e_a += d * n_a / n
        if n > 1:
            var += d * (n_a / n) * (n_b / n) * (n - d) / (n - 1)
        obs_a += d_a
        obs_b += d_b
    if var <= 0:
        return LogRankResult(0.0, 1.0, (obs_a, obs_b), (e_a, obs_a + obs_b - e_a))
    stat = (o_a - e_a) ** 2 / var
    return LogRankResult(
        statistic=float(stat),
        p_value=chi2_sf(float(stat), 1),
        observed=(obs_a, obs_b),
        expected=(float(e_a), float(obs_a + obs_b - e_a)),
    )
