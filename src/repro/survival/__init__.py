"""Survival analysis: Cox PH, Weibull NHPP, time models, nonparametric estimators."""

from .cox import CoxPH
from .nonparametric import (
    KaplanMeier,
    LogRankResult,
    NelsonAalen,
    chi2_sf,
    kaplan_meier,
    logrank_test,
    nelson_aalen,
)
from .time_models import TimeExponentialModel, TimeLinearModel, TimePowerModel
from .weibull import WeibullNHPP

__all__ = [
    "CoxPH",
    "KaplanMeier",
    "LogRankResult",
    "NelsonAalen",
    "chi2_sf",
    "kaplan_meier",
    "logrank_test",
    "nelson_aalen",
    "TimeExponentialModel",
    "TimeLinearModel",
    "TimePowerModel",
    "WeibullNHPP",
]
