"""Cox proportional hazards model, fitted from scratch.

Semi-parametric survival model ``h(t, z) = h0(t)·exp(bᵀz)`` (Cox 1972),
the classic multivariate baseline for pipe failure prediction. This
implementation supports:

* **left truncation** — pipes enter observation at the age they had when
  records began (1998), not at age 0, so risk sets must be age windows
  ``entry < t <= exit``;
* **tied event times** via the Breslow or Efron approximation;
* the **Breslow baseline cumulative hazard** estimator, from which the
  probability of failing inside a future age interval is computed for
  ranking.

Time is *pipe age in years* throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CoxPH:
    """Cox proportional hazards with left truncation and tie handling.

    Parameters
    ----------
    l2:
        Ridge penalty on the coefficients (stabilises sparse categories).
    ties:
        ``"breslow"`` or ``"efron"``.
    """

    l2: float = 1e-4
    ties: str = "breslow"
    max_iter: int = 50
    tol: float = 1e-8
    coef_: np.ndarray | None = None
    baseline_times_: np.ndarray | None = None
    baseline_hazard_: np.ndarray | None = None  # increments dH0 at event times

    def fit(
        self,
        X: np.ndarray,
        exit_time: np.ndarray,
        event: np.ndarray,
        entry_time: np.ndarray | None = None,
    ) -> "CoxPH":
        """Fit by Newton–Raphson on the (penalised) partial log likelihood.

        Parameters
        ----------
        X:
            ``(n, d)`` covariates.
        exit_time:
            Age at event or censoring.
        event:
            1 when ``exit_time`` is a failure, 0 when censored.
        entry_time:
            Age at entry into observation (left truncation); defaults to 0.
        """
        if self.ties not in ("breslow", "efron"):
            raise ValueError(f"unknown tie method {self.ties!r}")
        X = np.asarray(X, dtype=float)
        exit_time = np.asarray(exit_time, dtype=float).ravel()
        event = np.asarray(event, dtype=float).ravel()
        entry = (
            np.zeros_like(exit_time)
            if entry_time is None
            else np.asarray(entry_time, dtype=float).ravel()
        )
        n, d = X.shape
        if not (len(exit_time) == len(event) == len(entry) == n):
            raise ValueError("X, exit_time, event and entry_time must align")
        if np.any(exit_time <= entry):
            # Zero-length at-risk windows carry no information and break
            # risk-set logic; nudge them open by a small epsilon.
            exit_time = np.maximum(exit_time, entry + 1e-6)
        if set(np.unique(event)) - {0.0, 1.0}:
            raise ValueError("event must be binary 0/1")

        event_times = np.unique(exit_time[event == 1.0])
        if event_times.size == 0:
            # No failures at all: flat model.
            self.coef_ = np.zeros(d)
            self.baseline_times_ = np.zeros(0)
            self.baseline_hazard_ = np.zeros(0)
            return self

        # risk_mask[e, i] — pipe i is at risk at event time t_e.
        risk_mask = (entry[None, :] < event_times[:, None]) & (
            exit_time[None, :] >= event_times[:, None]
        )
        # death_mask[e, i] — pipe i fails exactly at t_e.
        death_mask = (exit_time[None, :] == event_times[:, None]) & (event[None, :] == 1.0)
        d_counts = death_mask.sum(axis=1).astype(float)

        beta = np.zeros(d)
        prev_ll = -np.inf
        for _ in range(self.max_iter):
            ll, grad, hess = self._partial_lik_derivatives(
                X, beta, risk_mask, death_mask, d_counts
            )
            ll -= 0.5 * self.l2 * float(beta @ beta)
            grad = grad - self.l2 * beta
            hess = hess + self.l2 * np.eye(d)
            try:
                step = np.linalg.solve(hess, grad)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hess, grad, rcond=None)[0]
            # Step-halving keeps the ascent monotone.
            scale = 1.0
            for _halving in range(30):
                cand = beta + scale * step
                cand_ll = self._partial_loglik(X, cand, risk_mask, death_mask, d_counts)
                cand_ll -= 0.5 * self.l2 * float(cand @ cand)
                if cand_ll >= ll - 1e-12:
                    break
                scale *= 0.5
            beta = beta + scale * step
            new_ll = self._partial_loglik(X, beta, risk_mask, death_mask, d_counts)
            new_ll -= 0.5 * self.l2 * float(beta @ beta)
            if abs(new_ll - prev_ll) < self.tol * (abs(prev_ll) + 1.0):
                break
            prev_ll = new_ll
        self.coef_ = beta

        # Breslow baseline hazard increments dH0(t_e) = d_e / Σ_{risk} exp(bᵀz).
        w = np.exp(np.clip(X @ beta, -30, 30))
        denom = risk_mask @ w
        self.baseline_times_ = event_times
        self.baseline_hazard_ = d_counts / np.maximum(denom, 1e-300)
        return self

    # -- likelihood machinery ---------------------------------------------

    def _partial_loglik(
        self,
        X: np.ndarray,
        beta: np.ndarray,
        risk_mask: np.ndarray,
        death_mask: np.ndarray,
        d_counts: np.ndarray,
    ) -> float:
        eta = np.clip(X @ beta, -30, 30)
        w = np.exp(eta)
        ll = float(eta @ death_mask.sum(axis=0))
        if self.ties == "breslow":
            denom = risk_mask @ w
            ll -= float(d_counts @ np.log(np.maximum(denom, 1e-300)))
        else:  # efron
            denom = risk_mask @ w
            tie_sum = death_mask @ w
            for e, d_e in enumerate(d_counts):
                d_int = int(d_e)
                for r in range(d_int):
                    ll -= np.log(max(denom[e] - (r / d_int) * tie_sum[e], 1e-300))
        return ll

    def _partial_lik_derivatives(
        self,
        X: np.ndarray,
        beta: np.ndarray,
        risk_mask: np.ndarray,
        death_mask: np.ndarray,
        d_counts: np.ndarray,
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Breslow-style score and information (used for Efron too: the
        Newton direction from the Breslow information still converges on
        the Efron objective through the step-halving line search)."""
        n, d = X.shape
        eta = np.clip(X @ beta, -30, 30)
        w = np.exp(eta)
        wX = X * w[:, None]
        s0 = risk_mask @ w  # (E,)
        s1 = risk_mask @ wX  # (E, d)
        # S2_e = Σ_{i∈R_e} w_i z_i z_iᵀ via one matmul on flattened outers.
        outers = (X[:, :, None] * X[:, None, :]).reshape(n, d * d)
        s2 = (risk_mask @ (outers * w[:, None])).reshape(-1, d, d)
        zbar = s1 / np.maximum(s0, 1e-300)[:, None]
        ll = self._partial_loglik(X, beta, risk_mask, death_mask, d_counts)
        grad = death_mask.sum(axis=0) @ X - d_counts @ zbar
        hess = np.zeros((d, d))
        for e, d_e in enumerate(d_counts):
            hess += d_e * (s2[e] / max(s0[e], 1e-300) - np.outer(zbar[e], zbar[e]))
        return ll, grad, hess

    # -- prediction ---------------------------------------------------------

    def cumulative_baseline(self, t: np.ndarray | float) -> np.ndarray:
        """Breslow estimate of ``H0(t) = Σ_{t_e <= t} dH0(t_e)``."""
        self._require_fit()
        t = np.atleast_1d(np.asarray(t, dtype=float))
        idx = np.searchsorted(self.baseline_times_, t, side="right")
        cum = np.concatenate([[0.0], np.cumsum(self.baseline_hazard_)])
        return cum[idx]

    def relative_risk(self, X: np.ndarray) -> np.ndarray:
        """``exp(bᵀz)`` per row — the proportional-hazards multiplier."""
        self._require_fit()
        return np.exp(np.clip(np.asarray(X, dtype=float) @ self.coef_, -30, 30))

    def interval_failure_probability(
        self, X: np.ndarray, age_start: np.ndarray, age_end: np.ndarray
    ) -> np.ndarray:
        """P(fail in (age_start, age_end] | survived to age_start).

        ``1 − exp(−(H0(end) − H0(start))·exp(bᵀz))`` — the quantity used to
        rank pipes for the test year.
        """
        self._require_fit()
        delta = self.cumulative_baseline(age_end) - self.cumulative_baseline(age_start)
        # Beyond the last observed event age the Breslow step function is
        # flat, which would zero every prediction; extrapolate with the
        # mean hazard increment instead.
        age_start = np.atleast_1d(np.asarray(age_start, dtype=float))
        age_end = np.atleast_1d(np.asarray(age_end, dtype=float))
        if self.baseline_times_ is not None and self.baseline_times_.size:
            max_t = self.baseline_times_[-1]
            total = float(np.sum(self.baseline_hazard_))
            mean_rate = total / max(max_t, 1e-9)
            beyond = age_start >= max_t
            delta = np.where(beyond, mean_rate * (age_end - age_start), delta)
        return 1.0 - np.exp(-np.maximum(delta, 0.0) * self.relative_risk(X))

    def _require_fit(self) -> None:
        if self.coef_ is None or self.baseline_times_ is None:
            raise RuntimeError("model used before fit()")
