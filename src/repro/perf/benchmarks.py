"""The sampler benchmarks (plus the run-journal overhead probe), as plain callables.

The five sampler workloads mirror ``benchmarks/test_perf_samplers.py``
workload-for-workload — same sizes, same seeds — but need no
pytest-benchmark, so the regression harness (``python -m repro.perf``) can
run them in bare CI and write comparable medians into ``BENCH_<rev>.json``
snapshots. ``run_journal`` times a full checkpoint round-trip so journal
overhead is held inside the same bench-compare budget as the samplers.

Each ``make_*`` factory performs its setup (data generation) once and
returns the zero-argument callable to be timed, keeping setup cost out of
the measurement.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..bayes.crp import sample_partition
from ..core.dpmhbp import DPMHBP
from ..core.hbp import fit_hbp
from ..core.ranking.evolutionary import EvolutionStrategy
from ..core.ranking.objective import empirical_auc

Benchmark = Callable[[], Callable[[], Any]]


def _failure_matrix(n: int = 2000, years: int = 11) -> np.ndarray:
    rng = np.random.default_rng(0)
    p = rng.choice([0.001, 0.01, 0.05], size=n, p=[0.7, 0.2, 0.1])
    return (rng.random((n, years)) < p[:, None]).astype(np.int8)


def make_dpmhbp_sweeps() -> Callable[[], Any]:
    """Five DPMHBP sweeps over 2k segments (includes CRP reseating)."""
    failures = _failure_matrix()
    features = np.random.default_rng(1).standard_normal((failures.shape[0], 20))
    return lambda: DPMHBP(n_sweeps=5, burn_in=1, seed=0).fit(failures, features)


def make_hbp_sweeps() -> Callable[[], Any]:
    """Fifty HBP sweeps over 2k units with 8 groups."""
    failures = _failure_matrix()
    groups = np.arange(failures.shape[0]) % 8
    return lambda: fit_hbp(failures, groups, n_sweeps=50, burn_in=10, seed=0)


def make_crp_partition() -> Callable[[], Any]:
    """Sequential CRP seating of 5k customers."""

    def run() -> np.ndarray:
        return sample_partition(5000, 3.0, np.random.default_rng(0))

    return run


def make_empirical_auc() -> Callable[[], Any]:
    """Exact AUC on 100k scores (rank-sum path)."""
    rng = np.random.default_rng(0)
    scores = rng.standard_normal(100_000)
    labels = (rng.random(100_000) < 0.01).astype(float)
    labels[0] = 1.0
    return lambda: empirical_auc(scores, labels)


def make_es_generation() -> Callable[[], Any]:
    """One ES generation (40 evaluations) on a 30-dim AUC-like objective."""
    rng = np.random.default_rng(0)
    X = rng.standard_normal((2000, 30))
    y = (rng.random(2000) < 0.05).astype(float)
    y[0] = 1.0

    def run():
        es = EvolutionStrategy(generations=1, population=40, seed=0)
        return es.maximise(lambda w: empirical_auc(X @ w, y), dim=30)

    return run


def make_run_journal() -> Callable[[], Any]:
    """Checkpoint round-trip: save + validate + load 6 cells of 20k-pipe scores.

    Bounds the per-cell journal overhead (npz serialisation, SHA-256
    checksum, atomic rename, validated reload) that every journalled grid
    pays on top of the model fits.
    """
    import tempfile

    from ..eval.experiment import ModelEvaluation, RegionRun
    from ..eval.metrics import empirical_auc as exact_auc
    from ..runs import CellSpec, RunJournal

    rng = np.random.default_rng(0)
    n_pipes = 20_000
    labels = (rng.random(n_pipes) < 0.01).astype(float)
    lengths = rng.uniform(10.0, 500.0, n_pipes)
    cells = []
    for repeat in range(6):
        run = RegionRun(region="A", seed=repeat, labels=labels, pipe_lengths=lengths)
        for model in ("DPMHBP", "HBP", "Cox", "SVM", "Weibull", "AUC-Rank"):
            scores = rng.standard_normal(n_pipes)
            run.evaluations[model] = ModelEvaluation(
                model_name=model,
                scores=scores,
                auc=exact_auc(scores, labels),
                auc_budget_permyriad=0.0,
            )
        cells.append((CellSpec(region="A", repeat=repeat, seed=repeat), run))
    tmp = tempfile.mkdtemp(prefix="repro-bench-journal-")
    journal = RunJournal.create(tmp, {"bench": "run_journal"})

    def run_roundtrip() -> int:
        for spec, cell_run in cells:
            journal.save_cell(spec, cell_run)
        loaded = journal.load_completed([spec for spec, _ in cells])
        return len(loaded)

    return run_roundtrip


def make_telemetry_noop() -> Callable[[], Any]:
    """200k disabled span+counter calls — the cost instrumentation leaves behind.

    Telemetry lives permanently inside sweep loops and worker envelopes,
    so the *disabled* path must stay a near-free attribute check. This
    probe times it directly; any accidental work on the no-op path (a
    dict lookup, an allocation per call) shows up here long before it is
    visible inside ``dpmhbp_sweeps``.
    """
    from .. import telemetry

    def run() -> int:
        telemetry.disable()
        noop_span = telemetry.span
        noop_count = telemetry.count
        for _ in range(200_000):
            with noop_span("hot"):
                noop_count("iterations")
        return 0

    return run


def make_health_noop() -> Callable[[], Any]:
    """50k unmonitored Gibbs sweeps — the cost the health hook leaves behind.

    The :class:`~repro.inference.gibbs.GibbsSampler` sweep loop gained a
    per-sweep monitor hook; with ``monitor=None`` (the default) that hook
    must stay one ``None`` check, not a scalars-dict build. This probe
    times a trivial one-block sampler so any accidental work on the
    unmonitored path shows up here, mirroring ``telemetry_noop``.
    """
    from ..inference.gibbs import GibbsSampler

    def run() -> int:
        sampler = GibbsSampler(state={"x": 0.0}, rng=np.random.default_rng(0))
        sampler.add_block("noop", lambda state, rng: {"accept": 1.0})
        sampler.run(50_000)
        return 0

    return run


#: Registry consumed by ``repro.perf.run_benchmarks`` — name → factory.
BENCHMARKS: dict[str, Benchmark] = {
    "dpmhbp_sweeps": make_dpmhbp_sweeps,
    "hbp_sweeps": make_hbp_sweeps,
    "crp_partition": make_crp_partition,
    "empirical_auc": make_empirical_auc,
    "es_generation": make_es_generation,
    "run_journal": make_run_journal,
    "telemetry_noop": make_telemetry_noop,
    "health_noop": make_health_noop,
}
