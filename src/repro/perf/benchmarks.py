"""The sampler benchmarks (plus the run-journal overhead probe), as plain callables.

The five sampler workloads mirror ``benchmarks/test_perf_samplers.py``
workload-for-workload — same sizes, same seeds — but need no
pytest-benchmark, so the regression harness (``python -m repro.perf``) can
run them in bare CI and write comparable medians into ``BENCH_<rev>.json``
snapshots. ``run_journal`` times a full checkpoint round-trip so journal
overhead is held inside the same bench-compare budget as the samplers.

Each ``make_*`` factory performs its setup (data generation) once and
returns the zero-argument callable to be timed, keeping setup cost out of
the measurement.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..bayes.crp import sample_partition
from ..core.dpmhbp import DPMHBP
from ..core.hbp import fit_hbp
from ..core.ranking.evolutionary import EvolutionStrategy
from ..core.ranking.objective import empirical_auc

Benchmark = Callable[[], Callable[[], Any]]


def _failure_matrix(n: int = 2000, years: int = 11) -> np.ndarray:
    rng = np.random.default_rng(0)
    p = rng.choice([0.001, 0.01, 0.05], size=n, p=[0.7, 0.2, 0.1])
    return (rng.random((n, years)) < p[:, None]).astype(np.int8)


def make_dpmhbp_sweeps() -> Callable[[], Any]:
    """Five DPMHBP sweeps over 2k segments (includes CRP reseating)."""
    failures = _failure_matrix()
    features = np.random.default_rng(1).standard_normal((failures.shape[0], 20))
    return lambda: DPMHBP(n_sweeps=5, burn_in=1, seed=0).fit(failures, features)


def make_hbp_sweeps() -> Callable[[], Any]:
    """Fifty HBP sweeps over 2k units with 8 groups."""
    failures = _failure_matrix()
    groups = np.arange(failures.shape[0]) % 8
    return lambda: fit_hbp(failures, groups, n_sweeps=50, burn_in=10, seed=0)


def make_crp_partition() -> Callable[[], Any]:
    """Sequential CRP seating of 5k customers."""

    def run() -> np.ndarray:
        return sample_partition(5000, 3.0, np.random.default_rng(0))

    return run


def make_empirical_auc() -> Callable[[], Any]:
    """Exact AUC on 100k scores (rank-sum path)."""
    rng = np.random.default_rng(0)
    scores = rng.standard_normal(100_000)
    labels = (rng.random(100_000) < 0.01).astype(float)
    labels[0] = 1.0
    return lambda: empirical_auc(scores, labels)


def make_es_generation() -> Callable[[], Any]:
    """One ES generation (40 evaluations) on a 30-dim AUC-like objective."""
    rng = np.random.default_rng(0)
    X = rng.standard_normal((2000, 30))
    y = (rng.random(2000) < 0.05).astype(float)
    y[0] = 1.0

    def run():
        es = EvolutionStrategy(generations=1, population=40, seed=0)
        return es.maximise(lambda w: empirical_auc(X @ w, y), dim=30)

    return run


def make_run_journal() -> Callable[[], Any]:
    """Checkpoint round-trip: save + validate + load 6 cells of 20k-pipe scores.

    Bounds the per-cell journal overhead (npz serialisation, SHA-256
    checksum, atomic rename, validated reload) that every journalled grid
    pays on top of the model fits.
    """
    import tempfile

    from ..eval.experiment import ModelEvaluation, RegionRun
    from ..eval.metrics import empirical_auc as exact_auc
    from ..runs import CellSpec, RunJournal

    rng = np.random.default_rng(0)
    n_pipes = 20_000
    labels = (rng.random(n_pipes) < 0.01).astype(float)
    lengths = rng.uniform(10.0, 500.0, n_pipes)
    cells = []
    for repeat in range(6):
        run = RegionRun(region="A", seed=repeat, labels=labels, pipe_lengths=lengths)
        for model in ("DPMHBP", "HBP", "Cox", "SVM", "Weibull", "AUC-Rank"):
            scores = rng.standard_normal(n_pipes)
            run.evaluations[model] = ModelEvaluation(
                model_name=model,
                scores=scores,
                auc=exact_auc(scores, labels),
                auc_budget_permyriad=0.0,
            )
        cells.append((CellSpec(region="A", repeat=repeat, seed=repeat), run))
    tmp = tempfile.mkdtemp(prefix="repro-bench-journal-")
    journal = RunJournal.create(tmp, {"bench": "run_journal"})

    def run_roundtrip() -> int:
        for spec, cell_run in cells:
            journal.save_cell(spec, cell_run)
        loaded = journal.load_completed([spec for spec, _ in cells])
        return len(loaded)

    return run_roundtrip


def _scaling_worker(task: "tuple[Any, int]") -> float:
    """Light reduction over one row of a shared bundle (new data plane).

    Module-level so process pools can pickle it. The handle travels in the
    task tuple — a few hundred bytes — and the arrays are resolved as
    read-only zero-copy views on the worker side.
    """
    from ..parallel import shm

    handle, i = task
    arrays = shm.resolve_bundle(handle)
    x = arrays["x"]
    return float(x[i % x.shape[0]].sum())


def _percall_worker(task: "tuple[np.ndarray, int]") -> float:
    """The pre-PR shape of the same work: the full array pickled per task."""
    x, i = task
    return float(x[i % x.shape[0]].sum())


_SCALING_SHAPE = (8, 75_000)  # ~4.8 MB of float64 — a generated-region-sized payload
_SCALING_MAPS = 6  # successive grids/chain fits in one process
_SCALING_TASKS = 8  # fan-out width per map


def make_parallel_scaling() -> Callable[[], Any]:
    """Six 8-task process-pool maps through the persistent pool + shm plane.

    Models the run_comparison shape: one parent publishing a large frozen
    array bundle once, then repeatedly fanning light per-cell work across
    a process pool. The persistent pool is warmed in setup (exactly what
    a real second map call sees) and each task ships only a handle, so
    the measurement isolates the steady-state dispatch cost the PR
    optimises. Compare against ``parallel_scaling_percall``.
    """
    from ..parallel import ExecutorConfig, parallel_map
    from ..parallel import shm

    config = ExecutorConfig(mode="processes", jobs=2)
    rng = np.random.default_rng(0)
    bundle = shm.publish_bundle(
        {"x": rng.standard_normal(_SCALING_SHAPE)}, config=config
    )
    tasks = [(bundle, i) for i in range(_SCALING_TASKS)]
    parallel_map(_scaling_worker, tasks, config, chunksize=1)  # warm the pool

    def run() -> float:
        total = 0.0
        for _ in range(_SCALING_MAPS):
            total += sum(parallel_map(_scaling_worker, tasks, config, chunksize=1))
        return total

    return run


def make_parallel_scaling_percall() -> Callable[[], Any]:
    """The pre-PR baseline for ``parallel_scaling``: per-call pools, pickled arrays.

    Same workload, same results, but each map spawns (and tears down) a
    fresh ``ProcessPoolExecutor`` and every task pickles the full array —
    exactly what ``parallel_map`` did before the persistent-pool and
    shared-memory data plane landed. The BENCH snapshot ratio between the
    two is the PR's headline win.
    """
    from concurrent.futures import ProcessPoolExecutor

    rng = np.random.default_rng(0)
    x = rng.standard_normal(_SCALING_SHAPE)
    tasks = [(x, i) for i in range(_SCALING_TASKS)]

    def run() -> float:
        total = 0.0
        for _ in range(_SCALING_MAPS):
            with ProcessPoolExecutor(max_workers=2) as pool:
                total += sum(pool.map(_percall_worker, tasks, chunksize=1))
        return total

    return run


def make_shm_roundtrip() -> Callable[[], Any]:
    """Publish + resolve + release one region-sized bundle through shared memory.

    Bounds the fixed cost of the data plane itself (segment creation,
    aligned copy-in, view reconstruction, unlink) so it stays negligible
    next to the pickling it replaces.
    """
    from ..parallel import ExecutorConfig
    from ..parallel import shm

    config = ExecutorConfig(mode="processes", jobs=2)
    rng = np.random.default_rng(0)
    arrays = {
        "failures": (rng.random((20_000, 11)) < 0.01).astype(np.int8),
        "features": rng.standard_normal((20_000, 20)),
        "lengths": rng.uniform(10.0, 500.0, 20_000),
    }

    def run() -> float:
        handle = shm.publish_bundle(arrays, config=config)
        try:
            views = shm.resolve_bundle(handle)
            return float(views["features"][0, 0])
        finally:
            shm.release(handle)

    return run


def make_telemetry_noop() -> Callable[[], Any]:
    """200k disabled span+counter calls — the cost instrumentation leaves behind.

    Telemetry lives permanently inside sweep loops and worker envelopes,
    so the *disabled* path must stay a near-free attribute check. This
    probe times it directly; any accidental work on the no-op path (a
    dict lookup, an allocation per call) shows up here long before it is
    visible inside ``dpmhbp_sweeps``.
    """
    from .. import telemetry

    def run() -> int:
        telemetry.disable()
        noop_span = telemetry.span
        noop_count = telemetry.count
        for _ in range(200_000):
            with noop_span("hot"):
                noop_count("iterations")
        return 0

    return run


def make_health_noop() -> Callable[[], Any]:
    """50k unmonitored Gibbs sweeps — the cost the health hook leaves behind.

    The :class:`~repro.inference.gibbs.GibbsSampler` sweep loop gained a
    per-sweep monitor hook; with ``monitor=None`` (the default) that hook
    must stay one ``None`` check, not a scalars-dict build. This probe
    times a trivial one-block sampler so any accidental work on the
    unmonitored path shows up here, mirroring ``telemetry_noop``.
    """
    from ..inference.gibbs import GibbsSampler

    def run() -> int:
        sampler = GibbsSampler(state={"x": 0.0}, rng=np.random.default_rng(0))
        sampler.add_block("noop", lambda state, rng: {"accept": 1.0})
        sampler.run(50_000)
        return 0

    return run


#: Registry consumed by ``repro.perf.run_benchmarks`` — name → factory.
BENCHMARKS: dict[str, Benchmark] = {
    "dpmhbp_sweeps": make_dpmhbp_sweeps,
    "hbp_sweeps": make_hbp_sweeps,
    "crp_partition": make_crp_partition,
    "empirical_auc": make_empirical_auc,
    "es_generation": make_es_generation,
    "run_journal": make_run_journal,
    "parallel_scaling": make_parallel_scaling,
    "parallel_scaling_percall": make_parallel_scaling_percall,
    "shm_roundtrip": make_shm_roundtrip,
    "telemetry_noop": make_telemetry_noop,
    "health_noop": make_health_noop,
}
