"""Benchmark-regression harness: timed snapshots of the sampler hot paths.

The perf trajectory of this repo is a tracked artifact. ``make
bench-save`` runs the five sampler benchmarks (mirroring
``benchmarks/test_perf_samplers.py``) and writes their per-benchmark
medians to ``BENCH_<rev>.json``; ``make bench-compare`` re-times the same
workloads and fails when any median regresses more than 25% against the
committed snapshot. ``make perfcheck`` is the cheap tier-1 smoke variant.

No pytest-benchmark dependency: timing is a plain ``perf_counter`` median
over a few rounds, which is exactly what the regression gate needs.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from .benchmarks import BENCHMARKS

__all__ = [
    "BENCHMARKS",
    "DEFAULT_THRESHOLD",
    "BenchmarkTiming",
    "Regression",
    "time_callable",
    "run_benchmarks",
    "current_rev",
    "snapshot_path",
    "save_snapshot",
    "load_snapshot",
    "latest_snapshot",
    "compare_to_baseline",
]

#: Default regression gate: fail when a median slows down by more than this.
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class BenchmarkTiming:
    """Timing of one benchmark: all rounds plus the median the gate uses."""

    name: str
    median_s: float
    times_s: tuple[float, ...]


@dataclass(frozen=True)
class Regression:
    """One benchmark that slowed beyond the threshold vs. the baseline."""

    name: str
    baseline_s: float
    current_s: float

    @property
    def slowdown(self) -> float:
        """Fractional slowdown, e.g. 0.4 for 40% slower than baseline."""
        return self.current_s / self.baseline_s - 1.0


def time_callable(fn: Callable[[], Any], rounds: int = 3) -> list[float]:
    """Wall-clock seconds of ``rounds`` calls of ``fn`` (no warmup round)."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def run_benchmarks(
    names: list[str] | None = None, rounds: int = 3
) -> dict[str, BenchmarkTiming]:
    """Set up and time the named benchmarks (all five by default)."""
    names = list(BENCHMARKS) if names is None else names
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmarks {unknown}; available: {list(BENCHMARKS)}")
    results: dict[str, BenchmarkTiming] = {}
    for name in names:
        fn = BENCHMARKS[name]()
        times = time_callable(fn, rounds=rounds)
        results[name] = BenchmarkTiming(
            name=name, median_s=_median(times), times_s=tuple(times)
        )
    return results


def current_rev() -> str:
    """Short git revision of the working tree, or ``"worktree"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        )
        return out.stdout.strip() or "worktree"
    except (OSError, subprocess.SubprocessError):
        return "worktree"


def snapshot_path(directory: Path | str = ".", rev: str | None = None) -> Path:
    """``BENCH_<rev>.json`` inside ``directory``."""
    return Path(directory) / f"BENCH_{rev or current_rev()}.json"


def save_snapshot(
    directory: Path | str = ".",
    rev: str | None = None,
    rounds: int = 3,
    names: list[str] | None = None,
) -> Path:
    """Run the benchmarks and write their medians to ``BENCH_<rev>.json``."""
    results = run_benchmarks(names=names, rounds=rounds)
    rev = rev or current_rev()
    payload = {
        "rev": rev,
        "rounds": rounds,
        "medians_s": {name: t.median_s for name, t in results.items()},
        "times_s": {name: list(t.times_s) for name, t in results.items()},
    }
    path = snapshot_path(directory, rev)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Path | str) -> dict:
    """Read a ``BENCH_*.json`` snapshot."""
    payload = json.loads(Path(path).read_text())
    if "medians_s" not in payload:
        raise ValueError(f"{path} is not a benchmark snapshot (no 'medians_s' key)")
    return payload


def latest_snapshot(directory: Path | str = ".") -> Path | None:
    """Most recently modified ``BENCH_*.json`` in ``directory``, if any."""
    candidates = sorted(
        Path(directory).glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime
    )
    return candidates[-1] if candidates else None


def compare_to_baseline(
    baseline: dict,
    current: dict[str, BenchmarkTiming],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Regression]:
    """Benchmarks whose current median exceeds baseline by > ``threshold``.

    Benchmarks present on only one side are ignored (new benchmarks can't
    regress; retired ones can't be re-timed).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    regressions = []
    for name, baseline_s in baseline["medians_s"].items():
        timing = current.get(name)
        if timing is None or baseline_s <= 0:
            continue
        if timing.median_s > baseline_s * (1.0 + threshold):
            regressions.append(
                Regression(name=name, baseline_s=baseline_s, current_s=timing.median_s)
            )
    return regressions
