"""``python -m repro.perf`` — the benchmark-regression command line.

Subcommands
-----------
``save``     time the five sampler benchmarks, write ``BENCH_<rev>.json``
``compare``  re-time them and fail (exit 1) on >25% median regressions
             against a baseline snapshot (latest ``BENCH_*.json`` by default)
``smoke``    fast tier-1 sanity check: one DPMHBP sweep and one exact-AUC
             call must finish under a generous ceiling — catches
             catastrophic slowdowns without pytest-benchmark

Wired to ``make bench-save``, ``make bench-compare`` and ``make perfcheck``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import (
    DEFAULT_THRESHOLD,
    compare_to_baseline,
    latest_snapshot,
    load_snapshot,
    run_benchmarks,
    save_snapshot,
)


def _cmd_save(args: argparse.Namespace) -> int:
    path = save_snapshot(directory=args.dir, rev=args.rev, rounds=args.rounds)
    payload = load_snapshot(path)
    for name, median in sorted(payload["medians_s"].items()):
        print(f"{name:<20s} {1000 * median:8.1f} ms")
    print(f"wrote {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline_path = args.baseline or latest_snapshot(args.dir)
    if baseline_path is None:
        print(f"no BENCH_*.json baseline found in {Path(args.dir).resolve()}", file=sys.stderr)
        return 2
    baseline = load_snapshot(baseline_path)
    current = run_benchmarks(names=list(baseline["medians_s"]), rounds=args.rounds)
    print(f"baseline: {baseline_path} (rev {baseline.get('rev', '?')})")
    for name, baseline_s in sorted(baseline["medians_s"].items()):
        timing = current.get(name)
        if timing is None:
            continue
        change = 100.0 * (timing.median_s / baseline_s - 1.0)
        print(
            f"{name:<20s} {1000 * baseline_s:8.1f} ms -> {1000 * timing.median_s:8.1f} ms"
            f"  ({change:+6.1f}%)"
        )
    regressions = compare_to_baseline(baseline, current, threshold=args.threshold)
    if regressions:
        for reg in regressions:
            print(
                f"REGRESSION: {reg.name} is {100 * reg.slowdown:.1f}% slower "
                f"(limit {100 * args.threshold:.0f}%)",
                file=sys.stderr,
            )
        return 1
    print(f"ok: no benchmark regressed more than {100 * args.threshold:.0f}%")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    import numpy as np

    from ..core.dpmhbp import DPMHBP
    from ..core.ranking.objective import empirical_auc
    from ..parallel import parallel_map, resolve_executor
    from ..parallel import shm
    from .benchmarks import _scaling_worker, make_health_noop, make_telemetry_noop

    rng = np.random.default_rng(0)
    failures = (rng.random((500, 11)) < 0.02).astype(np.int8)
    features = rng.standard_normal((500, 10))
    scores = rng.standard_normal(100_000)
    labels = (rng.random(100_000) < 0.01).astype(float)
    labels[0] = 1.0

    def _fanout_check() -> None:
        config = resolve_executor()
        bundle = shm.publish_bundle(
            {"x": rng.standard_normal((8, 50_000))}, config=config
        )
        tasks = [(bundle, i) for i in range(8)]
        try:
            first = parallel_map(_scaling_worker, tasks, config, chunksize=1)
            second = parallel_map(_scaling_worker, tasks, config, chunksize=1)
        finally:
            shm.release(bundle)
        if first != second:
            raise AssertionError("parallel fan-out is not deterministic")
        if shm.active_segments():
            raise AssertionError("released bundle left shared-memory segments")

    checks = {
        "dpmhbp_one_sweep": lambda: DPMHBP(n_sweeps=1, burn_in=0, seed=0).fit(
            failures, features
        ),
        "empirical_auc_100k": lambda: empirical_auc(scores, labels),
        # Disabled-telemetry overhead: 200k no-op span+counter calls must be
        # effectively free, or the permanent hot-path instrumentation is
        # taxing every sweep (see telemetry.recorder).
        "telemetry_noop_200k": make_telemetry_noop(),
        # Unmonitored-sweep overhead: the health hook with monitor=None
        # must stay one None check per sweep (see inference.gibbs).
        "health_noop_50k": make_health_noop(),
        # Fan-out sanity under whatever REPRO_EXECUTOR/REPRO_JOBS the CI
        # run sets: two maps through the (persistent, when processes-mode)
        # pool with a published bundle — exercises the shm data plane and
        # pool-reuse paths end to end, then asserts nothing leaked.
        "parallel_fanout": _fanout_check,
    }
    failed = False
    for name, fn in checks.items():
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        ok = elapsed <= args.ceiling
        failed = failed or not ok
        print(f"{name:<20s} {1000 * elapsed:8.1f} ms  (ceiling {args.ceiling:.1f} s)"
              f"  {'ok' if ok else 'TOO SLOW'}")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.perf", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("save", help="time the benchmarks and write BENCH_<rev>.json")
    p.add_argument("--dir", default=".", help="directory for the snapshot")
    p.add_argument("--rev", default=None, help="revision label (default: git short rev)")
    p.add_argument("--rounds", type=int, default=3)
    p.set_defaults(func=_cmd_save)

    p = sub.add_parser("compare", help="re-time and fail on >25%% regressions")
    p.add_argument("baseline", nargs="?", default=None, help="baseline snapshot path")
    p.add_argument("--dir", default=".", help="where to look for the latest baseline")
    p.add_argument("--rounds", type=int, default=3)
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("smoke", help="fast perf sanity check for tier-1 CI")
    p.add_argument("--ceiling", type=float, default=5.0, help="per-check seconds limit")
    p.set_defaults(func=_cmd_smoke)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
