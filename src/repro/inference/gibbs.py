"""Metropolis-within-Gibbs driver.

The DPMHBP posterior has no joint conjugacy (the extra HBP hierarchy breaks
it), so the paper's inference alternates exact Gibbs blocks with Metropolis
updates for the non-conjugate ones. This module supplies a small, explicit
driver for that pattern: register named block updaters, then run sweeps
with burn-in bookkeeping and trace recording.

A *block updater* is a callable ``update(state, rng) -> dict`` that mutates
(or replaces entries of) the shared state dict in place and returns a dict
of scalar diagnostics (e.g. acceptance indicators) to aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from .. import telemetry
from .chains import Trace

if TYPE_CHECKING:  # avoid importing the monitor stack at module load
    from ..monitor.health import ChainHealth

BlockUpdater = Callable[[dict, np.random.Generator], Mapping[str, float]]
TraceFn = Callable[[dict], Mapping[str, float | np.ndarray]]


@dataclass
class GibbsSampler:
    """Composable Metropolis-within-Gibbs sweep runner.

    Parameters
    ----------
    state:
        Mutable dict of model state shared by all blocks.
    rng:
        Source of randomness for every block.
    trace_fn:
        Maps the state to the quantities recorded after each sweep.
    monitor:
        Optional :class:`~repro.monitor.ChainHealth`; every sweep's block
        diagnostics and scalar trace quantities are recorded into it
        (chain ``monitor_chain``) for an end-of-run convergence verdict.
    """

    state: dict
    rng: np.random.Generator
    trace_fn: TraceFn | None = None
    monitor: "ChainHealth | None" = None
    monitor_chain: int = 0
    _blocks: list[tuple[str, BlockUpdater]] = field(default_factory=list)
    trace: Trace = field(default_factory=Trace)
    diagnostics: dict[str, list[float]] = field(default_factory=dict)

    def add_block(self, name: str, updater: BlockUpdater) -> "GibbsSampler":
        """Register a block; blocks run in registration order each sweep."""
        if any(existing == name for existing, _ in self._blocks):
            raise ValueError(f"duplicate block name {name!r}")
        self._blocks.append((name, updater))
        return self

    def sweep(self) -> None:
        """One full pass over all blocks, recording diagnostics and trace."""
        if not self._blocks:
            raise RuntimeError("no blocks registered")
        # Scalars are only assembled when a monitor is attached: the
        # unmonitored sweep path must stay as cheap as before the health
        # layer existed (the perf smoke's `health_noop` pins this).
        monitor = self.monitor
        scalars: dict[str, float] | None = {} if monitor is not None else None
        for name, updater in self._blocks:
            stats = updater(self.state, self.rng)
            for key, value in stats.items():
                v = float(value)
                self.diagnostics.setdefault(f"{name}.{key}", []).append(v)
                if scalars is not None:
                    scalars[f"{name}.{key}"] = v
        if self.trace_fn is not None:
            quantities = self.trace_fn(self.state)
            self.trace.record(**quantities)
            if scalars is not None:
                for key, value in quantities.items():
                    arr = np.asarray(value)
                    if arr.ndim == 0:
                        scalars[key] = float(arr)
        if monitor is not None:
            monitor.on_sweep(scalars, chain=self.monitor_chain)
        telemetry.count("gibbs.sweeps")

    def run(self, n_sweeps: int, callback: Callable[[int, dict], None] | None = None) -> Trace:
        """Run ``n_sweeps`` sweeps; ``callback(i, state)`` fires after each."""
        if n_sweeps < 0:
            raise ValueError("n_sweeps must be non-negative")
        with telemetry.span("gibbs.run", n_sweeps=n_sweeps):
            for i in range(n_sweeps):
                self.sweep()
                if callback is not None:
                    callback(i, self.state)
        return self.trace

    def diagnostic_mean(self, key: str) -> float:
        """Mean of a recorded diagnostic (e.g. ``"groups.accept"``)."""
        values = self.diagnostics.get(key)
        if not values:
            raise KeyError(f"no diagnostic named {key!r}")
        return float(np.mean(values))
