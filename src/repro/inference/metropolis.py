"""Random-walk Metropolis steps with Robbins–Monro step-size adaptation.

These are the building blocks the DPMHBP sampler composes: scalar
Metropolis updates for group failure rates (on the logit scale so the
proposal respects the (0, 1) support) with acceptance-rate tracking and
optional adaptation toward a target acceptance probability during burn-in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

#: Classic optimal acceptance rate for 1-D random-walk Metropolis.
TARGET_ACCEPT_1D = 0.44


def logit(p: float) -> float:
    """Log-odds transform mapping ``(0, 1)`` to the real line."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0, 1), got {p}")
    return math.log(p / (1.0 - p))


def expit(x: float) -> float:
    """Inverse logit, numerically safe for large ``|x|``."""
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


@dataclass
class AdaptiveScale:
    """Robbins–Monro adaptation of a proposal log-scale.

    After each step call :meth:`update` with whether the proposal was
    accepted; the log step size moves toward the target acceptance rate
    with a decaying gain, so adaptation vanishes asymptotically (keeping
    the chain valid when adaptation is frozen after burn-in).
    """

    scale: float = 0.5
    target_accept: float = TARGET_ACCEPT_1D
    gain_decay: float = 0.6
    _step: int = field(default=0, repr=False)
    frozen: bool = False

    def update(self, accepted: bool) -> None:
        if self.frozen:
            return
        self._step += 1
        gain = self._step ** (-self.gain_decay)
        self.scale = float(
            np.exp(np.log(self.scale) + gain * ((1.0 if accepted else 0.0) - self.target_accept))
        )
        self.scale = min(max(self.scale, 1e-4), 1e4)

    def freeze(self) -> None:
        """Stop adapting (call at the end of burn-in)."""
        self.frozen = True


@dataclass
class AcceptanceTracker:
    """Running acceptance-rate statistics for one move type."""

    proposed: int = 0
    accepted: int = 0

    def record(self, accepted: bool) -> None:
        self.proposed += 1
        self.accepted += int(accepted)

    @property
    def rate(self) -> float:
        """Fraction of proposals accepted (0 when none proposed yet)."""
        return self.accepted / self.proposed if self.proposed else 0.0


def metropolis_step(
    current: float,
    log_target: Callable[[float], float],
    scale: float,
    rng: np.random.Generator,
    current_logp: float | None = None,
) -> tuple[float, float, bool]:
    """One Gaussian random-walk Metropolis step on an unconstrained scalar.

    Returns ``(new_value, new_logp, accepted)``. Pass ``current_logp`` to
    avoid re-evaluating the target at the current point.
    """
    if current_logp is None:
        current_logp = log_target(current)
    proposal = current + scale * rng.standard_normal()
    proposal_logp = log_target(proposal)
    if math.log(rng.random()) < proposal_logp - current_logp:
        return proposal, proposal_logp, True
    return current, current_logp, False


def metropolis_probability_step(
    current_p: float,
    log_target: Callable[[float], float],
    scale: float,
    rng: np.random.Generator,
) -> tuple[float, bool]:
    """Metropolis step for a probability parameter via a logit random walk.

    ``log_target`` takes the probability itself. The Jacobian of the logit
    transform, ``log p + log(1-p)``, is included so the chain targets the
    stated density on the probability scale.
    """

    def transformed(x: float) -> float:
        p = expit(x)
        p = min(max(p, 1e-12), 1.0 - 1e-12)
        return log_target(p) + math.log(p) + math.log1p(-p)

    x = logit(min(max(current_p, 1e-12), 1.0 - 1e-12))
    new_x, _, accepted = metropolis_step(x, transformed, scale, rng)
    return expit(new_x), accepted
