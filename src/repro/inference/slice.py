"""Slice sampling (Neal 2003) — an alternative non-conjugate update.

The Metropolis-within-Gibbs blocks for the group rates ``q_k`` need a
step-size; slice sampling removes that tuning knob entirely: sample a
height under the density, then shrink a bracket until a point inside the
slice is found. Provided both as a generic scalar sampler and as a
drop-in probability-parameter update mirroring
:func:`repro.inference.metropolis.metropolis_probability_step`.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .metropolis import expit, logit


def slice_sample_step(
    current: float,
    log_target: Callable[[float], float],
    rng: np.random.Generator,
    width: float = 1.0,
    max_steps_out: int = 50,
    max_shrinks: int = 200,
) -> float:
    """One univariate slice-sampling update with stepping-out.

    Returns a new point exactly distributed under ``log_target``'s
    conditional (no accept/reject waste). ``width`` is only an initial
    bracket size — the result does not depend on it asymptotically.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    logp = log_target(current)
    # Vertical slice: log u = logp - Exp(1).
    log_height = logp - rng.exponential(1.0)

    # Step out a bracket [lo, hi] containing the slice.
    lo = current - width * rng.random()
    hi = lo + width
    steps = max_steps_out
    while steps > 0 and log_target(lo) > log_height:
        lo -= width
        steps -= 1
    steps = max_steps_out
    while steps > 0 and log_target(hi) > log_height:
        hi += width
        steps -= 1

    # Shrink until a draw lands inside the slice.
    for _ in range(max_shrinks):
        proposal = lo + (hi - lo) * rng.random()
        if log_target(proposal) > log_height:
            return proposal
        if proposal < current:
            lo = proposal
        else:
            hi = proposal
    # Pathological target; fall back to the current point (still valid MCMC).
    return current


def slice_probability_step(
    current_p: float,
    log_target: Callable[[float], float],
    rng: np.random.Generator,
    width: float = 2.0,
) -> float:
    """Slice update of a probability parameter on the logit scale.

    ``log_target`` takes the probability itself; the logit Jacobian is
    applied internally so the chain targets the stated density.
    """

    def transformed(x: float) -> float:
        p = expit(x)
        p = min(max(p, 1e-12), 1.0 - 1e-12)
        return log_target(p) + math.log(p) + math.log1p(-p)

    x = logit(min(max(current_p, 1e-12), 1.0 - 1e-12))
    return expit(slice_sample_step(x, transformed, rng, width=width))
