"""Trace storage for MCMC runs: burn-in, thinning, and summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Trace:
    """Samples of named quantities collected across MCMC iterations.

    Quantities may be scalars or fixed-shape arrays; ragged quantities
    (e.g. per-cluster parameters whose count varies) should be reduced to
    fixed-shape summaries before recording.
    """

    _samples: dict[str, list[np.ndarray]] = field(default_factory=dict)

    def record(self, **quantities: float | np.ndarray) -> None:
        """Append one iteration's values."""
        for name, value in quantities.items():
            self._samples.setdefault(name, []).append(np.asarray(value, dtype=float))

    def __contains__(self, name: str) -> bool:
        return name in self._samples

    def names(self) -> list[str]:
        return list(self._samples)

    def __len__(self) -> int:
        if not self._samples:
            return 0
        return len(next(iter(self._samples.values())))

    def get(self, name: str, burn_in: int = 0, thin: int = 1) -> np.ndarray:
        """Stacked samples of ``name`` after dropping ``burn_in`` and thinning."""
        if name not in self._samples:
            raise KeyError(f"no quantity named {name!r} recorded")
        if burn_in < 0 or thin < 1:
            raise ValueError("burn_in must be >= 0 and thin >= 1")
        values = self._samples[name][burn_in::thin]
        if not values:
            return np.zeros((0,))
        return np.stack(values)

    def mean(self, name: str, burn_in: int = 0, thin: int = 1) -> np.ndarray | float:
        """Posterior-mean estimate of ``name`` from the retained samples."""
        samples = self.get(name, burn_in=burn_in, thin=thin)
        if samples.size == 0:
            raise ValueError(f"no samples of {name!r} retained after burn-in/thinning")
        mean = samples.mean(axis=0)
        return float(mean) if mean.ndim == 0 else mean

    def quantile(
        self, name: str, q: float | list[float], burn_in: int = 0, thin: int = 1
    ) -> np.ndarray:
        """Posterior quantiles of ``name``."""
        samples = self.get(name, burn_in=burn_in, thin=thin)
        if samples.size == 0:
            raise ValueError(f"no samples of {name!r} retained after burn-in/thinning")
        return np.quantile(samples, q, axis=0)
