"""Trace storage for MCMC runs: burn-in, thinning, summaries, checkpoints."""

from __future__ import annotations

import io
import os
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


@dataclass
class Trace:
    """Samples of named quantities collected across MCMC iterations.

    Quantities may be scalars or fixed-shape arrays; ragged quantities
    (e.g. per-cluster parameters whose count varies) should be reduced to
    fixed-shape summaries before recording.
    """

    _samples: dict[str, list[np.ndarray]] = field(default_factory=dict)

    def record(self, **quantities: float | np.ndarray) -> None:
        """Append one iteration's values."""
        for name, value in quantities.items():
            self._samples.setdefault(name, []).append(np.asarray(value, dtype=float))

    def extend(self, name: str, values: np.ndarray) -> None:
        """Append many iterations of one *scalar* quantity at once.

        Bulk ingestion for whole per-sweep series (e.g. a chain's cluster
        count trace being pooled by the health monitor) without a Python
        call per sample.
        """
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"extend takes a 1-D series, got shape {arr.shape}")
        self._samples.setdefault(name, []).extend(np.asarray(v) for v in arr)

    def scalar_names(self) -> list[str]:
        """Names whose recorded samples are scalars (health-diagnosable)."""
        return [
            name
            for name, samples in self._samples.items()
            if samples and samples[0].ndim == 0
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._samples

    def names(self) -> list[str]:
        return list(self._samples)

    def __len__(self) -> int:
        if not self._samples:
            return 0
        return len(next(iter(self._samples.values())))

    def get(self, name: str, burn_in: int = 0, thin: int = 1) -> np.ndarray:
        """Stacked samples of ``name`` after dropping ``burn_in`` and thinning."""
        if name not in self._samples:
            raise KeyError(f"no quantity named {name!r} recorded")
        if burn_in < 0 or thin < 1:
            raise ValueError("burn_in must be >= 0 and thin >= 1")
        values = self._samples[name][burn_in::thin]
        if not values:
            return np.zeros((0,))
        return np.stack(values)

    def mean(self, name: str, burn_in: int = 0, thin: int = 1) -> np.ndarray | float:
        """Posterior-mean estimate of ``name`` from the retained samples."""
        samples = self.get(name, burn_in=burn_in, thin=thin)
        if samples.size == 0:
            raise ValueError(f"no samples of {name!r} retained after burn-in/thinning")
        mean = samples.mean(axis=0)
        return float(mean) if mean.ndim == 0 else mean

    def quantile(
        self, name: str, q: float | list[float], burn_in: int = 0, thin: int = 1
    ) -> np.ndarray:
        """Posterior quantiles of ``name``."""
        samples = self.get(name, burn_in=burn_in, thin=thin)
        if samples.size == 0:
            raise ValueError(f"no samples of {name!r} retained after burn-in/thinning")
        return np.quantile(samples, q, axis=0)

    def save(self, path: str | Path) -> Path:
        """Checkpoint the trace to an ``.npz``, atomically.

        Each quantity is stored as its stacked sample array (quantities
        are fixed-shape per the class contract). The write goes through a
        same-directory temp file + ``os.replace``, so an interrupted save
        never leaves a torn checkpoint for :meth:`load` to trip on.
        """
        path = Path(path)
        arrays = {name: self.get(name) for name in self.names()}
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buffer.getvalue())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Restore a trace checkpoint written by :meth:`save`.

        Raises ``ValueError`` on unreadable/corrupt files so callers can
        fall back to re-running the chain.
        """
        try:
            with np.load(Path(path)) as arrays:
                trace = cls()
                for name in arrays.files:
                    stacked = arrays[name]
                    trace._samples[name] = [np.asarray(row) for row in stacked]
                return trace
        except (OSError, EOFError, ValueError, zipfile.BadZipFile) as exc:
            raise ValueError(f"corrupt trace checkpoint {path}: {exc}") from exc
