"""From-scratch MCMC substrate: Metropolis steps, Gibbs driver, diagnostics."""

from .chains import Trace
from .diagnostics import (
    autocorrelation,
    effective_sample_size,
    geweke_zscore,
    split_rhat,
    summarise_chain,
)
from .gibbs import GibbsSampler
from .metropolis import (
    TARGET_ACCEPT_1D,
    AcceptanceTracker,
    AdaptiveScale,
    expit,
    logit,
    metropolis_probability_step,
    metropolis_step,
)
from .slice import slice_probability_step, slice_sample_step

__all__ = [
    "Trace",
    "autocorrelation",
    "effective_sample_size",
    "geweke_zscore",
    "split_rhat",
    "summarise_chain",
    "GibbsSampler",
    "TARGET_ACCEPT_1D",
    "AcceptanceTracker",
    "AdaptiveScale",
    "expit",
    "logit",
    "metropolis_probability_step",
    "metropolis_step",
    "slice_probability_step",
    "slice_sample_step",
]
