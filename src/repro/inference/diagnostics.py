"""MCMC convergence diagnostics: ESS, Geweke z-score, split-R̂.

Implemented from scratch on top of numpy so the sampler stack has no
external PPL dependency. All functions take a 1-D array of (post burn-in)
samples of a scalar quantity, except :func:`split_rhat`, which accepts
``(n_chains, n_samples)``.

Degenerate inputs — constant (or numerically constant) chains — have no
well-defined diagnostic: every estimator here returns ``nan`` for them,
with the defined meaning **"undiagnosable"**. Callers (the health
monitor in :mod:`repro.monitor`) treat ``nan`` as "cannot certify", never
as "converged"; none of these functions raise on a constant chain.
"""

from __future__ import annotations

import numpy as np


def autocorrelation(x: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Sample autocorrelation function via FFT, lags ``0..max_lag``."""
    x = np.asarray(x, dtype=float)
    n = x.size
    if n < 2:
        raise ValueError("need at least two samples")
    if max_lag is None:
        max_lag = n - 1
    max_lag = min(max_lag, n - 1)
    centred = x - x.mean()
    # Zero-pad to the next power of two for FFT efficiency.
    size = 1 << int(np.ceil(np.log2(2 * n)))
    f = np.fft.rfft(centred, size)
    acov = np.fft.irfft(f * np.conjugate(f))[: max_lag + 1].real / n
    if acov[0] <= 0:
        return np.concatenate([[1.0], np.zeros(max_lag)])
    return acov / acov[0]


def effective_sample_size(x: np.ndarray) -> float:
    """ESS using Geyer's initial positive sequence truncation.

    Sums autocorrelations over pairs ``ρ(2t) + ρ(2t+1)`` while the pair sum
    stays positive, which is the standard conservative estimator. A
    constant chain has no information about mixing, so its ESS is ``nan``
    ("undiagnosable") rather than the flattering ``n``.
    """
    x = np.asarray(x, dtype=float)
    n = x.size
    if n >= 2 and np.ptp(x) == 0.0:
        return float("nan")
    if n < 4:
        return float(n)
    rho = autocorrelation(x)
    tau = 1.0
    t = 1
    while t + 1 < rho.size:
        pair = rho[t] + rho[t + 1]
        if pair < 0:
            break
        tau += 2.0 * pair
        t += 2
    return float(min(n, n / max(tau, 1e-12)))


def geweke_zscore(x: np.ndarray, first: float = 0.1, last: float = 0.5) -> float:
    """Geweke diagnostic: z-score comparing early vs late chain means.

    ``|z|`` above ~2 suggests the retained chain has not converged. The
    two windows' variances are estimated with the ESS-corrected standard
    error, making the score robust to autocorrelation.

    Constant (or numerically constant) windows leave the standard error
    zero or undefined; the score is then ``nan`` ("undiagnosable") rather
    than a divide-by-zero or a false-confidence ``0.0``.
    """
    x = np.asarray(x, dtype=float)
    n = x.size
    if n < 20:
        raise ValueError("need at least 20 samples for a Geweke score")
    if not (0 < first < 1 and 0 < last < 1 and first + last <= 1):
        raise ValueError("window fractions must be in (0, 1) and sum to <= 1")
    a = x[: int(first * n)]
    b = x[n - int(last * n):]
    with np.errstate(divide="ignore", invalid="ignore"):
        ess_a = effective_sample_size(a)
        ess_b = effective_sample_size(b)
        if not (np.isfinite(ess_a) and np.isfinite(ess_b)):
            return float("nan")  # a window is constant: undiagnosable
        var_a = a.var(ddof=1) / max(ess_a, 1.0)
        var_b = b.var(ddof=1) / max(ess_b, 1.0)
        denom = np.sqrt(var_a + var_b)
        if denom == 0 or not np.isfinite(denom):
            return float("nan")
        z = float((a.mean() - b.mean()) / denom)
    return z if np.isfinite(z) else float("nan")


def split_rhat(chains: np.ndarray) -> float:
    """Split-R̂ (Gelman–Rubin with each chain halved).

    ``chains`` has shape ``(n_chains, n_samples)``; values near 1.0
    indicate the chains are mixing over the same distribution. A single
    chain is accepted (it is split into two half-chains).

    Odd-length chains drop their **last** sample before splitting, so the
    two half-chains have equal length (``n_samples // 2`` each); callers
    diagnosing very short chains should budget one extra sample. At least
    4 samples per chain are required for the halves to carry a variance.

    When the pooled within-half variance ``W`` is zero — every half-chain
    constant — the ratio is undefined and the result is ``nan``
    ("undiagnosable"): identical constant chains are *not* evidence of
    mixing, merely of a degenerate quantity.
    """
    chains = np.asarray(chains, dtype=float)
    if chains.ndim == 1:
        chains = chains[None, :]
    if chains.ndim != 2:
        raise ValueError(
            f"chains must be 1-D or (n_chains, n_samples), got shape {chains.shape}"
        )
    n_chains, n_samples = chains.shape
    if n_chains < 1:
        raise ValueError("need at least one chain")
    if n_samples < 4:
        raise ValueError(
            f"need at least 4 samples per chain for split-R̂, got {n_samples}"
        )
    half = n_samples // 2
    split = np.concatenate([chains[:, :half], chains[:, half : 2 * half]], axis=0)
    m, n = split.shape
    chain_means = split.mean(axis=1)
    chain_vars = split.var(axis=1, ddof=1)
    w = chain_vars.mean()
    b = n * chain_means.var(ddof=1)
    if w == 0 or not np.isfinite(w):
        return float("nan")  # constant half-chains: undiagnosable
    var_hat = (n - 1) / n * w + b / n
    rhat = float(np.sqrt(var_hat / w))
    return rhat if np.isfinite(rhat) else float("nan")


def summarise_chain(x: np.ndarray) -> dict[str, float]:
    """One-line numeric summary of a scalar chain.

    Degenerate (constant) chains carry their ``nan`` ESS through — the
    summary never raises, and ``nan`` keeps its "undiagnosable" meaning.
    """
    x = np.asarray(x, dtype=float)
    return {
        "mean": float(x.mean()),
        "sd": float(x.std(ddof=1)) if x.size > 1 else 0.0,
        "ess": effective_sample_size(x) if x.size >= 2 else float(x.size),
        "q05": float(np.quantile(x, 0.05)),
        "q95": float(np.quantile(x, 0.95)),
    }
