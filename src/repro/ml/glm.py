"""Generalised linear models fitted by iteratively reweighted least squares.

Two exponential-family workhorses used across the repo:

* :class:`LogisticRegression` — binary classification baseline and the
  smooth surrogate inside feature screening.
* :class:`PoissonRegression` — log-linear failure-count model; supplies the
  multiplicative covariate factor ``exp(bᵀz)`` that the Weibull NHPP and
  the Bayesian models apply (the paper applies features "multiplicatively,
  similar to the Cox proportional hazards model").

Both support L2 regularisation and an offset (log-exposure) term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .preprocessing import add_intercept


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


@dataclass
class LogisticRegression:
    """L2-regularised logistic regression via Newton–Raphson (IRLS)."""

    l2: float = 1e-4
    max_iter: int = 100
    tol: float = 1e-8
    fit_intercept: bool = True
    coef_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("labels must be binary 0/1")
        if self.fit_intercept:
            X = add_intercept(X)
        n, d = X.shape
        beta = np.zeros(d)
        reg = self.l2 * np.eye(d)
        if self.fit_intercept:
            reg[0, 0] = 0.0  # never shrink the intercept
        prev_ll = -np.inf
        for _ in range(self.max_iter):
            eta = X @ beta
            mu = np.clip(_sigmoid(eta), 1e-12, 1 - 1e-12)
            grad = X.T @ (y - mu) - self.l2 * _maybe_mask_intercept(beta, self.fit_intercept)
            w = mu * (1.0 - mu)
            hess = X.T @ (X * w[:, None]) + reg
            try:
                step = np.linalg.solve(hess, grad)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hess, grad, rcond=None)[0]
            beta = beta + step
            ll = float(y @ eta - np.sum(np.logaddexp(0.0, eta)))
            if abs(ll - prev_ll) < self.tol * (abs(prev_ll) + 1.0):
                break
            prev_ll = ll
        self.coef_ = beta
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        beta = self._require_fit()
        X = np.asarray(X, dtype=float)
        if self.fit_intercept:
            X = add_intercept(X)
        return X @ beta

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(y = 1 | x) for each row."""
        return _sigmoid(self.decision_function(X))

    def _require_fit(self) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model used before fit()")
        return self.coef_


@dataclass
class PoissonRegression:
    """L2-regularised Poisson log-linear model with optional exposure offset.

    ``E[y | x] = exposure · exp(βᵀx)``; fitted by Newton–Raphson with a
    step-halving line search on the penalised log likelihood.
    """

    l2: float = 1e-4
    max_iter: int = 100
    tol: float = 1e-8
    fit_intercept: bool = True
    coef_: np.ndarray | None = None

    def fit(
        self, X: np.ndarray, y: np.ndarray, exposure: np.ndarray | None = None
    ) -> "PoissonRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if np.any(y < 0):
            raise ValueError("counts must be non-negative")
        if exposure is not None and np.any(np.asarray(exposure) <= 0):
            raise ValueError("exposure must be positive")
        offset = np.zeros(len(y)) if exposure is None else np.log(np.asarray(exposure, float))
        if self.fit_intercept:
            X = add_intercept(X)
        n, d = X.shape
        beta = np.zeros(d)
        # A sensible intercept start: overall log rate.
        if self.fit_intercept:
            total_exposure = float(np.exp(offset).sum())
            beta[0] = np.log(max(y.sum(), 0.5) / total_exposure)
        reg = self.l2 * np.eye(d)
        if self.fit_intercept:
            reg[0, 0] = 0.0

        def penalised_ll(b: np.ndarray) -> float:
            eta = np.clip(X @ b + offset, -30, 30)
            pen = self.l2 * float(
                _maybe_mask_intercept(b, self.fit_intercept) @ b
            )
            return float(y @ eta - np.exp(eta).sum()) - 0.5 * pen

        current = penalised_ll(beta)
        for _ in range(self.max_iter):
            eta = np.clip(X @ beta + offset, -30, 30)
            mu = np.exp(eta)
            grad = X.T @ (y - mu) - self.l2 * _maybe_mask_intercept(beta, self.fit_intercept)
            hess = X.T @ (X * mu[:, None]) + reg
            try:
                step = np.linalg.solve(hess, grad)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hess, grad, rcond=None)[0]
            # Step halving keeps Newton safe far from the optimum.
            scale = 1.0
            for _halving in range(30):
                candidate = beta + scale * step
                cand_ll = penalised_ll(candidate)
                if cand_ll >= current - 1e-12:
                    break
                scale *= 0.5
            beta = beta + scale * step
            new_ll = penalised_ll(beta)
            if abs(new_ll - current) < self.tol * (abs(current) + 1.0):
                current = new_ll
                break
            current = new_ll
        self.coef_ = beta
        return self

    def predict_rate(self, X: np.ndarray, exposure: np.ndarray | None = None) -> np.ndarray:
        """Expected counts ``exposure · exp(βᵀx)``."""
        beta = self._require_fit()
        X = np.asarray(X, dtype=float)
        if self.fit_intercept:
            X = add_intercept(X)
        eta = np.clip(X @ beta, -30, 30)
        rate = np.exp(eta)
        if exposure is not None:
            rate = rate * np.asarray(exposure, dtype=float)
        return rate

    def covariate_factor(self, X: np.ndarray) -> np.ndarray:
        """Multiplicative factor ``exp(βᵀx)`` *excluding* the intercept.

        This is the paper's "features applied multiplicatively" modulation:
        a unitless relative-risk factor with mean ~1 across the training
        distribution of standardised features.
        """
        beta = self._require_fit()
        X = np.asarray(X, dtype=float)
        slope = beta[1:] if self.fit_intercept else beta
        return np.exp(np.clip(X @ slope, -30, 30))

    def _require_fit(self) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model used before fit()")
        return self.coef_


def _maybe_mask_intercept(beta: np.ndarray, has_intercept: bool) -> np.ndarray:
    if not has_intercept:
        return beta
    masked = beta.copy()
    masked[0] = 0.0
    return masked
