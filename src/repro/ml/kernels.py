"""Kernel functions (Gram-matrix builders).

The evaluation protocol uses a *linear* kernel for the SVM ranking method;
RBF and polynomial kernels are provided for completeness and for the
extension experiments.
"""

from __future__ import annotations

import numpy as np


def linear_kernel(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """Gram matrix ``K[i, j] = x_i · y_j``."""
    X = np.asarray(X, dtype=float)
    Y = X if Y is None else np.asarray(Y, dtype=float)
    return X @ Y.T


def rbf_kernel(X: np.ndarray, Y: np.ndarray | None = None, gamma: float = 1.0) -> np.ndarray:
    """Gaussian RBF Gram matrix ``exp(-γ‖x−y‖²)``."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    X = np.asarray(X, dtype=float)
    Y = X if Y is None else np.asarray(Y, dtype=float)
    sq = (
        np.sum(X**2, axis=1)[:, None]
        - 2.0 * (X @ Y.T)
        + np.sum(Y**2, axis=1)[None, :]
    )
    return np.exp(-gamma * np.maximum(sq, 0.0))


def polynomial_kernel(
    X: np.ndarray, Y: np.ndarray | None = None, degree: int = 2, coef0: float = 1.0
) -> np.ndarray:
    """Polynomial Gram matrix ``(x·y + coef0)^degree``."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    X = np.asarray(X, dtype=float)
    Y = X if Y is None else np.asarray(Y, dtype=float)
    return (X @ Y.T + coef0) ** degree
