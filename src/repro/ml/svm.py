"""Linear support vector machine trained with Pegasos (primal SGD).

Shalev-Shwartz et al.'s Pegasos solves the L2-regularised hinge-loss
objective with projected stochastic subgradient steps; for the pipe-failure
feature dimensionality (tens of columns) it converges in a few passes and
needs no QP machinery. Class imbalance — the defining property of failure
data — is handled with per-class example weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class LinearSVM:
    """Binary linear SVM (labels {0, 1}) with optional class balancing.

    Parameters
    ----------
    lam:
        L2 regularisation strength (Pegasos ``λ``).
    epochs:
        Passes over the data.
    balanced:
        When True, examples are weighted inversely to class frequency so
        that a 1%-positive failure dataset does not collapse to the
        majority class.
    """

    lam: float = 1e-3
    epochs: int = 20
    balanced: bool = True
    seed: int = 0
    fit_intercept: bool = True
    coef_: np.ndarray | None = None
    intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X = np.asarray(X, dtype=float)
        y01 = np.asarray(y, dtype=float).ravel()
        if set(np.unique(y01)) - {0.0, 1.0}:
            raise ValueError("labels must be binary 0/1")
        y_pm = 2.0 * y01 - 1.0
        n, d = X.shape
        if self.balanced:
            n_pos = max(int(y01.sum()), 1)
            n_neg = max(n - n_pos, 1)
            weights = np.where(y01 == 1.0, n / (2.0 * n_pos), n / (2.0 * n_neg))
        else:
            weights = np.ones(n)
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (self.lam * t)
                margin = y_pm[i] * (X[i] @ w + b)
                w *= 1.0 - eta * self.lam
                if margin < 1.0:
                    w += eta * weights[i] * y_pm[i] * X[i]
                    if self.fit_intercept:
                        b += eta * weights[i] * y_pm[i]
                # Pegasos projection onto the ||w|| <= 1/sqrt(lam) ball.
                norm = np.linalg.norm(w)
                radius = 1.0 / np.sqrt(self.lam)
                if norm > radius:
                    w *= radius / norm
        self.coef_ = w
        self.intercept_ = b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin ``wᵀx + b``; larger means more failure-like."""
        if self.coef_ is None:
            raise RuntimeError("model used before fit()")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.decision_function(X) >= 0.0).astype(int)
