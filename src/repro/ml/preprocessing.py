"""Feature preprocessing: standardisation and one-hot encoding.

Minimal fit/transform implementations with the invariants the models rely
on: transforms are deterministic given a fitted state, unseen categories
map to an all-zeros block (so test-time data never crashes a model), and
near-constant columns are not divided by ~0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np


@dataclass
class StandardScaler:
    """Column-wise standardisation to zero mean / unit variance."""

    mean_: np.ndarray | None = None
    scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = _as_matrix(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant columns carry no information; dividing by 1 keeps them 0.
        std[std < 1e-12] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler used before fit()")
        X = _as_matrix(X)
        if X.shape[1] != self.mean_.size:
            raise ValueError(f"expected {self.mean_.size} columns, got {X.shape[1]}")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


@dataclass
class OneHotEncoder:
    """One-hot encoding of a single categorical column.

    Categories are learnt at fit time (sorted by string form for
    determinism); unseen categories at transform time encode to all zeros.
    """

    categories_: list[Hashable] = field(default_factory=list)
    _index: dict[Hashable, int] = field(default_factory=dict, repr=False)

    def fit(self, values: Sequence[Hashable]) -> "OneHotEncoder":
        self.categories_ = sorted(set(values), key=str)
        self._index = {c: i for i, c in enumerate(self.categories_)}
        return self

    def transform(self, values: Sequence[Hashable]) -> np.ndarray:
        if not self.categories_:
            raise RuntimeError("OneHotEncoder used before fit()")
        out = np.zeros((len(values), len(self.categories_)))
        for row, v in enumerate(values):
            col = self._index.get(v)
            if col is not None:
                out[row, col] = 1.0
        return out

    def fit_transform(self, values: Sequence[Hashable]) -> np.ndarray:
        return self.fit(values).transform(values)

    def feature_names(self, prefix: str) -> list[str]:
        """Column names like ``"material=PVC"`` for reporting."""
        return [f"{prefix}={c}" for c in self.categories_]


def add_intercept(X: np.ndarray) -> np.ndarray:
    """Prepend a column of ones."""
    X = _as_matrix(X)
    return np.hstack([np.ones((X.shape[0], 1)), X])


def _as_matrix(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X[:, None]
    if X.ndim != 2:
        raise ValueError("expected a 2-D feature matrix")
    return X
