"""ML substrate: preprocessing, GLMs, linear SVM, kernels."""

from .glm import LogisticRegression, PoissonRegression
from .kernels import linear_kernel, polynomial_kernel, rbf_kernel
from .preprocessing import OneHotEncoder, StandardScaler, add_intercept
from .svm import LinearSVM

__all__ = [
    "LogisticRegression",
    "PoissonRegression",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "OneHotEncoder",
    "StandardScaler",
    "add_intercept",
    "LinearSVM",
]
