"""Domain-knowledge feature handling.

The chapter's central argument (§18.4.2) is that domain experts (a) point
the modeller at informative factors a data-only pipeline would never
collect — soil layers, traffic-intersection distance, tree canopy — and
(b) reject *false correlated* features that a purely data-driven pipeline
would keep. This module encodes both directions:

* :data:`EXPERT_FEATURE_PREFIXES` — the expert include-list (Table 18.2);
* :func:`expert_screen` — drops every feature column the experts did not
  endorse (in particular decoys injected by ``FeatureConfig``);
* :func:`correlation_screen` — the naive data-driven alternative: keep
  whatever correlates with training labels above a threshold, which keeps
  lucky decoys and drops genuinely informative but weakly marginal
  features (interactions!);
* preset :class:`FeatureConfig` factories for the three ablation arms.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .builder import FeatureConfig, ModelData

#: Feature-name prefixes endorsed by domain experts (drinking water).
EXPERT_FEATURE_PREFIXES: tuple[str, ...] = (
    "material=",
    "coating=",
    "diameter_mm",
    "log_length_m",
    "soil_corrosiveness=",
    "soil_expansiveness=",
    "soil_geology=",
    "soil_map=",
    "dist_to_intersection_m",
    "tree_canopy_cover",
    "soil_moisture",
)


def basic_config() -> FeatureConfig:
    """Attributes-only features: what a utility's asset register holds."""
    return FeatureConfig(include_soil=False, include_traffic=False)


def naive_config(n_decoys: int = 8) -> FeatureConfig:
    """A data-driven pipeline without expert screening: everything plus decoys."""
    return FeatureConfig(n_noise_decoys=n_decoys)


def expert_config() -> FeatureConfig:
    """The expert-endorsed feature set (Table 18.2)."""
    return FeatureConfig()


def is_expert_endorsed(name: str) -> bool:
    """True when a feature column is on the expert include-list."""
    return any(name.startswith(prefix) for prefix in EXPERT_FEATURE_PREFIXES)


def expert_screen(data: ModelData) -> ModelData:
    """Drop all feature columns the domain experts did not endorse."""
    keep = [i for i, name in enumerate(data.feature_names) if is_expert_endorsed(name)]
    if not keep:
        raise ValueError("expert screening removed every feature")
    return _select_columns(data, keep)


def correlation_screen(data: ModelData, threshold: float = 0.01) -> ModelData:
    """Naive filter: keep columns whose |corr| with training labels ≥ threshold.

    Uses per-pipe any-failure-in-training labels. With sparse failures,
    pure-noise decoys regularly clear a small threshold by luck while true
    interaction features (informative only jointly) can fall below it —
    the failure mode expert knowledge protects against.
    """
    labels = (data.pipe_fail_train.sum(axis=1) > 0).astype(float)
    if labels.std() == 0:
        raise ValueError("training labels are constant; cannot screen")
    keep: list[int] = []
    for i in range(data.X_pipe.shape[1]):
        col = data.X_pipe[:, i]
        if col.std() == 0:
            continue
        corr = float(np.corrcoef(col, labels)[0, 1])
        if abs(corr) >= threshold:
            keep.append(i)
    if not keep:
        raise ValueError(f"no feature exceeded |corr| >= {threshold}")
    return _select_columns(data, keep)


def _select_columns(data: ModelData, keep: list[int]) -> ModelData:
    return replace(
        data,
        X_pipe=data.X_pipe[:, keep],
        X_seg=data.X_seg[:, keep],
        feature_names=[data.feature_names[i] for i in keep],
    )
