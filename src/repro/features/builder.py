"""Feature assembly: Table 18.2's features plus the train/test matrices.

``build_model_data(dataset)`` produces the one canonical
:class:`ModelData` object every compared method consumes — the chapter's
fairness requirement ("the features described in the previous section are
used for all the compared methods") is enforced by construction.

Features per pipe/segment:

* pipe attributes — protective coating (one-hot), diameter, length (log),
  laid date (through per-year ages), material (one-hot);
* environmental factors — four categorical soil layers (one-hot) sampled
  at segment midpoints, and the distance to the closest traffic
  intersection.

Pipe-level categorical environment values are the modal value over the
pipe's segments; the pipe's intersection distance is the minimum over its
segments (the most-exposed point governs loading).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..data.datasets import PipeDataset
from ..ml.preprocessing import OneHotEncoder, StandardScaler


@dataclass
class FeatureConfig:
    """Which feature blocks to include (the domain-knowledge ablation knob)."""

    include_attributes: bool = True  # coating, material (categorical blocks)
    include_dimensions: bool = True  # diameter, log-length
    include_soil: bool = True
    include_traffic: bool = True
    include_vegetation: bool = False  # canopy & moisture (waste water only)
    n_noise_decoys: int = 0  # "false correlated" features a naive pipeline keeps
    decoy_seed: int = 1234


@dataclass
class ModelData:
    """Everything a failure model may legitimately see.

    All matrices share canonical orderings: pipes in network insertion
    order, segments grouped by pipe. Continuous feature columns are
    standardised with statistics from the full region (test labels are
    never touched).
    """

    region: str
    pipe_ids: list[str]
    segment_ids: list[str]
    seg_pipe_idx: np.ndarray  # (n_seg,) → row in pipe arrays
    X_pipe: np.ndarray  # (n_pipes, d) standardised features
    X_seg: np.ndarray  # (n_seg, d) standardised features
    feature_names: list[str]
    pipe_lengths: np.ndarray
    seg_lengths: np.ndarray
    pipe_laid_year: np.ndarray
    pipe_material: list[str]
    pipe_diameter: np.ndarray
    seg_midpoints: np.ndarray  # (n_seg, 2) segment midpoint coordinates
    train_years: tuple[int, ...]
    test_year: int
    seg_fail_train: np.ndarray  # (n_seg, n_train_years) binary
    pipe_fail_train: np.ndarray  # (n_pipes, n_train_years) binary
    pipe_fail_test: np.ndarray  # (n_pipes,) binary test-year labels
    seg_fail_test: np.ndarray  # (n_seg,) binary
    _scaler_cache: dict = field(default_factory=dict, repr=False)

    @property
    def n_pipes(self) -> int:
        return len(self.pipe_ids)

    @property
    def n_segments(self) -> int:
        return len(self.segment_ids)

    def pipe_ages(self, year: int) -> np.ndarray:
        """Pipe age (years) in calendar ``year``, floored at 0."""
        return np.maximum(float(year) - self.pipe_laid_year, 0.0)

    @property
    def seg_laid_year(self) -> np.ndarray:
        """Laid year per segment (inherited from the owning pipe)."""
        return self.pipe_laid_year[self.seg_pipe_idx]

    def clustering_features(self) -> np.ndarray:
        """Segment features for adaptive grouping: Table 18.2 plus laid date.

        Laid date is a Table 18.2 feature but is kept out of ``X_seg`` (the
        dynamic models consume it as per-year age); grouping, however, is
        static, so it is appended here twice: as a standardised continuous
        column and as an installation-era one-hot block (the domain
        knowledge that manufacturing/jointing practice changed in discrete
        eras — giving era boundaries the same separating power in the
        cluster space as material boundaries).
        """
        from ..data.generator import era_bucket

        laid = self.seg_laid_year.astype(float)
        std = laid.std()
        laid_z = (laid - laid.mean()) / (std if std > 1e-12 else 1.0)
        eras = np.asarray([era_bucket(int(y)) for y in laid])
        era_onehot = np.zeros((len(laid), 5))
        era_onehot[np.arange(len(laid)), eras] = 1.0
        # Segment location (standardised): pipe locations are part of the
        # network data, and spatial proximity proxies every *unmeasured*
        # environmental factor (water table, bedding practice of the crew
        # that worked the area). Only the grouping sees coordinates — the
        # regression features (Table 18.2) do not, matching the paper.
        xy = self.seg_midpoints.astype(float)
        xy_z = (xy - xy.mean(axis=0)) / np.maximum(xy.std(axis=0), 1e-12)
        # Scale era indicators to a ~2-unit between-class gap, matching the
        # standardised one-hot blocks in X_seg.
        return np.hstack([self.X_seg, laid_z[:, None], 2.0 * era_onehot, 1.5 * xy_z])

    def pipe_train_failure_counts(self) -> np.ndarray:
        """Training failure-years per pipe (history feature for rankers)."""
        return self.pipe_fail_train.sum(axis=1).astype(float)

    def validation_split(self) -> "ModelData":
        """Internal-validation view: last training year becomes the test year.

        Used to select model variants (e.g. the HBP grouping) without ever
        touching real test labels. The returned object shares the feature
        matrices; only the year bookkeeping and failure splits change.
        """
        from dataclasses import replace

        if len(self.train_years) < 2:
            raise ValueError("need at least two training years to split")
        return replace(
            self,
            train_years=self.train_years[:-1],
            test_year=self.train_years[-1],
            seg_fail_train=self.seg_fail_train[:, :-1],
            pipe_fail_train=self.pipe_fail_train[:, :-1],
            pipe_fail_test=self.pipe_fail_train[:, -1].astype(float),
            seg_fail_test=self.seg_fail_train[:, -1].astype(float),
        )

    def aggregate_to_pipes(self, seg_values: np.ndarray, how: str = "max") -> np.ndarray:
        """Reduce a per-segment vector to per-pipe (``max``, ``sum`` or ``mean``)."""
        seg_values = np.asarray(seg_values, dtype=float)
        out = np.zeros(self.n_pipes)
        if how == "sum":
            np.add.at(out, self.seg_pipe_idx, seg_values)
        elif how == "max":
            out.fill(-np.inf)
            np.maximum.at(out, self.seg_pipe_idx, seg_values)
            out[np.isneginf(out)] = 0.0
        elif how == "mean":
            np.add.at(out, self.seg_pipe_idx, seg_values)
            counts = np.bincount(self.seg_pipe_idx, minlength=self.n_pipes)
            out = out / np.maximum(counts, 1)
        else:
            raise ValueError(f"unknown aggregation {how!r}")
        return out

    def survival_pipe_probability(self, seg_probs: np.ndarray) -> np.ndarray:
        """Pipe failure probability from segment probabilities.

        The DPMHBP composition rule: ``π_i = 1 − Π_{l∈pipe i}(1 − ρ_l)``
        (a series system fails when any segment fails).
        """
        seg_probs = np.clip(np.asarray(seg_probs, dtype=float), 0.0, 1.0 - 1e-12)
        log_surv = np.zeros(self.n_pipes)
        np.add.at(log_surv, self.seg_pipe_idx, np.log1p(-seg_probs))
        return 1.0 - np.exp(log_surv)


def _modal(values: list[str]) -> str:
    return Counter(values).most_common(1)[0][0]


def build_model_data(dataset: PipeDataset, config: FeatureConfig | None = None) -> ModelData:
    """Assemble the canonical feature matrices and failure splits."""
    config = config or FeatureConfig()
    net = dataset.network
    env = dataset.environment
    pipes = net.pipes()
    segments = net.segments()
    pipe_ids = [p.pipe_id for p in pipes]
    segment_ids = [s.segment_id for s in segments]
    pipe_row = {pid: i for i, pid in enumerate(pipe_ids)}
    seg_pipe_idx = np.asarray([pipe_row[s.pipe_id] for s in segments], dtype=np.int64)

    midpoints = [s.midpoint for s in segments]
    seg_lengths = np.asarray([s.length for s in segments])
    pipe_lengths = np.asarray([p.length for p in pipes])
    pipe_laid = np.asarray([p.laid_year for p in pipes], dtype=float)

    # Pre-group segment row indices by pipe (stable sort → O(n log n) once).
    order = np.argsort(seg_pipe_idx, kind="stable")
    group_counts = np.bincount(seg_pipe_idx, minlength=len(pipes))
    group_bounds = np.concatenate([[0], np.cumsum(group_counts)])
    pipe_seg_rows = [
        order[group_bounds[i] : group_bounds[i + 1]] for i in range(len(pipes))
    ]

    blocks_seg: list[np.ndarray] = []
    blocks_pipe: list[np.ndarray] = []
    names: list[str] = []

    def add_categorical(name: str, seg_values: list[str]) -> None:
        encoder = OneHotEncoder().fit(seg_values)
        blocks_seg.append(encoder.transform(seg_values))
        pipe_values = [
            _modal([seg_values[j] for j in rows]) for rows in pipe_seg_rows
        ]
        blocks_pipe.append(encoder.transform(pipe_values))
        names.extend(encoder.feature_names(name))

    def add_continuous(name: str, seg_values: np.ndarray, pipe_values: np.ndarray) -> None:
        scaler = StandardScaler().fit(np.concatenate([seg_values, pipe_values])[:, None])
        blocks_seg.append(scaler.transform(seg_values[:, None]))
        blocks_pipe.append(scaler.transform(pipe_values[:, None]))
        names.append(name)

    if config.include_attributes:
        seg_material = [net.pipe(s.pipe_id).material.name for s in segments]
        seg_coating = [net.pipe(s.pipe_id).coating.name for s in segments]
        add_categorical("material", seg_material)
        add_categorical("coating", seg_coating)

    if config.include_dimensions:
        seg_diam = np.asarray([net.pipe(s.pipe_id).diameter_mm for s in segments])
        pipe_diam = np.asarray([p.diameter_mm for p in pipes])
        add_continuous("diameter_mm", seg_diam, pipe_diam)
        add_continuous(
            "log_length_m", np.log(np.maximum(seg_lengths, 1.0)), np.log(np.maximum(pipe_lengths, 1.0))
        )

    if config.include_soil:
        soil_values = env.soil.sample(midpoints)
        for layer_name, values in soil_values.items():
            add_categorical(layer_name, values)

    if config.include_traffic:
        dist = env.traffic.distance_to_nearest(midpoints)
        pipe_dist = np.full(len(pipes), np.inf)
        np.minimum.at(pipe_dist, seg_pipe_idx, dist)
        add_continuous("dist_to_intersection_m", dist, pipe_dist)

    if config.include_vegetation:
        if env.canopy is None or env.moisture is None:
            raise ValueError("dataset has no vegetation layers; use a waste-water dataset")
        cover = env.canopy.coverage_at(midpoints)
        wet = env.moisture.moisture_at(midpoints)
        cover_pipe = np.zeros(len(pipes))
        wet_pipe = np.zeros(len(pipes))
        counts = np.bincount(seg_pipe_idx, minlength=len(pipes)).astype(float)
        np.add.at(cover_pipe, seg_pipe_idx, cover)
        np.add.at(wet_pipe, seg_pipe_idx, wet)
        add_continuous("tree_canopy_cover", cover, cover_pipe / np.maximum(counts, 1))
        add_continuous("soil_moisture", wet, wet_pipe / np.maximum(counts, 1))

    if config.n_noise_decoys:
        decoy_rng = np.random.default_rng(config.decoy_seed)
        for k in range(config.n_noise_decoys):
            seg_noise = decoy_rng.standard_normal(len(segments))
            pipe_noise = np.zeros(len(pipes))
            counts = np.bincount(seg_pipe_idx, minlength=len(pipes)).astype(float)
            np.add.at(pipe_noise, seg_pipe_idx, seg_noise)
            add_continuous(f"decoy_{k}", seg_noise, pipe_noise / np.maximum(counts, 1))

    if not blocks_seg:
        raise ValueError("feature config selected no features")
    X_seg = np.hstack(blocks_seg)
    X_pipe = np.hstack(blocks_pipe)

    train_years = dataset.train_years
    seg_fail = dataset.segment_failure_matrix()
    pipe_fail = dataset.pipe_failure_matrix()
    year_cols = {y: j for j, y in enumerate(dataset.years)}
    train_cols = [year_cols[y] for y in train_years]
    test_col = year_cols[dataset.test_year]

    return ModelData(
        region=net.region,
        pipe_ids=pipe_ids,
        segment_ids=segment_ids,
        seg_pipe_idx=seg_pipe_idx,
        X_pipe=X_pipe,
        X_seg=X_seg,
        feature_names=names,
        pipe_lengths=pipe_lengths,
        seg_lengths=seg_lengths,
        pipe_laid_year=pipe_laid,
        pipe_material=[p.material.name for p in pipes],
        pipe_diameter=np.asarray([p.diameter_mm for p in pipes]),
        seg_midpoints=np.asarray(midpoints, dtype=float),
        train_years=train_years,
        test_year=dataset.test_year,
        seg_fail_train=seg_fail[:, train_cols],
        pipe_fail_train=pipe_fail[:, train_cols],
        pipe_fail_test=pipe_fail[:, test_col].astype(float),
        seg_fail_test=seg_fail[:, test_col].astype(float),
    )
