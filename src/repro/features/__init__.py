"""Feature engineering: Table 18.2 assembly and domain-knowledge screening."""

from .builder import FeatureConfig, ModelData, build_model_data
from .domain import (
    EXPERT_FEATURE_PREFIXES,
    basic_config,
    correlation_screen,
    expert_config,
    expert_screen,
    is_expert_endorsed,
    naive_config,
)

__all__ = [
    "FeatureConfig",
    "ModelData",
    "build_model_data",
    "EXPERT_FEATURE_PREFIXES",
    "basic_config",
    "correlation_screen",
    "expert_config",
    "expert_screen",
    "is_expert_endorsed",
    "naive_config",
]
