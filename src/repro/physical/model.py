"""The physical condition-scoring baseline (no training on failure data).

Combines the corrosion pit model with simple structural and loading
heuristics into a per-pipe physical risk score — a faithful miniature of
the "domain knowledge-driven physical modelling" methodology the paper
contrasts with data-driven learning:

* ferrous mains: corrosion degradation ratio from the two-phase pit law
  scaled by the soil corrosivity class;
* brittle mains (AC, CI, concrete, clay): a shrink–swell loading term from
  soil expansiveness;
* all mains: a traffic-loading term decaying with intersection distance,
  and exposure proportional to length.

Because nothing is fitted, the model (a) needs no failure records at all
and (b) captures only the aspects its designers thought of — the paper's
point about physical models considering "an individual aspect of the
problem". It doubles as a sanity baseline for the learned models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.base import FailureModel
from ..features.builder import ModelData
from ..gis.soil import expansiveness_severity
from ..network.pipe import FERROUS_MATERIALS, Material
from .corrosion import CORROSIVITY_RATE, TwoPhasePitModel, degradation_ratio, wall_thickness_mm

_BRITTLE = frozenset({Material.AC, Material.CI, Material.VC, Material.CONC})


@dataclass
class PhysicalConditionModel(FailureModel):
    """Deterministic physical risk score per pipe (fits nothing).

    Implements the :class:`~repro.core.base.FailureModel` interface so it
    slots into the experiment harness, but ``fit`` is a no-op by design.
    """

    name: str = "Physical"
    pit_model: TwoPhasePitModel = field(default_factory=TwoPhasePitModel)
    expansion_weight: float = 0.5
    traffic_weight: float = 0.3
    _fitted: bool = field(default=False, repr=False)

    def fit(self, data: ModelData) -> "PhysicalConditionModel":
        """No learning happens — the method exists for interface parity."""
        self._fitted = True
        return self

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        """Physical condition score for the test year (higher = worse)."""
        ages = data.pipe_ages(data.test_year)
        materials = [Material[m] for m in data.pipe_material]

        # Corrosion: pit depth vs wall for ferrous mains.
        corr_mult = self._soil_multiplier(data, "soil_corrosiveness=", CORROSIVITY_RATE)
        walls = np.asarray(
            [wall_thickness_mm(m, d) for m, d in zip(materials, data.pipe_diameter)]
        )
        pits = self.pit_model.pit_depth_mm(ages, corr_mult)
        corrosion = degradation_ratio(pits, walls)
        ferrous = np.asarray([m in FERROUS_MATERIALS for m in materials])
        corrosion = np.where(ferrous, corrosion, 0.15 * corrosion)

        # Shrink–swell loading on brittle walls.
        expa = self._severity_from_onehot(data, "soil_expansiveness=", expansiveness_severity)
        brittle = np.asarray([m in _BRITTLE for m in materials])
        expansion = np.where(brittle, expa, 0.2 * expa) * np.minimum(ages / 50.0, 1.5)

        # Traffic loading: inverse-distance proxy from the standardised
        # feature column (smaller distance = more loading).
        traffic = self._traffic_proximity(data)

        exposure = np.log1p(data.pipe_lengths / 100.0)
        score = (corrosion + self.expansion_weight * expansion + self.traffic_weight * traffic)
        return score * (0.5 + exposure)

    # -- feature-column readers (the physical model reads the same shared
    # inputs as every other model; it just uses them through formulas) ----

    @staticmethod
    def _soil_multiplier(data: ModelData, prefix: str, table: dict[str, float]) -> np.ndarray:
        mult = np.ones(data.n_pipes)
        for j, name in enumerate(data.feature_names):
            if name.startswith(prefix):
                level = name[len(prefix):]
                active = data.X_pipe[:, j] > 0
                mult[active] = table.get(level, 1.0)
        return mult

    @staticmethod
    def _severity_from_onehot(data: ModelData, prefix: str, severity_fn) -> np.ndarray:
        levels = np.array(["low"] * data.n_pipes, dtype=object)
        for j, name in enumerate(data.feature_names):
            if name.startswith(prefix):
                level = name[len(prefix):]
                levels[data.X_pipe[:, j] > 0] = level
        return severity_fn(list(levels))

    @staticmethod
    def _traffic_proximity(data: ModelData) -> np.ndarray:
        try:
            j = data.feature_names.index("dist_to_intersection_m")
        except ValueError:
            return np.zeros(data.n_pipes)
        z = data.X_pipe[:, j]
        # Standardised distance: convert to a 0..1 proximity score.
        return 1.0 / (1.0 + np.exp(z))
