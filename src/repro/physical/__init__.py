"""Domain-knowledge-driven physical models (the paper's contrast methodology)."""

from .corrosion import (
    CORROSIVITY_RATE,
    TwoPhasePitModel,
    degradation_ratio,
    wall_thickness_mm,
)
from .model import PhysicalConditionModel

__all__ = [
    "CORROSIVITY_RATE",
    "TwoPhasePitModel",
    "degradation_ratio",
    "wall_thickness_mm",
    "PhysicalConditionModel",
]
