"""Physical deterioration models: external corrosion pit growth.

The paper's *other* methodology — domain-knowledge-driven physical
modelling (§18.1, Rajani & Kleiner 2001 lineage) — predicts deterioration
from first principles instead of data. The canonical external-corrosion
component is a two-phase pit-depth law: fast initial pitting that
saturates into a slow linear phase,

    d(t) = a·t                          (t <= t0, rapid phase)
    d(t) = a·t0 + b·(t − t0)            (t > t0, slow phase)

with the rate scaled by the soil's corrosivity class. Pit depth against
remaining wall thickness gives a dimensionless *degradation ratio* used as
a physical risk score. No parameters are learned from failure data — that
is the methodology's defining property (and its weakness: it sees only
the corrosion aspect of the problem).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.pipe import Material

#: Nominal wall thickness (mm) by material and diameter class, interpolated
#: from typical manufacturing standards (values indicative).
_WALL_THICKNESS_BASE = {
    Material.CI: 11.0,
    Material.CICL: 10.0,
    Material.DICL: 7.5,
    Material.STEEL: 6.0,
    Material.AC: 14.0,
    Material.PVC: 8.0,
    Material.PE: 9.0,
    Material.VC: 16.0,
    Material.CONC: 25.0,
}

#: Multiplier of the pit-growth rate by soil corrosivity class.
CORROSIVITY_RATE = {"low": 0.4, "moderate": 1.0, "high": 1.8, "severe": 3.0}


def wall_thickness_mm(material: Material, diameter_mm: float) -> float:
    """Nominal wall thickness: base value scaled mildly with diameter."""
    if diameter_mm <= 0:
        raise ValueError("diameter must be positive")
    base = _WALL_THICKNESS_BASE[material]
    return base * (0.8 + 0.4 * min(diameter_mm / 600.0, 1.5))


@dataclass(frozen=True)
class TwoPhasePitModel:
    """Two-phase corrosion pit-depth growth.

    Parameters
    ----------
    rapid_rate_mm_per_year:
        Pit growth during the initial phase (bare metal in fresh backfill).
    slow_rate_mm_per_year:
        Long-term growth once corrosion products passivate the surface.
    transition_years:
        Duration of the rapid phase.
    """

    rapid_rate_mm_per_year: float = 0.30
    slow_rate_mm_per_year: float = 0.025
    transition_years: float = 12.0

    def __post_init__(self) -> None:
        if min(self.rapid_rate_mm_per_year, self.slow_rate_mm_per_year) < 0:
            raise ValueError("rates must be non-negative")
        if self.transition_years <= 0:
            raise ValueError("transition must be positive")

    def pit_depth_mm(self, age_years: np.ndarray, corrosivity_multiplier: np.ndarray | float = 1.0) -> np.ndarray:
        """Pit depth after ``age_years`` in soil of the given corrosivity."""
        age = np.maximum(np.asarray(age_years, dtype=float), 0.0)
        t0 = self.transition_years
        rapid = self.rapid_rate_mm_per_year * np.minimum(age, t0)
        slow = self.slow_rate_mm_per_year * np.maximum(age - t0, 0.0)
        return (rapid + slow) * np.asarray(corrosivity_multiplier, dtype=float)


def degradation_ratio(
    pit_depth_mm: np.ndarray, wall_mm: np.ndarray, cap: float = 1.0
) -> np.ndarray:
    """Pit depth over wall thickness, clipped to ``[0, cap]``.

    1.0 means nominal through-wall penetration; structural failure is
    typically expected well before (at 50–80% loss under pressure).
    """
    pit = np.asarray(pit_depth_mm, dtype=float)
    wall = np.asarray(wall_mm, dtype=float)
    if np.any(wall <= 0):
        raise ValueError("wall thickness must be positive")
    return np.clip(pit / wall, 0.0, cap)
