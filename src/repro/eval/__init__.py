"""Evaluation harness: metrics, significance, experiments, economics, risk maps."""

from .economics import CostModel, PlanEconomics, plan_economics, savings_curve
from .experiment import (
    PAPER_MODELS,
    ComparisonResult,
    ModelEvaluation,
    NoTestFailuresError,
    RegionRun,
    default_models,
    evaluate_models,
    prepare_region_data,
    run_comparison,
)
from .metrics import (
    DetectionCurve,
    auc_at_budget,
    detection_curve,
    empirical_auc,
    permyriad,
    roc_curve,
)
from .reporting import (
    binned_rate_table,
    detection_readout,
    format_table,
    table_18_1,
    table_18_3,
    table_18_4,
)
from .riskmap import DEFAULT_BANDS, RiskMap
from .significance import TTestResult, bootstrap_auc_samples, paired_t_test, t_sf

__all__ = [
    "CostModel",
    "PlanEconomics",
    "plan_economics",
    "savings_curve",
    "PAPER_MODELS",
    "ComparisonResult",
    "ModelEvaluation",
    "NoTestFailuresError",
    "RegionRun",
    "default_models",
    "evaluate_models",
    "prepare_region_data",
    "run_comparison",
    "DetectionCurve",
    "auc_at_budget",
    "detection_curve",
    "empirical_auc",
    "permyriad",
    "roc_curve",
    "binned_rate_table",
    "detection_readout",
    "format_table",
    "table_18_1",
    "table_18_3",
    "table_18_4",
    "DEFAULT_BANDS",
    "RiskMap",
    "TTestResult",
    "bootstrap_auc_samples",
    "paired_t_test",
    "t_sf",
]
