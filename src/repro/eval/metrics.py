"""Evaluation metrics: ROC/AUC, detection curves, budget-restricted AUC.

The paper's two headline numbers per (model, region):

* **AUC (100%)** — area under the detection curve over the full
  inspection range (equivalently the ROC AUC of the pipe ranking against
  test-year failure labels);
* **AUC (1%)** — area under the detection curve restricted to the first
  1% of inspections (reported in ‱, i.e. units of 1/10,000): the metric
  that matters under the real budget constraint of inspecting ~1% of
  critical mains a year.

Detection curves support weighting the x-axis by pipe length ("1% of pipe
network length inspected", Fig. 18.8) instead of pipe count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# The rank-sum machinery lives in exactly one place —
# ``repro.core.ranking.objective`` — and is re-exported here so evaluation
# code and ranking code share the same implementation.
from ..core.ranking.objective import empirical_auc, midranks

__all__ = [
    "empirical_auc",
    "midranks",
    "DetectionCurve",
    "detection_curve",
    "auc_at_budget",
    "permyriad",
    "roc_curve",
]


@dataclass(frozen=True)
class DetectionCurve:
    """Cumulative detection curve.

    ``inspected[i]`` — fraction of the network inspected (by count or
    length) after the ``i``-th ranked pipe; ``detected[i]`` — fraction of
    all test failures found so far. Both start implicitly at (0, 0).
    """

    inspected: np.ndarray
    detected: np.ndarray

    def detected_at(self, budget: float) -> float:
        """Fraction of failures detected when ``budget`` is inspected."""
        if not 0 <= budget <= 1:
            raise ValueError("budget must be in [0, 1]")
        x = np.concatenate([[0.0], self.inspected])
        y = np.concatenate([[0.0], self.detected])
        return float(np.interp(budget, x, y))

    def area(self, budget: float = 1.0) -> float:
        """Area under the curve over ``[0, budget]`` (trapezoidal)."""
        if not 0 < budget <= 1:
            raise ValueError("budget must be in (0, 1]")
        x = np.concatenate([[0.0], self.inspected])
        y = np.concatenate([[0.0], self.detected])
        keep = x <= budget
        xs = np.concatenate([x[keep], [budget]])
        ys = np.concatenate([y[keep], [self.detected_at(budget)]])
        return float(np.trapezoid(ys, xs))


def detection_curve(
    scores: np.ndarray,
    labels: np.ndarray,
    lengths: np.ndarray | None = None,
    seed: int = 0,
) -> DetectionCurve:
    """Detection curve of a ranking against binary failure labels.

    Pipes are inspected in descending score order (ties broken by a fixed
    random shuffle so that constant-score models don't inherit a lucky
    input ordering). When ``lengths`` is given, the x-axis is the fraction
    of total network *length* inspected, else the fraction of pipe count.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=float).ravel()
    if scores.shape[0] != labels.shape[0]:
        raise ValueError("scores and labels must align")
    total_pos = labels.sum()
    if total_pos == 0:
        raise ValueError("no failures to detect")
    rng = np.random.default_rng(seed)
    tiebreak = rng.permutation(scores.size)
    order = np.lexsort((tiebreak, -scores))
    if lengths is None:
        weights = np.ones(scores.size)
    else:
        weights = np.asarray(lengths, dtype=float)
        if weights.shape != scores.shape or np.any(weights < 0):
            raise ValueError("lengths must be non-negative and align with scores")
    inspected = np.cumsum(weights[order]) / weights.sum()
    detected = np.cumsum(labels[order]) / total_pos
    return DetectionCurve(inspected=inspected, detected=detected)


def auc_at_budget(
    scores: np.ndarray,
    labels: np.ndarray,
    budget: float = 0.01,
    lengths: np.ndarray | None = None,
) -> float:
    """Area under the detection curve restricted to ``[0, budget]``."""
    return detection_curve(scores, labels, lengths=lengths).area(budget)


def permyriad(value: float) -> float:
    """Express a fraction in ‱ (per ten thousand), the paper's 1%-AUC unit."""
    return value * 10_000.0


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(false positive rate, true positive rate) at every *distinct* threshold.

    The curve starts at the explicit (0, 0) origin and has exactly one
    point per unique score value. Emitting a point per *item* (the old
    behaviour) made the curve depend on how tied positives and negatives
    happened to be ordered by the sort — a threshold either admits a tied
    block wholly or not at all, so mid-block points are not operating
    points, and trapezoidal area over them changed under permutations of
    the input. Collapsing to unique thresholds makes the curve (and its
    trapezoidal AUC, which now equals the midrank :func:`empirical_auc`)
    tie-invariant.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=float).ravel()
    if scores.shape[0] != labels.shape[0]:
        raise ValueError("scores and labels must align")
    pos = labels == 1.0
    n_pos = int(pos.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("need both positives and negatives")
    order = np.argsort(-scores, kind="mergesort")
    ranked_scores = scores[order]
    tp = np.cumsum(labels[order] == 1.0)
    fp = np.cumsum(labels[order] != 1.0)
    # Keep the last index of every tied block: the cumulative counts there
    # are the only achievable (FP, TP) operating points.
    last_of_block = np.nonzero(np.diff(ranked_scores))[0]
    keep = np.concatenate([last_of_block, [scores.size - 1]])
    fpr = np.concatenate([[0.0], fp[keep] / n_neg])
    tpr = np.concatenate([[0.0], tp[keep] / n_pos])
    return fpr, tpr
