"""Experiment runner: the paper's train/test protocol over models × regions.

Protocol (§18.4): critical water mains only; train on the 1998–2008
failure records, test on 2009; rank pipes by predicted risk; report the
full-range AUC and the 1%-budget AUC (in ‱), plus detection curves; and
assess significance with one-sided paired t-tests over repeated
evaluations (each repeat regenerates the region with a fresh seed and
refits every model on it, giving paired per-repeat AUC samples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.base import FailureModel
from ..core.dpmhbp import DPMHBPModel
from ..core.hbp import HBPBestModel
from ..core.ranking.model import AUCRankingModel, SVMRankingModel
from ..core.survival_models import CoxPHModel, WeibullModel
from ..features.builder import FeatureConfig, ModelData
from ..network.pipe import PipeClass
from ..parallel import cached_model_data, parallel_map, resolve_executor
from .metrics import DetectionCurve, auc_at_budget, detection_curve, empirical_auc, permyriad
from .significance import TTestResult, paired_t_test

#: The model line-up of Table 18.3 (plus the AUC-optimised ranker).
PAPER_MODELS: tuple[str, ...] = ("DPMHBP", "HBP", "Cox", "SVM", "Weibull")

ModelFactory = Callable[[int], list[FailureModel]]


def default_models(seed: int = 0, fast: bool = False) -> list[FailureModel]:
    """The compared line-up; ``fast`` trims MCMC sweeps for quick runs."""
    sweeps = (50, 20) if fast else (80, 30)
    hbp_sweeps = (120, 40) if fast else (250, 100)
    return [
        DPMHBPModel(seed=seed, n_sweeps=sweeps[0], burn_in=sweeps[1]),
        HBPBestModel(seed=seed, c_group=15.0, n_sweeps=hbp_sweeps[0], burn_in=hbp_sweeps[1]),
        CoxPHModel(),
        SVMRankingModel(seed=seed),
        WeibullModel(),
        AUCRankingModel(seed=seed, generations=30 if fast else 60),
    ]


@dataclass
class ModelEvaluation:
    """One model's scores and metrics on one region instance."""

    model_name: str
    scores: np.ndarray
    auc: float
    auc_budget_permyriad: float  # AUC over [0, 1%] in ‱
    budget: float = 0.01

    def curve(self, labels: np.ndarray, lengths: np.ndarray | None = None) -> DetectionCurve:
        """Detection curve against the given labels."""
        return detection_curve(self.scores, labels, lengths=lengths)


@dataclass
class RegionRun:
    """All models evaluated on one generated region instance."""

    region: str
    seed: int
    labels: np.ndarray
    pipe_lengths: np.ndarray
    evaluations: dict[str, ModelEvaluation] = field(default_factory=dict)

    def auc(self, model_name: str) -> float:
        return self.evaluations[model_name].auc

    def auc_budget(self, model_name: str) -> float:
        return self.evaluations[model_name].auc_budget_permyriad


def prepare_region_data(
    region: str,
    seed: int | None = None,
    scale: float | None = None,
    pipe_class: PipeClass | None = PipeClass.CWM,
    feature_config: FeatureConfig | None = None,
) -> ModelData:
    """Generate a region and build the shared model inputs.

    Memoised per (region, scale, seed, pipe class, feature config) via
    :func:`repro.parallel.cached_model_data`, so repeated evaluations of
    the same generated region pay the generation and feature-assembly
    cost once per process.
    """
    return cached_model_data(
        region,
        scale=scale,
        seed=seed,
        pipe_class=pipe_class,
        feature_config=feature_config,
    )


def evaluate_models(
    data: ModelData,
    models: Sequence[FailureModel],
    budget: float = 0.01,
    region: str = "?",
    seed: int = 0,
) -> RegionRun:
    """Fit and score every model on one prepared region."""
    labels = data.pipe_fail_test
    if labels.sum() == 0:
        raise ValueError(
            f"region {region!r} (seed {seed}) has no test-year failures; "
            "increase the scale or use another seed"
        )
    run = RegionRun(
        region=region, seed=seed, labels=labels, pipe_lengths=data.pipe_lengths
    )
    for model in models:
        scores = model.fit_predict(data)
        run.evaluations[model.name] = ModelEvaluation(
            model_name=model.name,
            scores=scores,
            auc=empirical_auc(scores, labels),
            auc_budget_permyriad=permyriad(auc_at_budget(scores, labels, budget=budget)),
            budget=budget,
        )
    return run


@dataclass
class ComparisonResult:
    """Repeated-evaluation results over regions × models × seeds."""

    runs: dict[str, list[RegionRun]]  # region -> one RegionRun per repeat

    @property
    def regions(self) -> list[str]:
        return list(self.runs)

    def model_names(self) -> list[str]:
        first = next(iter(self.runs.values()))[0]
        return list(first.evaluations)

    def auc_samples(self, region: str, model: str) -> np.ndarray:
        """Per-repeat full-range AUCs."""
        return np.asarray([r.auc(model) for r in self.runs[region]])

    def budget_samples(self, region: str, model: str) -> np.ndarray:
        """Per-repeat 1%-budget AUCs (‱)."""
        return np.asarray([r.auc_budget(model) for r in self.runs[region]])

    def mean_auc(self, region: str, model: str) -> float:
        return float(self.auc_samples(region, model).mean())

    def mean_budget_auc(self, region: str, model: str) -> float:
        return float(self.budget_samples(region, model).mean())

    def t_test(
        self, region: str, model_a: str, model_b: str, metric: str = "auc"
    ) -> TTestResult:
        """One-sided paired t-test that ``model_a`` beats ``model_b``."""
        samples = self.auc_samples if metric == "auc" else self.budget_samples
        return paired_t_test(samples(region, model_a), samples(region, model_b))


def _comparison_cell(task: tuple) -> RegionRun:
    """Evaluate one independent (region, repeat) cell.

    Module-level (not a closure) so process pools can pickle it. The cell
    carries everything it needs; each worker regenerates / fetches its
    region from the cache and fits a fresh model line-up, so cells are
    independent and their results depend only on the seeds they carry.
    """
    region, repeat, seed, scale, budget, fast, feature_config, models_factory = task
    data = prepare_region_data(
        region, seed=seed, scale=scale, feature_config=feature_config
    )
    factory = models_factory or (lambda s: default_models(seed=s, fast=fast))
    models = factory(repeat)
    return evaluate_models(data, models, budget=budget, region=region, seed=seed or 0)


def run_comparison(
    regions: Sequence[str] = ("A", "B", "C"),
    n_repeats: int = 5,
    scale: float | None = None,
    models_factory: ModelFactory | None = None,
    budget: float = 0.01,
    base_seed: int = 0,
    fast: bool = True,
    feature_config: FeatureConfig | None = None,
    jobs: int | None = None,
    executor: str | None = None,
) -> ComparisonResult:
    """The full Table 18.3/18.4 experiment.

    Each repeat regenerates every region with seed ``base_seed + repeat``
    (repeat 0 uses the region's canonical seed) and refits all models, so
    per-repeat metrics are paired across models.

    The (region, repeat) cells are independent given their seeds, so they
    fan across the executor selected by ``jobs``/``executor`` (or the
    ``REPRO_JOBS``/``REPRO_EXECUTOR`` environment variables); results are
    bit-identical to a serial run. With a process executor, a custom
    ``models_factory`` must be picklable (a module-level function).
    """
    if n_repeats < 1:
        raise ValueError("need at least one repeat")
    cells = [
        (
            region,
            repeat,
            None if repeat == 0 else base_seed + 1000 + repeat,
            scale,
            budget,
            fast,
            feature_config,
            models_factory,
        )
        for repeat in range(n_repeats)
        for region in regions
    ]
    results = parallel_map(_comparison_cell, cells, resolve_executor(jobs, executor))
    runs: dict[str, list[RegionRun]] = {r: [] for r in regions}
    for cell_run in results:  # cells are repeat-major, so repeats stay ordered
        runs[cell_run.region].append(cell_run)
    return ComparisonResult(runs=runs)
