"""Experiment runner: the paper's train/test protocol over models × regions.

Protocol (§18.4): critical water mains only; train on the 1998–2008
failure records, test on 2009; rank pipes by predicted risk; report the
full-range AUC and the 1%-budget AUC (in ‱), plus detection curves; and
assess significance with one-sided paired t-tests over repeated
evaluations (each repeat regenerates the region with a fresh seed and
refits every model on it, giving paired per-repeat AUC samples).
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from .. import telemetry
from ..core.base import FailureModel
from ..core.dpmhbp import DPMHBPModel
from ..core.hbp import HBPBestModel
from ..core.ranking.model import AUCRankingModel, SVMRankingModel
from ..core.survival_models import CoxPHModel, WeibullModel
from ..features.builder import FeatureConfig, ModelData
from ..network.pipe import PipeClass
from ..parallel import cached_model_data, resolve_executor, safe_parallel_map
from ..runs.engine import CellExecutionError, CellOutcome, RunPolicy, execute_cell
from ..runs.faults import FaultInjector
from ..runs.journal import RunJournal
from ..runs.spec import CellSpec
from .metrics import DetectionCurve, auc_at_budget, detection_curve, empirical_auc, permyriad
from .significance import TTestResult, paired_t_test

#: The model line-up of Table 18.3 (plus the AUC-optimised ranker).
PAPER_MODELS: tuple[str, ...] = ("DPMHBP", "HBP", "Cox", "SVM", "Weibull")

ModelFactory = Callable[[int], list[FailureModel]]


def default_models(seed: int = 0, fast: bool = False) -> list[FailureModel]:
    """The compared line-up; ``fast`` trims MCMC sweeps for quick runs."""
    sweeps = (50, 20) if fast else (80, 30)
    hbp_sweeps = (120, 40) if fast else (250, 100)
    return [
        DPMHBPModel(seed=seed, n_sweeps=sweeps[0], burn_in=sweeps[1]),
        HBPBestModel(seed=seed, c_group=15.0, n_sweeps=hbp_sweeps[0], burn_in=hbp_sweeps[1]),
        CoxPHModel(),
        SVMRankingModel(seed=seed),
        WeibullModel(),
        AUCRankingModel(seed=seed, generations=30 if fast else 60),
    ]


@dataclass
class ModelEvaluation:
    """One model's scores and metrics on one region instance."""

    model_name: str
    scores: np.ndarray
    auc: float
    auc_budget_permyriad: float  # AUC over [0, 1%] in ‱
    budget: float = 0.01

    def curve(self, labels: np.ndarray, lengths: np.ndarray | None = None) -> DetectionCurve:
        """Detection curve against the given labels."""
        return detection_curve(self.scores, labels, lengths=lengths)


@dataclass
class RegionRun:
    """All models evaluated on one generated region instance."""

    region: str
    seed: int
    labels: np.ndarray
    pipe_lengths: np.ndarray
    evaluations: dict[str, ModelEvaluation] = field(default_factory=dict)

    def auc(self, model_name: str) -> float:
        return self.evaluations[model_name].auc

    def auc_budget(self, model_name: str) -> float:
        return self.evaluations[model_name].auc_budget_permyriad

    def ranked(self, metric: str = "auc") -> list[ModelEvaluation]:
        """Evaluations best-first by ``metric`` (``"auc"`` or ``"budget"``).

        Prefer this over iterating ``run.evaluations`` when order matters:
        the dict preserves *fit* order (the line-up's), which is a
        deprecated thing to rely on for presentation.
        """
        if metric not in ("auc", "budget"):
            raise ValueError(f"metric must be 'auc' or 'budget', got {metric!r}")
        key = (
            (lambda ev: ev.auc)
            if metric == "auc"
            else (lambda ev: ev.auc_budget_permyriad)
        )
        return sorted(self.evaluations.values(), key=key, reverse=True)


def prepare_region_data(
    region: str,
    seed: int | None = None,
    scale: float | None = None,
    pipe_class: PipeClass | None = PipeClass.CWM,
    feature_config: FeatureConfig | None = None,
) -> ModelData:
    """Generate a region and build the shared model inputs.

    Memoised per (region, scale, seed, pipe class, feature config) via
    :func:`repro.parallel.cached_model_data`, so repeated evaluations of
    the same generated region pay the generation and feature-assembly
    cost once per process.
    """
    return cached_model_data(
        region,
        scale=scale,
        seed=seed,
        pipe_class=pipe_class,
        feature_config=feature_config,
    )


class NoTestFailuresError(ValueError):
    """A generated region has no test-year failures, so AUC is undefined.

    The known degenerate mode of small-scale generation; under
    ``on_error="retry"`` the grid engine handles it by retrying the cell
    with a deterministically reseeded region (:meth:`CellSpec.reseeded`).
    """


def evaluate_models(
    data: ModelData,
    models: Sequence[FailureModel],
    budget: float = 0.01,
    region: str = "?",
    seed: int = 0,
) -> RegionRun:
    """Fit and score every model on one prepared region."""
    labels = data.pipe_fail_test
    if labels.sum() == 0:
        raise NoTestFailuresError(
            f"region {region!r} (seed {seed}) has no test-year failures; "
            "increase the scale or use another seed"
        )
    run = RegionRun(
        region=region, seed=seed, labels=labels, pipe_lengths=data.pipe_lengths
    )
    for model in models:
        with telemetry.span("model.fit", model=model.name, region=region):
            scores = model.fit_predict(data)
        telemetry.count("models.fitted")
        run.evaluations[model.name] = ModelEvaluation(
            model_name=model.name,
            scores=scores,
            auc=empirical_auc(scores, labels),
            auc_budget_permyriad=permyriad(auc_at_budget(scores, labels, budget=budget)),
            budget=budget,
        )
    return run


@dataclass
class ComparisonResult:
    """Repeated-evaluation results over regions × models × seeds.

    ``failures`` holds the outcome envelopes of cells that were skipped or
    exhausted their retries (empty for a clean or ``on_error="raise"``
    run); ``run_dir`` points at the journal when the run was journalled.
    """

    runs: dict[str, list[RegionRun]]  # region -> one RegionRun per repeat
    failures: list["CellOutcome"] = field(default_factory=list)
    run_dir: str | None = None

    @property
    def regions(self) -> list[str]:
        return list(self.runs)

    def model_names(self) -> list[str]:
        first = next(iter(self.runs.values()))[0]
        return list(first.evaluations)

    def auc_samples(self, region: str, model: str) -> np.ndarray:
        """Per-repeat full-range AUCs."""
        return np.asarray([r.auc(model) for r in self.runs[region]])

    def budget_samples(self, region: str, model: str) -> np.ndarray:
        """Per-repeat 1%-budget AUCs (‱)."""
        return np.asarray([r.auc_budget(model) for r in self.runs[region]])

    def mean_auc(self, region: str, model: str) -> float:
        return float(self.auc_samples(region, model).mean())

    def mean_budget_auc(self, region: str, model: str) -> float:
        return float(self.budget_samples(region, model).mean())

    def t_test(
        self, region: str, model_a: str, model_b: str, metric: str = "auc"
    ) -> TTestResult:
        """One-sided paired t-test that ``model_a`` beats ``model_b``."""
        samples = self.auc_samples if metric == "auc" else self.budget_samples
        return paired_t_test(samples(region, model_a), samples(region, model_b))


def _comparison_cell(task: CellSpec | tuple) -> RegionRun:
    """Evaluate one independent (region, repeat) cell.

    Module-level (not a closure) so process pools can pickle it. The cell
    carries everything it needs; each worker regenerates / fetches its
    region from the cache and fits a fresh model line-up, so cells are
    independent and their results depend only on the seeds they carry.

    Accepts a :class:`CellSpec` (the canonical form) or the legacy
    positional 8-tuple, which old pickled call sites may still ship.
    """
    spec = CellSpec.from_task(task)
    data = prepare_region_data(
        spec.region, seed=spec.seed, scale=spec.scale, feature_config=spec.feature_config
    )
    factory = spec.models_factory or (lambda s: default_models(seed=s, fast=spec.fast))
    models = factory(spec.repeat)
    return evaluate_models(
        data, models, budget=spec.budget, region=spec.region, seed=spec.seed or 0
    )


def _grid_config(
    regions: Sequence[str],
    n_repeats: int,
    scale: float | None,
    models_factory: ModelFactory | None,
    budget: float,
    base_seed: int,
    fast: bool,
    feature_config: FeatureConfig | None,
) -> dict:
    """The journal's config fingerprint payload: everything that shapes results.

    The model line-up is fingerprinted through the :meth:`FailureModel.get_params`
    contract on a throwaway ``factory(0)`` instantiation (cheap — dataclass
    construction only), so a resumed run with a silently changed line-up is
    rejected instead of producing a half-and-half grid.
    """
    factory = models_factory or (lambda s: default_models(seed=s, fast=fast))
    line_up = [
        {"type": type(m).__name__, "name": m.name, "params": m.get_params()}
        for m in factory(0)
    ]
    return {
        "protocol": "table_18_3/18_4",
        "regions": list(regions),
        "n_repeats": n_repeats,
        "scale": scale,
        "budget": budget,
        "base_seed": base_seed,
        "fast": fast,
        "feature_config": asdict(feature_config) if feature_config is not None else None,
        "models_factory": (
            f"{getattr(models_factory, '__module__', '?')}."
            f"{getattr(models_factory, '__qualname__', repr(models_factory))}"
            if models_factory is not None
            else None
        ),
        "models": line_up,
    }


def run_comparison(
    regions: Sequence[str] = ("A", "B", "C"),
    n_repeats: int = 5,
    scale: float | None = None,
    models_factory: ModelFactory | None = None,
    budget: float = 0.01,
    base_seed: int = 0,
    fast: bool = True,
    feature_config: FeatureConfig | None = None,
    jobs: int | None = None,
    executor: str | None = None,
    run_dir: str | Path | None = None,
    resume: str | Path | None = None,
    on_error: str = "raise",
    retries: int = 2,
    cell_timeout: float | None = None,
    fault_injector: FaultInjector | None = None,
) -> ComparisonResult:
    """The full Table 18.3/18.4 experiment — fault-tolerant and resumable.

    Each repeat regenerates every region with seed ``base_seed + repeat``
    (repeat 0 uses the region's canonical seed) and refits all models, so
    per-repeat metrics are paired across models.

    The (region, repeat) cells are independent given their seeds, so they
    fan across the executor selected by ``jobs``/``executor`` (or the
    ``REPRO_JOBS``/``REPRO_EXECUTOR`` environment variables); results are
    bit-identical to a serial run. With a process executor, a custom
    ``models_factory`` must be picklable (a module-level function).

    Fault tolerance (see :mod:`repro.runs`):

    * ``run_dir`` — journal the run there: a config-fingerprinted manifest,
      a JSONL event log, and an atomic checkpoint per completed cell,
      written from inside the worker so a killed process loses only its
      in-flight cells.
    * ``resume`` — continue a journalled run: finished cells are loaded
      from their checkpoints *bit-identically* (corrupt ones recompute);
      the configuration must fingerprint-match the manifest.
    * ``on_error`` — ``"raise"`` (default, old behaviour) aborts the grid
      on the first failed cell; ``"skip"`` drops failing cells into
      ``result.failures`` and keeps going; ``"retry"`` gives each cell
      ``retries`` extra attempts — same seed for transient faults, a
      deterministically reseeded region for
      :class:`NoTestFailuresError` — then skips.
    * ``cell_timeout`` — soft per-cell seconds budget; an overrunning cell
      counts as failed under ``on_error``.
    * ``fault_injector`` — test hook to kill/stall chosen cells
      (:class:`repro.runs.FaultInjector`).
    """
    if n_repeats < 1:
        raise ValueError("need at least one repeat")
    policy = RunPolicy(
        on_error=on_error,
        retries=retries,
        cell_timeout=cell_timeout,
        fault_injector=fault_injector,
    )
    specs = [
        CellSpec(
            region=region,
            repeat=repeat,
            seed=None if repeat == 0 else base_seed + 1000 + repeat,
            scale=scale,
            budget=budget,
            fast=fast,
            feature_config=feature_config,
            models_factory=models_factory,
        )
        for repeat in range(n_repeats)
        for region in regions
    ]

    config = _grid_config(
        regions, n_repeats, scale, models_factory, budget, base_seed, fast, feature_config
    )
    journal: RunJournal | None = None
    if resume is not None:
        journal = RunJournal.open(resume)
        journal.check_config(config)
    elif run_dir is not None:
        journal = RunJournal.create(run_dir, config)

    # Traces live beside the journal so they resume with the run: an
    # enabled-but-unbound recorder gets pointed at <run_dir>/trace.jsonl
    # (also exported via REPRO_TRACE for process-pool workers).
    recorder = telemetry.get_recorder()
    if journal is not None and recorder.enabled and recorder.trace_path is None:
        recorder.set_trace_path(Path(journal.run_dir) / telemetry.TRACE_NAME)

    restored: dict[str, RegionRun] = (
        journal.load_completed(specs) if journal is not None else {}
    )
    pending = [spec for spec in specs if spec.cell_id not in restored]
    if journal is not None:
        journal.log_event(
            "run_started",
            n_cells=len(specs),
            n_restored=len(restored),
            on_error=on_error,
        )

    journal_dir = str(journal.run_dir) if journal is not None else None
    tasks = [(spec, _comparison_cell, journal_dir, policy) for spec in pending]
    with telemetry.span(
        "grid", cells=len(specs), pending=len(pending), restored=len(restored)
    ):
        # chunksize=1: cells are few and expensive (six model fits each) —
        # batching them would let one slow cell block its batch-mates. The
        # processes backend reuses a persistent pool across grids, with the
        # parent's built regions published zero-copy to the workers (see
        # repro.parallel.pool / repro.parallel.shm).
        envelopes = safe_parallel_map(
            execute_cell, tasks, resolve_executor(jobs, executor), chunksize=1
        )
    # Envelope errors are infrastructure failures (unpicklable factory, dead
    # journal directory, …) — never cell failures, which execute_cell already
    # captures — so they always raise, regardless of on_error.
    outcomes = [envelope.unwrap() for envelope in envelopes]

    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures and on_error == "raise":
        if journal is not None:
            journal.log_event("run_aborted", failed=failures[0].spec.cell_id)
        raise CellExecutionError(failures[0])

    by_cell: dict[str, RegionRun] = dict(restored)
    by_cell.update(
        {spec.cell_id: outcome.run for spec, outcome in zip(pending, outcomes) if outcome.ok}
    )
    runs: dict[str, list[RegionRun]] = {region: [] for region in regions}
    for spec in specs:  # specs are repeat-major, so repeats stay ordered
        cell_run = by_cell.get(spec.cell_id)
        if cell_run is not None:
            runs[cell_run.region].append(cell_run)
    empty = [region for region, region_runs in runs.items() if not region_runs]
    for region in empty:
        warnings.warn(
            f"region {region!r}: every cell failed; dropping it from the result",
            stacklevel=2,
        )
        del runs[region]
    if not runs:
        raise CellExecutionError(failures[0])
    if failures:
        warnings.warn(
            f"{len(failures)} of {len(specs)} cells failed and were skipped "
            f"({', '.join(sorted(o.spec.cell_id for o in failures))}); "
            "see result.failures / the run journal for tracebacks",
            stacklevel=2,
        )
    if journal is not None:
        journal.log_event(
            "run_completed", n_ok=sum(len(v) for v in runs.values()), n_failed=len(failures)
        )
    return ComparisonResult(runs=runs, failures=failures, run_dir=journal_dir)
