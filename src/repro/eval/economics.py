"""Economic evaluation of inspection plans.

The chapter motivates prioritisation economically: unplanned CWM failures
carry "tremendous economic and social costs", physical inspection is
expensive, and only ~1% of critical mains can be assessed a year. This
module turns a risk ranking into money: given per-kilometre inspection
cost and the cost gap between a reactive failure (emergency repair +
service interruption + third-party damage) and a proactive renewal, it
computes the expected net savings of inspecting the top of the ranking —
the quantity a utility actually optimises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.builder import ModelData


@dataclass(frozen=True)
class CostModel:
    """Unit costs in arbitrary currency.

    Defaults are order-of-magnitude figures for metropolitan critical
    mains: condition assessment ~10k/km; a reactive trunk-main failure
    (emergency repair, water loss, flooding damage, traffic disruption)
    ~250k; a planned renewal of the weak section ~60k.
    """

    inspection_per_km: float = 10_000.0
    reactive_failure: float = 250_000.0
    proactive_renewal: float = 60_000.0
    #: Probability an inspection catches an incipient failure in time.
    detection_effectiveness: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.detection_effectiveness <= 1.0:
            raise ValueError("detection_effectiveness must lie in [0, 1]")
        if min(self.inspection_per_km, self.reactive_failure, self.proactive_renewal) < 0:
            raise ValueError("costs must be non-negative")

    @property
    def averted_cost_per_failure(self) -> float:
        """Expected saving when a failing pipe is inspected in time."""
        return self.detection_effectiveness * (self.reactive_failure - self.proactive_renewal)


@dataclass(frozen=True)
class PlanEconomics:
    """Outcome of costing one inspection plan against test-year failures."""

    n_inspected: int
    inspected_km: float
    inspection_cost: float
    failures_caught: int
    failures_missed: int
    averted_cost: float

    @property
    def net_savings(self) -> float:
        """Averted failure cost minus inspection spend."""
        return self.averted_cost - self.inspection_cost

    @property
    def benefit_cost_ratio(self) -> float:
        """Averted cost per unit of inspection spend (inf when free)."""
        if self.inspection_cost == 0:
            return float("inf") if self.averted_cost > 0 else 0.0
        return self.averted_cost / self.inspection_cost


def plan_economics(
    data: ModelData,
    scores: np.ndarray,
    budget_fraction: float,
    costs: CostModel | None = None,
) -> PlanEconomics:
    """Cost out inspecting the top of a ranking under a length budget.

    Pipes are taken in descending score order until ``budget_fraction`` of
    the total network length is reached; a test-year failure on an
    inspected pipe counts as caught (with the cost model's detection
    effectiveness applied in expectation).
    """
    if not 0 < budget_fraction <= 1:
        raise ValueError("budget_fraction must be in (0, 1]")
    scores = np.asarray(scores, dtype=float)
    if scores.shape != (data.n_pipes,):
        raise ValueError("need one score per pipe")
    costs = costs or CostModel()

    budget_m = budget_fraction * float(data.pipe_lengths.sum())
    order = np.argsort(-scores, kind="mergesort")
    cum = np.cumsum(data.pipe_lengths[order])
    n_take = int(np.searchsorted(cum, budget_m, side="right"))
    n_take = max(n_take, 1)
    chosen = order[:n_take]

    inspected_km = float(data.pipe_lengths[chosen].sum()) / 1000.0
    caught = int(data.pipe_fail_test[chosen].sum())
    total = int(data.pipe_fail_test.sum())
    return PlanEconomics(
        n_inspected=n_take,
        inspected_km=inspected_km,
        inspection_cost=inspected_km * costs.inspection_per_km,
        failures_caught=caught,
        failures_missed=total - caught,
        averted_cost=caught * costs.averted_cost_per_failure,
    )


def savings_curve(
    data: ModelData,
    scores: np.ndarray,
    budgets: np.ndarray | None = None,
    costs: CostModel | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Net savings as a function of the inspection budget fraction.

    Returns ``(budgets, net_savings)``; the argmax is the economically
    optimal inspection intensity for this ranking and cost model.
    """
    if budgets is None:
        budgets = np.linspace(0.002, 0.2, 25)
    budgets = np.asarray(budgets, dtype=float)
    savings = np.array(
        [plan_economics(data, scores, float(b), costs).net_savings for b in budgets]
    )
    return budgets, savings
