"""Paper-style text tables for the reproduced results.

Formatters for:

* Table 18.1 — pipe/failure counts per region and class;
* Table 18.3 — AUC (100%) and AUC (1%, ‱) per model per region;
* Table 18.4 — one-sided paired t statistics of DPMHBP against the rest;
* Figures 18.5/18.6 — binned choke-rate relationships;
* Figures 18.7/18.8 — detection-curve readouts at fixed budgets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.datasets import PipeDataset
from ..network.pipe import PipeClass
from .experiment import ComparisonResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-padded columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[j]) for r in cells) for j in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(widths[j]) for j, c in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def table_18_1(datasets: Sequence[PipeDataset]) -> str:
    """Data summary in the shape of the paper's Table 18.1."""
    rows = []
    for ds in datasets:
        lo, hi = ds.network.laid_year_range()
        obs = f"{ds.years[0]}-{ds.years[-1]}"
        rows.append(
            [f"Region {ds.spec.name}", "All", ds.network.n_pipes, len(ds.failures), f"{lo}-{hi}", obs]
        )
        cwm_pipes = ds.network.pipes(PipeClass.CWM)
        if cwm_pipes:
            lo_c = min(p.laid_year for p in cwm_pipes)
            hi_c = max(p.laid_year for p in cwm_pipes)
            rows.append(
                ["", "CWM", len(cwm_pipes), ds.n_failures(PipeClass.CWM), f"{lo_c}-{hi_c}", obs]
            )
    return format_table(
        ["Region", "Class", "# Pipes", "# Failures", "Laid years", "Observation"], rows
    )


def table_18_3(result: ComparisonResult, models: Sequence[str] | None = None) -> str:
    """AUC table: one row for AUC(100%), one for AUC(1%) in ‱."""
    models = list(models or result.model_names())
    headers = ["Metric"] + [f"{r}:{m}" for r in result.regions for m in models]
    row_full = ["AUC(100%)"] + [
        f"{100 * result.mean_auc(r, m):.2f}%" for r in result.regions for m in models
    ]
    row_budget = ["AUC(1%)"] + [
        f"{result.mean_budget_auc(r, m):.2f}bp" for r in result.regions for m in models
    ]
    return format_table(headers, [row_full, row_budget])


def table_18_4(
    result: ComparisonResult, reference: str = "DPMHBP", models: Sequence[str] | None = None
) -> str:
    """Paired t statistics (one-sided, reference beats other) per region."""
    models = [m for m in (models or result.model_names()) if m != reference]
    rows = []
    for metric, label in (("auc", "AUC(100%)"), ("budget", "AUC(1%)")):
        for region in result.regions:
            row = [f"{label} {region}"]
            for m in models:
                t = result.t_test(region, reference, m, metric=metric)
                stamp = "<0.05" if t.p_value < 0.05 else f"={t.p_value:.2f}"
                row.append(f"{t.statistic:.2f}({stamp})")
            rows.append(row)
    return format_table(["Setting"] + [f"vs {m}" for m in models], rows)


def binned_rate_table(
    values: np.ndarray,
    failures: np.ndarray,
    exposure: np.ndarray,
    n_bins: int = 8,
    value_name: str = "value",
) -> tuple[str, np.ndarray, np.ndarray]:
    """Binned failure-rate relationship (Figs 18.5/18.6 as a table).

    Bins ``values`` into quantile bins and reports the failure rate
    (failures per unit exposure) per bin. Returns (table, bin centres,
    bin rates) so benchmarks can assert monotonicity.
    """
    values = np.asarray(values, dtype=float)
    failures = np.asarray(failures, dtype=float)
    exposure = np.asarray(exposure, dtype=float)
    if not (values.shape == failures.shape == exposure.shape):
        raise ValueError("values, failures and exposure must align")
    edges = np.quantile(values, np.linspace(0.0, 1.0, n_bins + 1))
    edges[-1] += 1e-9
    centres, rates, rows = [], [], []
    for b in range(n_bins):
        mask = (values >= edges[b]) & (values < edges[b + 1])
        exp_sum = exposure[mask].sum()
        if exp_sum <= 0:
            continue
        rate = failures[mask].sum() / exp_sum
        centre = float(values[mask].mean())
        centres.append(centre)
        rates.append(rate)
        rows.append([f"{centre:.3f}", f"{int(failures[mask].sum())}", f"{rate:.4f}"])
    table = format_table([value_name, "failures", "rate"], rows)
    return table, np.asarray(centres), np.asarray(rates)


def detection_readout(result: ComparisonResult, budgets: Sequence[float] = (0.01, 0.05, 0.10, 0.20)) -> str:
    """Detected-failure percentages at fixed budgets (Fig. 18.7/18.8 readout)."""
    rows = []
    for region in result.regions:
        run = result.runs[region][0]
        for name, ev in run.evaluations.items():
            curve = ev.curve(run.labels)
            rows.append(
                [region, name]
                + [f"{100 * curve.detected_at(b):.0f}%" for b in budgets]
            )
    headers = ["Region", "Model"] + [f"@{100 * b:g}%" for b in budgets]
    return format_table(headers, rows)
