"""Statistical significance testing for model comparisons.

The paper evaluates significance with a one-sided paired t-test at the 5%
level on AUC values from repeated evaluations. Implemented from scratch
(t statistic and its p-value via the regularised incomplete beta
function), with the repeated-evaluation driver that produces the paired
samples: each repeat regenerates the region with a different seed and
re-fits every model, so the pairing is "same data, different model".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import betainc


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a paired t-test."""

    statistic: float
    p_value: float
    df: int
    mean_difference: float

    def significant(self, level: float = 0.05) -> bool:
        """True when the one-sided p-value is below ``level``."""
        return self.p_value < level


def t_sf(t: float, df: int) -> float:
    """Survival function of Student's t (P[T > t]) via incomplete beta."""
    if df < 1:
        raise ValueError("df must be >= 1")
    x = df / (df + t * t)
    tail = 0.5 * float(betainc(df / 2.0, 0.5, x))
    return tail if t >= 0 else 1.0 - tail


def paired_t_test(
    a: np.ndarray, b: np.ndarray, alternative: str = "greater"
) -> TTestResult:
    """Paired t-test of ``a`` against ``b``.

    ``alternative="greater"`` tests H1: mean(a − b) > 0 — "method a is
    better than method b" when larger is better (AUC). ``"two-sided"`` is
    also supported.
    """
    if alternative not in ("greater", "two-sided"):
        raise ValueError(f"unknown alternative {alternative!r}")
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.shape != b.shape:
        raise ValueError("paired samples must have equal length")
    n = a.size
    if n < 2:
        raise ValueError("need at least two pairs")
    d = a - b
    mean = float(d.mean())
    sd = float(d.std(ddof=1))
    if sd == 0.0:
        # Degenerate: identical pairs ⇒ no evidence either way unless the
        # mean difference is itself nonzero (then it is infinitely strong).
        stat = np.inf if mean > 0 else (-np.inf if mean < 0 else 0.0)
        p = 0.0 if mean > 0 else 1.0
        if alternative == "two-sided":
            p = 0.0 if mean != 0 else 1.0
        return TTestResult(statistic=stat, p_value=p, df=n - 1, mean_difference=mean)
    stat = mean / (sd / np.sqrt(n))
    if alternative == "greater":
        p = t_sf(stat, n - 1)
    elif alternative == "two-sided":
        p = 2.0 * t_sf(abs(stat), n - 1)
    else:
        raise ValueError(f"unknown alternative {alternative!r}")
    return TTestResult(statistic=float(stat), p_value=float(p), df=n - 1, mean_difference=mean)


def bootstrap_auc_samples(
    scores: np.ndarray,
    labels: np.ndarray,
    n_boot: int = 200,
    seed: int = 0,
) -> np.ndarray:
    """Bootstrap AUC replicates (resampling pipes with replacement).

    A cheaper alternative to seed-repeat evaluation when only one fitted
    model is available; resamples discard draws with no positive or no
    negative examples.
    """
    from .metrics import empirical_auc

    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=float).ravel()
    rng = np.random.default_rng(seed)
    out: list[float] = []
    n = scores.size
    attempts = 0
    while len(out) < n_boot and attempts < 20 * n_boot:
        attempts += 1
        idx = rng.integers(0, n, size=n)
        sample_labels = labels[idx]
        if sample_labels.sum() in (0, sample_labels.size):
            continue
        out.append(empirical_auc(scores[idx], sample_labels))
    if len(out) < n_boot:
        raise RuntimeError("could not draw enough valid bootstrap samples")
    return np.asarray(out)
