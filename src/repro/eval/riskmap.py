"""Risk maps: percentile-coloured network drawings with test-year failures.

Reproduces Fig. 18.9's visualisation: pipes coloured by predicted-risk
percentile band (red = top 10% high-risk), with the failures that actually
occurred in the test year overlaid as stars. Output is a standalone SVG
string/file — no plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..data.datasets import PipeDataset

#: (upper percentile bound, colour, legend label) from highest to lowest risk.
DEFAULT_BANDS: tuple[tuple[float, str, str], ...] = (
    (0.10, "#d62728", "top 10% risk"),
    (0.30, "#ff7f0e", "10–30%"),
    (0.60, "#ffd21f", "30–60%"),
    (1.00, "#1f77b4", "bottom 40%"),
)


@dataclass
class RiskMap:
    """A risk-banded view of a network for one model's scores."""

    dataset: PipeDataset
    scores: np.ndarray  # aligned with dataset.pipe_ids()
    bands: tuple[tuple[float, str, str], ...] = DEFAULT_BANDS

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=float)
        n = self.dataset.network.n_pipes
        if self.scores.shape != (n,):
            raise ValueError(f"need one score per pipe ({n}), got {self.scores.shape}")

    def band_of(self) -> np.ndarray:
        """Band index per pipe (0 = highest risk band)."""
        order = np.argsort(-self.scores, kind="mergesort")
        n = self.scores.size
        band_idx = np.empty(n, dtype=int)
        start = 0
        for b, (upper, _colour, _label) in enumerate(self.bands):
            end = int(round(upper * n))
            band_idx[order[start:end]] = b
            start = end
        band_idx[order[start:]] = len(self.bands) - 1
        return band_idx

    def test_failure_points(self) -> list[tuple[float, float]]:
        """Locations of the failures that occurred in the test year."""
        test_year = self.dataset.test_year
        return [r.location for r in self.dataset.failures if r.year == test_year]

    def top_band_hit_rate(self) -> float:
        """Share of test-year-failing pipes inside the top risk band."""
        bands = self.band_of()
        pipe_ids = self.dataset.pipe_ids()
        index = {pid: i for i, pid in enumerate(pipe_ids)}
        failed = {
            r.pipe_id for r in self.dataset.failures if r.year == self.dataset.test_year
        }
        failed_rows = [index[p] for p in failed if p in index]
        if not failed_rows:
            raise ValueError("no test-year failures on mapped pipes")
        return float(np.mean(bands[failed_rows] == 0))

    def to_svg(self, width: int = 800, stroke: float = 1.4) -> str:
        """Standalone SVG drawing of the banded network plus failure stars."""
        box = self.dataset.network.bounding_box(margin=50.0)
        scale = width / max(box.width, 1e-9)
        height = int(np.ceil(box.height * scale))

        def sx(x: float) -> float:
            return (x - box.min_x) * scale

        def sy(y: float) -> float:
            return height - (y - box.min_y) * scale  # flip: SVG y grows down

        band_idx = self.band_of()
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]
        pipes = self.dataset.network.pipes()
        # Draw low-risk bands first so high-risk pipes stay visible on top.
        for b in range(len(self.bands) - 1, -1, -1):
            colour = self.bands[b][1]
            for i, pipe in enumerate(pipes):
                if band_idx[i] != b:
                    continue
                for seg in pipe.segments:
                    parts.append(
                        f'<line x1="{sx(seg.start[0]):.1f}" y1="{sy(seg.start[1]):.1f}" '
                        f'x2="{sx(seg.end[0]):.1f}" y2="{sy(seg.end[1]):.1f}" '
                        f'stroke="{colour}" stroke-width="{stroke}"/>'
                    )
        for (x, y) in self.test_failure_points():
            parts.append(_star(sx(x), sy(y), 5.0))
        # Legend.
        for b, (_upper, colour, label) in enumerate(self.bands):
            y0 = 18 + 16 * b
            parts.append(
                f'<rect x="10" y="{y0 - 9}" width="12" height="10" fill="{colour}"/>'
                f'<text x="28" y="{y0}" font-size="12" font-family="sans-serif">{label}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save_svg(self, path: str | Path, width: int = 800) -> Path:
        """Write the SVG to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_svg(width=width))
        return path


def _star(cx: float, cy: float, r: float) -> str:
    """Five-pointed star polygon marker (black, as in the paper's figure)."""
    points = []
    for i in range(10):
        radius = r if i % 2 == 0 else r * 0.4
        angle = -np.pi / 2 + i * np.pi / 5
        points.append(f"{cx + radius * np.cos(angle):.1f},{cy + radius * np.sin(angle):.1f}")
    return f'<polygon points="{" ".join(points)}" fill="black"/>'
