"""High-level dataset assembly: one call builds a region ready for modelling.

``load_region("A")`` generates the network, its environmental layers, the
latent ground truth and the sampled failure records, and wraps everything
in a :class:`PipeDataset` with the failure-matrix and train/test helpers
every model consumes. Generation is deterministic given (region, scale,
seed) and memoised within the process.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from ..gis.canopy import CanopyMap
from ..gis.moisture import MoistureMap
from ..gis.soil import SoilLayers
from ..gis.traffic import TrafficNetwork
from ..network.network import PipeNetwork
from ..network.pipe import PipeClass
from .failures import GroundTruth, build_ground_truth, simulate_failures
from .generator import generate_network
from .regions import OBSERVATION_YEARS, TEST_YEAR, TRAIN_YEARS, RegionSpec, get_region
from .schema import FailureRecord


@dataclass
class EnvironmentLayers:
    """Environmental GIS layers of one region."""

    soil: SoilLayers
    traffic: TrafficNetwork
    canopy: CanopyMap | None = None
    moisture: MoistureMap | None = None


@dataclass
class PipeDataset:
    """A region's network, environment and failure records.

    ``ground_truth`` holds the simulator's latent hazard — exposed for
    tests and oracle ablations only; prediction models must not read it.
    """

    spec: RegionSpec
    network: PipeNetwork
    environment: EnvironmentLayers
    failures: list[FailureRecord]
    years: tuple[int, ...] = OBSERVATION_YEARS
    ground_truth: GroundTruth | None = None

    # -- id orderings (canonical for every matrix in the repo) ------------

    def pipe_ids(self) -> list[str]:
        """Pipe IDs in network insertion order."""
        return [p.pipe_id for p in self.network.iter_pipes()]

    def segment_ids(self) -> list[str]:
        """Segment IDs grouped by pipe, in network insertion order."""
        return [s.segment_id for s in self.network.segments()]

    # -- failure matrices ---------------------------------------------------

    def segment_failure_matrix(self, years: tuple[int, ...] | None = None) -> np.ndarray:
        """Binary (n_segments, n_years) failure matrix (Fig. 18.3 right)."""
        years = self.years if years is None else years
        index = {sid: i for i, sid in enumerate(self.segment_ids())}
        year_index = {y: j for j, y in enumerate(years)}
        matrix = np.zeros((len(index), len(years)), dtype=np.int8)
        for rec in self.failures:
            j = year_index.get(rec.year)
            i = index.get(rec.segment_id)
            if i is not None and j is not None:
                matrix[i, j] = 1
        return matrix

    def pipe_failure_matrix(self, years: tuple[int, ...] | None = None) -> np.ndarray:
        """Binary (n_pipes, n_years) matrix: pipe failed in year (Fig. 18.3 left)."""
        years = self.years if years is None else years
        index = {pid: i for i, pid in enumerate(self.pipe_ids())}
        year_index = {y: j for j, y in enumerate(years)}
        matrix = np.zeros((len(index), len(years)), dtype=np.int8)
        for rec in self.failures:
            j = year_index.get(rec.year)
            i = index.get(rec.pipe_id)
            if i is not None and j is not None:
                matrix[i, j] = 1
        return matrix

    def failure_counts_by_pipe(self, years: tuple[int, ...] | None = None) -> np.ndarray:
        """Failure *event counts* per pipe over ``years`` (segments summed)."""
        years = self.years if years is None else years
        index = {pid: i for i, pid in enumerate(self.pipe_ids())}
        counts = np.zeros(len(index))
        year_set = set(years)
        for rec in self.failures:
            if rec.year in year_set and rec.pipe_id in index:
                counts[index[rec.pipe_id]] += 1.0
        return counts

    # -- splits & subsets -----------------------------------------------------

    @property
    def train_years(self) -> tuple[int, ...]:
        """1998–2008 (first 11 observation years)."""
        return tuple(y for y in self.years if y != TEST_YEAR) if TEST_YEAR in self.years else self.years[:-1]

    @property
    def test_year(self) -> int:
        """2009 (the held-out final year)."""
        return TEST_YEAR if TEST_YEAR in self.years else self.years[-1]

    def split_failures(self) -> tuple[list[FailureRecord], list[FailureRecord]]:
        """(training records, test records) by the train/test year split."""
        train_years = set(self.train_years)
        train = [r for r in self.failures if r.year in train_years]
        test = [r for r in self.failures if r.year == self.test_year]
        return train, test

    def subset(self, pipe_class: PipeClass) -> "PipeDataset":
        """Dataset restricted to one pipe class (the experiments use CWMs).

        Environment layers are shared; the ground truth is dropped (its row
        ordering no longer matches the filtered network).
        """
        sub_network = PipeNetwork(region=f"{self.network.region}:{pipe_class.name}")
        keep_pipe_ids: set[str] = set()
        for pipe in self.network.iter_pipes():
            if pipe.pipe_class is pipe_class:
                sub_network.add_pipe(pipe)
                keep_pipe_ids.add(pipe.pipe_id)
        sub_failures = [r for r in self.failures if r.pipe_id in keep_pipe_ids]
        return replace(
            self, network=sub_network, failures=sub_failures, ground_truth=None
        )

    def n_failures(self, pipe_class: PipeClass | None = None) -> int:
        """Total failure events, optionally for one pipe class."""
        if pipe_class is None:
            return len(self.failures)
        class_ids = {p.pipe_id for p in self.network.pipes(pipe_class)}
        return sum(1 for r in self.failures if r.pipe_id in class_ids)


def build_environment(
    network: PipeNetwork, spec: RegionSpec, rng: np.random.Generator, with_vegetation: bool = False
) -> EnvironmentLayers:
    """Soil, traffic and (optionally) vegetation layers for a network."""
    bbox = network.bounding_box(margin=spec.block_size_m)
    soil = SoilLayers.random(bbox, rng)
    traffic = TrafficNetwork.from_street_grid(bbox, spec.block_size_m, rng)
    canopy = CanopyMap.random(bbox, rng) if with_vegetation else None
    moisture = (
        MoistureMap.random(bbox, rng, years=OBSERVATION_YEARS) if with_vegetation else None
    )
    return EnvironmentLayers(soil=soil, traffic=traffic, canopy=canopy, moisture=moisture)


@lru_cache(maxsize=16)
def _load_region_cached(name: str, scale: float | None, seed: int | None) -> PipeDataset:
    spec = get_region(name, scale=scale)
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    network = generate_network(spec, rng)
    environment = build_environment(network, spec, rng)
    truth = build_ground_truth(network, environment.soil, environment.traffic, spec, rng)
    failures = simulate_failures(network, truth, rng)
    return PipeDataset(
        spec=spec,
        network=network,
        environment=environment,
        failures=failures,
        ground_truth=truth,
    )


def load_region(name: str, scale: float | None = None, seed: int | None = None) -> PipeDataset:
    """Generate (or fetch from cache) one region's drinking-water dataset.

    Parameters
    ----------
    name:
        "A", "B" or "C".
    scale:
        Fraction of the paper's full counts to generate; default follows
        ``REPRO_SCALE`` (0.25 when unset).
    seed:
        Overrides the region's fixed seed — used by the repeated-evaluation
        significance tests.
    """
    return _load_region_cached(name.upper(), scale, seed)


#: Alias matching the train/test protocol constants.
__all__ = [
    "EnvironmentLayers",
    "PipeDataset",
    "build_environment",
    "load_region",
    "OBSERVATION_YEARS",
    "TRAIN_YEARS",
    "TEST_YEAR",
]
