"""Synthetic data: region specs, network generation, failure simulation, loaders."""

from .datasets import (
    EnvironmentLayers,
    PipeDataset,
    build_environment,
    load_region,
)
from .failures import GroundTruth, build_ground_truth, simulate_failures
from .generator import era_bucket, generate_network
from .regions import (
    DEFAULT_SCALE,
    OBSERVATION_YEARS,
    REGION_A,
    REGION_B,
    REGION_C,
    REGIONS,
    TEST_YEAR,
    TRAIN_YEARS,
    RegionSpec,
    default_scale,
    get_region,
)
from .schema import FailureRecord, read_failures_csv, write_failures_csv, write_pipes_csv
from .wastewater import (
    generate_wastewater_network,
    load_wastewater_region,
    simulate_chokes,
)

__all__ = [
    "EnvironmentLayers",
    "PipeDataset",
    "build_environment",
    "load_region",
    "GroundTruth",
    "build_ground_truth",
    "simulate_failures",
    "era_bucket",
    "generate_network",
    "DEFAULT_SCALE",
    "OBSERVATION_YEARS",
    "REGION_A",
    "REGION_B",
    "REGION_C",
    "REGIONS",
    "TEST_YEAR",
    "TRAIN_YEARS",
    "RegionSpec",
    "default_scale",
    "get_region",
    "FailureRecord",
    "read_failures_csv",
    "write_failures_csv",
    "write_pipes_csv",
    "generate_wastewater_network",
    "load_wastewater_region",
    "simulate_chokes",
]
