"""Waste-water (sewer) network and blockage ("choke") simulator.

The chapter's domain-knowledge discussion (Figs 18.5 and 18.6) uses waste
water pipes: a large share of blockages are caused by tree-root intrusion,
so choke rates rise steeply with tree canopy coverage and with soil
moisture. This module generates a sewer network (vitrified clay dominates
older stock, PVC the newer) and samples choke events whose hazard couples
multiplicatively to the canopy and moisture layers, reproducing the
positive relationships the figures report.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..gis.canopy import CanopyMap
from ..gis.moisture import MoistureMap
from ..network.network import PipeNetwork
from ..network.pipe import Coating, Material, Pipe, PipeSegment
from .datasets import PipeDataset, build_environment
from .regions import OBSERVATION_YEARS, RegionSpec, get_region
from .schema import FailureRecord

#: Sewer material mix by era: VC pre-1970s, concrete trunks, PVC after.
_SEWER_MATERIALS = {
    0: ([Material.VC, Material.CONC], [0.85, 0.15]),
    1: ([Material.VC, Material.CONC], [0.80, 0.20]),
    2: ([Material.VC, Material.CONC, Material.PVC], [0.60, 0.15, 0.25]),
    3: ([Material.PVC, Material.VC, Material.CONC], [0.55, 0.30, 0.15]),
    4: ([Material.PVC, Material.PE, Material.CONC], [0.70, 0.20, 0.10]),
}

#: Root-intrusion susceptibility (jointed clay pipes are most vulnerable).
_CHOKE_BASE = {
    Material.VC: 2.6,
    Material.CONC: 1.2,
    Material.PVC: 0.5,
    Material.PE: 0.4,
}


def _sewer_spec(spec: RegionSpec) -> RegionSpec:
    """Sewer variant of a water-region spec.

    The sewer network is smaller in pipe count (longer gravity runs) and
    chokes are ~1.5x as frequent as water-main breaks; diameters are all
    reticulation-sized, so the CWM split is not used downstream.
    """
    n_pipes = max(2, round(spec.n_pipes * 0.6))
    n_failures = round(spec.target_failures_all * 1.5)
    return replace(
        spec,
        name=f"{spec.name}-WW",
        n_pipes=n_pipes,
        n_cwm=max(1, round(n_pipes * 0.1)),
        target_failures_all=n_failures,
        target_failures_cwm=max(1, round(n_failures * 0.1)),
        seed=spec.seed + 7000,
    )


def generate_wastewater_network(spec: RegionSpec, rng: np.random.Generator) -> PipeNetwork:
    """Sewer network: gravity runs along the street grid, era-typed materials."""
    side = spec.side_m
    block = spec.block_size_m
    network = PipeNetwork(region=spec.name)
    n = spec.n_pipes
    lengths = np.clip(rng.lognormal(np.log(90.0), 0.45, n), 20.0, 400.0)
    laid = np.clip(
        spec.laid_year_lo
        + (spec.laid_year_hi - spec.laid_year_lo) * rng.beta(3.0, 2.5, n),
        spec.laid_year_lo,
        spec.laid_year_hi,
    ).astype(int)
    diameters = rng.choice(np.array([150.0, 225.0, 300.0]), size=n, p=[0.6, 0.3, 0.1])
    horizontal = rng.random(n) < 0.5
    n_streets = max(2, int(side // block))
    street_idx = rng.integers(0, n_streets + 1, size=n)
    start_along = rng.uniform(0.0, np.maximum(side - lengths, 1.0))
    lateral = street_idx * block + rng.normal(0.0, 4.0, n)

    from .generator import era_bucket  # local import avoids a cycle at import time

    for i in range(n):
        pipe_id = f"{spec.name}-W{i:05d}"
        if horizontal[i]:
            start = (float(start_along[i]), float(lateral[i]))
            end = (float(start_along[i] + lengths[i]), float(lateral[i]))
        else:
            start = (float(lateral[i]), float(start_along[i]))
            end = (float(lateral[i]), float(start_along[i] + lengths[i]))
        n_segments = max(1, int(round(lengths[i] / 30.0)))
        dx = (end[0] - start[0]) / n_segments
        dy = (end[1] - start[1]) / n_segments
        segments = [
            PipeSegment(
                segment_id=f"{pipe_id}/s{k}",
                pipe_id=pipe_id,
                start=(start[0] + k * dx, start[1] + k * dy),
                end=(start[0] + (k + 1) * dx, start[1] + (k + 1) * dy),
            )
            for k in range(n_segments)
        ]
        era = era_bucket(int(laid[i]))
        materials, probs = _SEWER_MATERIALS[era]
        material = materials[int(rng.choice(len(materials), p=np.asarray(probs) / np.sum(probs)))]
        network.add_pipe(
            Pipe(
                pipe_id=pipe_id,
                material=material,
                coating=Coating.NONE,
                diameter_mm=float(diameters[i]),
                laid_year=int(laid[i]),
                segments=segments,
            )
        )
    return network


def simulate_chokes(
    network: PipeNetwork,
    canopy: CanopyMap,
    moisture: MoistureMap,
    spec: RegionSpec,
    rng: np.random.Generator,
    years: tuple[int, ...] = OBSERVATION_YEARS,
) -> list[FailureRecord]:
    """Sample blockage events driven by roots (canopy × moisture × material).

    The hazard grows superlinearly with canopy coverage (root mass scales
    with canopy area) and linearly with moisture, and is calibrated by
    bisection to the sewer spec's total choke target.
    """
    from .failures import _calibrate_multiplier  # shared calibration core

    segments = network.segments()
    pipes = {p.pipe_id: p for p in network.iter_pipes()}
    midpoints = [s.midpoint for s in segments]
    lengths = np.asarray([s.length for s in segments])
    materials = [pipes[s.pipe_id].material for s in segments]
    laid = np.asarray([pipes[s.pipe_id].laid_year for s in segments], dtype=float)
    base = np.asarray([_CHOKE_BASE.get(m, 1.0) for m in materials])
    cover = canopy.coverage_at(midpoints)

    hazard = np.empty((len(segments), len(years)))
    for j, year in enumerate(years):
        wet = moisture.moisture_at(midpoints, year=year)
        age = np.maximum(year - laid, 0.0)
        hazard[:, j] = (
            base
            * (0.15 + 2.8 * cover**1.5)
            * (0.12 + 2.4 * wet)
            * (0.5 + (age / 50.0) ** 1.2)
            * (lengths / 40.0)
        )
    mult = _calibrate_multiplier(hazard.ravel(), spec.target_failures_all)
    prob = 1.0 - np.exp(-mult * hazard)
    draws = rng.random(prob.shape)
    hit_seg, hit_year = np.nonzero(draws < prob)
    records = [
        FailureRecord(
            year=int(years[j]),
            pipe_id=segments[i].pipe_id,
            segment_id=segments[i].segment_id,
            location=segments[i].midpoint,
        )
        for i, j in zip(hit_seg, hit_year)
    ]
    records.sort()
    return records


def load_wastewater_region(
    name: str, scale: float | None = None, seed: int | None = None
) -> PipeDataset:
    """Generate one region's waste-water dataset (chokes as failures)."""
    water_spec = get_region(name, scale=scale)
    spec = _sewer_spec(water_spec)
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    network = generate_wastewater_network(spec, rng)
    environment = build_environment(network, spec, rng, with_vegetation=True)
    assert environment.canopy is not None and environment.moisture is not None
    failures = simulate_chokes(
        network, environment.canopy, environment.moisture, spec, rng
    )
    return PipeDataset(
        spec=spec, network=network, environment=environment, failures=failures
    )
