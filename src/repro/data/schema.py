"""Record schemas and CSV round-trips for network and failure data.

Mirrors the paper's data collection section: *network data* consists of
pipe IDs, attributes, locations (connected line segments) and environmental
factors; *failure data* contains pipe IDs, failure dates and failure
locations, precise enough to match each failure to a pipe segment.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..network.geometry import Point


@dataclass(frozen=True, order=True)
class FailureRecord:
    """One failure event, matched to a pipe segment.

    ``year`` is the calendar year of the failure (the models work on the
    binary pipe/segment × year matrices of Fig. 18.3); ``location`` is the
    failure's coordinates, by construction on the failed segment.
    """

    year: int
    pipe_id: str
    segment_id: str
    location: Point

    def __post_init__(self) -> None:
        if self.year < 1800 or self.year > 2200:
            raise ValueError(f"implausible failure year {self.year}")


def write_failures_csv(path: str | Path, records: Iterable[FailureRecord]) -> int:
    """Write failure records to CSV; returns the number of rows written."""
    path = Path(path)
    n = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["year", "pipe_id", "segment_id", "x", "y"])
        for rec in records:
            writer.writerow([rec.year, rec.pipe_id, rec.segment_id, rec.location[0], rec.location[1]])
            n += 1
    return n


def read_failures_csv(path: str | Path) -> list[FailureRecord]:
    """Read failure records written by :func:`write_failures_csv`."""
    path = Path(path)
    records: list[FailureRecord] = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"year", "pipe_id", "segment_id", "x", "y"}
        if reader.fieldnames is None or required - set(reader.fieldnames):
            raise ValueError(f"{path} is missing columns {required}")
        for row in reader:
            records.append(
                FailureRecord(
                    year=int(row["year"]),
                    pipe_id=row["pipe_id"],
                    segment_id=row["segment_id"],
                    location=(float(row["x"]), float(row["y"])),
                )
            )
    return records


def write_pipes_csv(path: str | Path, pipes: Iterable) -> int:
    """Write pipe attribute rows (one per pipe) to CSV."""
    path = Path(path)
    n = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["pipe_id", "material", "coating", "diameter_mm", "laid_year", "length_m", "n_segments"]
        )
        for pipe in pipes:
            writer.writerow(
                [
                    pipe.pipe_id,
                    pipe.material.name,
                    pipe.coating.name,
                    pipe.diameter_mm,
                    pipe.laid_year,
                    round(pipe.length, 2),
                    pipe.n_segments,
                ]
            )
            n += 1
    return n
