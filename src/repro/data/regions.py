"""Region specifications calibrated to the paper's Table 18.1.

Three local-government areas of an international metropolis (~5M people):

=======  ==========  =======  ========  ==========  =====  ==========  =========
Region   Population  Density  # Pipes   # Failures  # CWM  # CWM fail  Laid years
=======  ==========  =======  ========  ==========  =====  ==========  =========
A        210,000     629      15,189    4,093       3,793  520         1930–1997
B        182,000     2,374    11,836    3,694       2,457  432         1888–1997
C        205,000     300      18,001    4,421       5,041  563         1913–1997
=======  ==========  =======  ========  ==========  =====  ==========  =========

The observation period is 1998–2009 (12 years); the experiments train on
1998–2008 and test on 2009. A ``scale`` factor shrinks every count
proportionally so the whole benchmark suite stays laptop-sized; the
``REPRO_SCALE`` environment variable overrides the default.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace

OBSERVATION_YEARS: tuple[int, ...] = tuple(range(1998, 2010))
TRAIN_YEARS: tuple[int, ...] = tuple(range(1998, 2009))
TEST_YEAR: int = 2009

#: Default generation scale when ``REPRO_SCALE`` is unset.
DEFAULT_SCALE = 0.25


@dataclass(frozen=True)
class RegionSpec:
    """Target statistics a synthetic region is calibrated against."""

    name: str
    population: int
    density_per_km2: float
    n_pipes: int
    n_cwm: int
    target_failures_all: int
    target_failures_cwm: int
    laid_year_lo: int
    laid_year_hi: int
    seed: int

    @property
    def area_km2(self) -> float:
        """Region area implied by population and density."""
        return self.population / self.density_per_km2

    @property
    def side_m(self) -> float:
        """Side of the square modelling domain, in metres."""
        return math.sqrt(self.area_km2) * 1000.0

    @property
    def block_size_m(self) -> float:
        """Street-block size: denser regions have tighter street grids."""
        return max(60.0, 6000.0 / math.sqrt(self.density_per_km2))

    @property
    def n_rwm(self) -> int:
        return self.n_pipes - self.n_cwm

    @property
    def target_failures_rwm(self) -> int:
        return self.target_failures_all - self.target_failures_cwm

    def scaled(self, scale: float) -> "RegionSpec":
        """Proportionally shrunk replica (counts scaled, densities kept).

        The spatial domain side shrinks by ``sqrt(scale)`` implicitly via
        the generator, preserving pipe density; failure *rates* per pipe
        are preserved because pipe and failure counts scale together.
        """
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self

        def s(x: int) -> int:
            return max(1, round(x * scale))

        return replace(
            self,
            population=s(self.population),
            n_pipes=s(self.n_pipes),
            n_cwm=s(self.n_cwm),
            target_failures_all=s(self.target_failures_all),
            target_failures_cwm=s(self.target_failures_cwm),
        )


REGION_A = RegionSpec(
    name="A",
    population=210_000,
    density_per_km2=629.0,
    n_pipes=15_189,
    n_cwm=3_793,
    target_failures_all=4_093,
    target_failures_cwm=520,
    laid_year_lo=1930,
    laid_year_hi=1997,
    seed=101,
)

REGION_B = RegionSpec(
    name="B",
    population=182_000,
    density_per_km2=2_374.0,
    n_pipes=11_836,
    n_cwm=2_457,
    target_failures_all=3_694,
    target_failures_cwm=432,
    laid_year_lo=1888,
    laid_year_hi=1997,
    seed=202,
)

REGION_C = RegionSpec(
    name="C",
    population=205_000,
    density_per_km2=300.0,
    n_pipes=18_001,
    n_cwm=5_041,
    target_failures_all=4_421,
    target_failures_cwm=563,
    laid_year_lo=1913,
    laid_year_hi=1997,
    seed=303,
)

REGIONS: dict[str, RegionSpec] = {"A": REGION_A, "B": REGION_B, "C": REGION_C}


def default_scale() -> float:
    """Scale factor from ``REPRO_SCALE`` (defaults to :data:`DEFAULT_SCALE`)."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return DEFAULT_SCALE
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if not 0 < scale <= 1:
        raise ValueError(f"REPRO_SCALE must be in (0, 1], got {scale}")
    return scale


def get_region(name: str, scale: float | None = None) -> RegionSpec:
    """Region spec by name ("A" / "B" / "C"), scaled for experiments."""
    key = name.upper()
    if key not in REGIONS:
        raise KeyError(f"unknown region {name!r}; choose from {sorted(REGIONS)}")
    spec = REGIONS[key]
    return spec.scaled(default_scale() if scale is None else scale)
