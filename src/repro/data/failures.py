"""Ground-truth failure simulator for drinking-water networks.

The simulator generates per-segment-per-year failure events from a latent
hazard engineered to reproduce the statistical properties the paper's
comparison hinges on:

* **extreme sparsity** — totals are calibrated (by bisection on a global
  multiplier, separately for CWM and RWM) to Table 18.1's counts, so most
  segments never fail in the observation window;
* **multi-modality** — failure behaviour clusters by latent *cohorts*
  (material × installation-era batch quality plus a hidden spatially
  banded installation-quality factor), which no single fixed grouping
  fully captures: this is what the DP mixture's adaptive grouping exploits;
* **feature interactions** — ferrous materials corrode only in corrosive
  soil, brittle materials (AC, CI) crack in expansive clay, traffic
  loading decays with distance to the nearest intersection: linear
  one-hot models (Cox/Weibull/SVM) can only partially express these;
* **persistent per-pipe frailty** — a gamma frailty shared across a pipe's
  segments and years makes past failures informative about future ones.

Models never see the latent cohort ids, the batch multipliers or the
frailties — only Table 18.2's observable features and failure histories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gis.soil import SoilLayers, corrosiveness_severity, expansiveness_severity
from ..gis.traffic import TrafficNetwork
from ..network.network import PipeNetwork
from ..network.pipe import FERROUS_MATERIALS, Material, PipeClass
from .generator import era_bucket
from .regions import OBSERVATION_YEARS, RegionSpec
from .schema import FailureRecord

#: Baseline propensity by material (relative; absolute level is calibrated).
#: Deliberately modest spread: on real networks the *vintage batch*
#: (material × era interaction, below) matters more than the material main
#: effect, which is why models limited to main effects underperform.
_MATERIAL_BASE = {
    Material.CI: 1.7,
    Material.CICL: 1.35,
    Material.AC: 1.3,
    Material.STEEL: 1.0,
    Material.DICL: 0.8,
    Material.PVC: 0.65,
    Material.PE: 0.6,
    Material.VC: 1.5,
    Material.CONC: 1.0,
}

#: Ageing exponent by material: AC embrittles fast, plastics barely age.
_MATERIAL_AGEING = {
    Material.CI: 1.3,
    Material.CICL: 1.2,
    Material.AC: 1.8,
    Material.STEEL: 1.1,
    Material.DICL: 1.0,
    Material.PVC: 0.7,
    Material.PE: 0.7,
    Material.VC: 1.4,
    Material.CONC: 1.1,
}

#: Materials whose failures are driven by soil expansiveness (brittle walls).
_BRITTLE_MATERIALS = frozenset({Material.AC, Material.CI, Material.VC, Material.CONC})


@dataclass
class GroundTruth:
    """Latent quantities behind one region's simulated failures.

    Exposed for tests and ablation benchmarks only — the prediction models
    must never read anything from this object.
    """

    segment_ids: list[str]
    pipe_ids: list[str]  # owning pipe per segment
    hazard: np.ndarray  # (n_segments, n_years) expected failures
    failure_probability: np.ndarray  # (n_segments, n_years) = 1 - exp(-hazard)
    cohort: np.ndarray  # (n_segments,) latent cohort id
    frailty: np.ndarray  # (n_segments,) pipe-level gamma frailty
    years: tuple[int, ...]
    multiplier_cwm: float
    multiplier_rwm: float


def _hidden_quality_band(midpoints: np.ndarray, side: float, rng: np.random.Generator) -> np.ndarray:
    """Hidden installation-quality multiplier in spatial bands.

    Construction crews worked the region in swathes; some laid poor beds.
    Returns a multiplier per segment in {0.6, 1.0, 1.9}, constant within
    diagonal spatial bands — observable to no model, discoverable only
    through failure history.
    """
    n_bands = 6
    band = ((midpoints[:, 0] + midpoints[:, 1]) / (2.0 * side) * n_bands).astype(int) % n_bands
    band_quality = rng.choice(np.array([0.45, 1.0, 2.6]), size=n_bands, p=[0.3, 0.45, 0.25])
    return band_quality[band]


def _calibrate_multiplier(unit_hazard: np.ndarray, target: float) -> float:
    """Bisection for ``B`` s.t. ``Σ (1 − exp(−B·h)) = target`` (expected count)."""
    total = float(unit_hazard.sum())
    if total <= 0 or target <= 0:
        return 0.0
    lo, hi = 0.0, 1.0
    while float(np.sum(1.0 - np.exp(-hi * unit_hazard))) < target:
        hi *= 2.0
        if hi > 1e9:
            raise RuntimeError("calibration diverged; check hazard construction")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if float(np.sum(1.0 - np.exp(-mid * unit_hazard))) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def build_ground_truth(
    network: PipeNetwork,
    soil: SoilLayers,
    traffic: TrafficNetwork,
    spec: RegionSpec,
    rng: np.random.Generator,
    years: tuple[int, ...] = OBSERVATION_YEARS,
) -> GroundTruth:
    """Construct the latent hazard surface, calibrated to the spec's counts."""
    segments = network.segments()
    n_seg = len(segments)
    if n_seg == 0:
        raise ValueError("network has no segments")
    pipes = {p.pipe_id: p for p in network.iter_pipes()}

    seg_ids = [s.segment_id for s in segments]
    pipe_ids = [s.pipe_id for s in segments]
    midpoints = np.asarray([s.midpoint for s in segments])
    lengths = np.asarray([s.length for s in segments])
    materials = [pipes[pid].material for pid in pipe_ids]
    laid = np.asarray([pipes[pid].laid_year for pid in pipe_ids], dtype=float)
    diam = np.asarray([pipes[pid].diameter_mm for pid in pipe_ids])
    is_cwm = np.asarray([pipes[pid].pipe_class is PipeClass.CWM for pid in pipe_ids])

    soil_values = soil.sample([tuple(m) for m in midpoints])
    corr_sev = corrosiveness_severity(soil_values["soil_corrosiveness"])
    expa_sev = expansiveness_severity(soil_values["soil_expansiveness"])
    dist_int = traffic.distance_to_nearest([tuple(m) for m in midpoints])

    base = np.asarray([_MATERIAL_BASE[m] for m in materials])
    ageing = np.asarray([_MATERIAL_AGEING[m] for m in materials])
    ferrous = np.asarray([m in FERROUS_MATERIALS for m in materials])
    brittle = np.asarray([m in _BRITTLE_MATERIALS for m in materials])

    # Latent cohorts: (material, era) batch quality — some vintages were bad.
    eras = np.asarray([era_bucket(int(y)) for y in laid])
    mat_idx = np.asarray([list(Material).index(m) for m in materials])
    cohort = eras * len(Material) + mat_idx
    # Large batch variance: some (material, vintage) combinations were simply
    # bad production runs. This is a material×era *interaction* — invisible
    # to models that only carry material and age main effects, discoverable
    # by grouping on the joint feature vector.
    batch_mult = np.exp(rng.normal(0.0, 1.1, size=int(cohort.max()) + 1))
    cohort_mult = batch_mult[cohort]

    hidden_mult = _hidden_quality_band(midpoints, spec.side_m, rng)

    # Two-level persistent frailty. Most persistence lives at the *segment*
    # level — failures recur at specific weak points (bad joints, poor
    # bedding), which is why the paper models segments — with a milder
    # shared pipe-level component. Shapes < 1 give the heavy right tail
    # that produces real networks' repeat-offender assets.
    segment_frailty = rng.gamma(0.55, 1.0 / 0.55, size=n_seg)
    pipe_order = list(pipes)
    pipe_component = dict(zip(pipe_order, rng.gamma(2.5, 1.0 / 2.5, size=len(pipe_order))))
    frailty = segment_frailty * np.asarray([pipe_component[pid] for pid in pipe_ids])

    # Static (year-independent) hazard factors.
    corrosion_f = np.where(ferrous, 1.0 + 3.5 * corr_sev, 1.0 + 0.2 * corr_sev)
    expansion_f = np.where(brittle, 1.0 + 2.5 * expa_sev, 1.0 + 0.3 * expa_sev)
    traffic_f = 1.0 + 1.3 * np.exp(-dist_int / 80.0)
    # Non-monotone diameter effect: a mid-size vulnerability band (a jointing
    # practice used for ~450–550 mm mains) on top of the usual thin-wall
    # decay — a shape no linear/multiplicative-in-diameter model can fit.
    diameter_f = (diam / 150.0) ** (-0.6) * (
        1.0 + 1.4 * np.exp(-((diam - 500.0) ** 2) / (2.0 * 90.0**2))
    )
    static = (
        base
        * cohort_mult
        * hidden_mult
        * corrosion_f
        * expansion_f
        * traffic_f
        * diameter_f
        * (lengths / 50.0)
        * frailty
    )

    # Year-dependent ageing: mild infant-mortality bump + power-law wear-out.
    # The age term is deliberately *flat-ish*: in real mains data the
    # installation vintage (cohort) explains far more than age itself once
    # cohorts are controlled for, which is the regime the paper's models
    # are designed for.
    hazard = np.empty((n_seg, len(years)))
    for j, year in enumerate(years):
        age = np.maximum(year - laid, 0.0)
        wear = 0.55 + (age / 45.0) ** ageing
        infant = 1.0 + 0.8 * np.exp(-age / 3.0)
        hazard[:, j] = static * wear * infant

    # Calibrate CWM and RWM levels separately to Table 18.1 totals.
    cwm_rows = np.repeat(is_cwm[:, None], len(years), axis=1)
    mult_cwm = _calibrate_multiplier(hazard[is_cwm].ravel(), spec.target_failures_cwm)
    mult_rwm = _calibrate_multiplier(hazard[~is_cwm].ravel(), spec.target_failures_rwm)
    hazard = np.where(cwm_rows, hazard * mult_cwm, hazard * mult_rwm)

    return GroundTruth(
        segment_ids=seg_ids,
        pipe_ids=pipe_ids,
        hazard=hazard,
        failure_probability=1.0 - np.exp(-hazard),
        cohort=cohort,
        frailty=frailty,
        years=tuple(int(y) for y in years),
        multiplier_cwm=mult_cwm,
        multiplier_rwm=mult_rwm,
    )


def simulate_failures(
    network: PipeNetwork, truth: GroundTruth, rng: np.random.Generator
) -> list[FailureRecord]:
    """Sample failure records from the ground truth.

    At most one failure per segment per year (the paper: "it is very rare
    for a segment to fail twice in a year" — the Bernoulli-process view),
    located at the failed segment's midpoint.
    """
    draws = rng.random(truth.failure_probability.shape)
    hit_seg, hit_year = np.nonzero(draws < truth.failure_probability)
    records: list[FailureRecord] = []
    for s_idx, y_idx in zip(hit_seg, hit_year):
        seg = network.segment(truth.segment_ids[s_idx])
        records.append(
            FailureRecord(
                year=truth.years[y_idx],
                pipe_id=truth.pipe_ids[s_idx],
                segment_id=seg.segment_id,
                location=seg.midpoint,
            )
        )
    records.sort()
    return records
