"""Synthetic metropolitan pipe-network generator.

Builds a region's drinking-water network on a jittered street grid:
pipes run along streets, each pipe is split into serially connected
segments of roughly constant length (the DPMHBP modelling unit), and
attributes follow era-realistic material/coating/diameter mixes. Counts,
CWM share and laid-year ranges are driven by a :class:`RegionSpec`
calibrated to the paper's Table 18.1.
"""

from __future__ import annotations

import numpy as np

from ..network.geometry import BoundingBox, Point
from ..network.network import PipeNetwork
from ..network.pipe import Coating, Material, Pipe, PipeSegment
from .regions import RegionSpec

#: Diameter (mm) choices and probabilities per class.
_CWM_DIAMETERS = np.array([300.0, 375.0, 450.0, 500.0, 600.0, 750.0])
_CWM_DIAMETER_P = np.array([0.35, 0.25, 0.15, 0.12, 0.08, 0.05])
_RWM_DIAMETERS = np.array([100.0, 150.0, 200.0, 250.0])
_RWM_DIAMETER_P = np.array([0.30, 0.40, 0.20, 0.10])

#: Era boundaries for the material mix.
_ERAS = (1930, 1955, 1975, 1990)

#: Target segment lengths (m) per class; small per-pipe variance.
_SEGMENT_TARGET = {"CWM": 45.0, "RWM": 32.0}


def era_bucket(laid_year: int) -> int:
    """Installation-era index 0..4 (pre-1930 … post-1990)."""
    return int(np.searchsorted(np.asarray(_ERAS), laid_year, side="right"))


def _material_mix(era: int, is_cwm: bool) -> tuple[list[Material], list[float]]:
    """Era- and class-appropriate material distribution."""
    if era == 0:
        return [Material.CI, Material.CICL], [0.7, 0.3]
    if era == 1:
        return [Material.CICL, Material.CI, Material.STEEL], [0.6, 0.3, 0.1]
    if era == 2:
        return (
            [Material.CICL, Material.AC, Material.STEEL, Material.DICL],
            [0.40, 0.40, 0.10, 0.10],
        )
    if era == 3:
        if is_cwm:
            return [Material.DICL, Material.STEEL, Material.AC, Material.CICL], [0.55, 0.20, 0.20, 0.05]
        return [Material.DICL, Material.AC, Material.PVC, Material.CICL], [0.40, 0.25, 0.30, 0.05]
    if is_cwm:
        return [Material.DICL, Material.STEEL, Material.CICL], [0.65, 0.25, 0.10]
    return [Material.PVC, Material.DICL, Material.PE], [0.50, 0.35, 0.15]


def _coating_for(material: Material, laid_year: int, rng: np.random.Generator) -> Coating:
    """Coating practice by material and era."""
    if material in (Material.CI, Material.CICL):
        return Coating.TAR if laid_year < 1960 else Coating.NONE
    if material is Material.DICL:
        return Coating.POLYETHYLENE_SLEEVE if rng.random() < 0.7 else Coating.ZINC
    if material is Material.STEEL:
        return Coating.EPOXY if laid_year >= 1960 else Coating.TAR
    return Coating.NONE  # PVC / PE / AC are laid uncoated


def _sample_laid_years(spec: RegionSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    """Laid years as a mixture of uniform backfill and two expansion booms."""
    lo, hi = spec.laid_year_lo, spec.laid_year_hi
    span = hi - lo
    component = rng.choice(3, size=n, p=[0.30, 0.35, 0.35])
    years = np.empty(n)
    uniform = component == 0
    early = component == 1
    late = component == 2
    years[uniform] = rng.uniform(lo, hi, uniform.sum())
    years[early] = lo + span * rng.beta(2.0, 5.0, early.sum())
    years[late] = lo + span * rng.beta(5.0, 2.0, late.sum())
    return np.clip(np.round(years), lo, hi).astype(int)


def generate_network(spec: RegionSpec, rng: np.random.Generator) -> PipeNetwork:
    """Generate one region's network to the spec's counts and eras."""
    side = spec.side_m
    block = spec.block_size_m
    bbox = BoundingBox(0.0, 0.0, side, side)
    network = PipeNetwork(region=spec.name)

    n_cwm, n_rwm = spec.n_cwm, spec.n_rwm
    is_cwm = np.concatenate([np.ones(n_cwm, bool), np.zeros(n_rwm, bool)])
    n = n_cwm + n_rwm

    lengths = np.where(
        is_cwm,
        np.clip(rng.lognormal(np.log(320.0), 0.55, n), 60.0, 1500.0),
        np.clip(rng.lognormal(np.log(120.0), 0.50, n), 20.0, 600.0),
    )
    diameters = np.where(
        is_cwm,
        rng.choice(_CWM_DIAMETERS, size=n, p=_CWM_DIAMETER_P),
        rng.choice(_RWM_DIAMETERS, size=n, p=_RWM_DIAMETER_P),
    )
    laid_years = _sample_laid_years(spec, n, rng)
    horizontal = rng.random(n) < 0.5
    n_streets = max(2, int(side // block))
    street_idx = rng.integers(0, n_streets + 1, size=n)
    start_along = rng.uniform(0.0, np.maximum(side - lengths, 1.0))
    # Small lateral offset: mains sit under the road edge, not its centre.
    lateral = street_idx * block + rng.normal(0.0, 3.0, n)

    for i in range(n):
        pipe_id = f"{spec.name}-P{i:05d}"
        length = float(lengths[i])
        if horizontal[i]:
            start: Point = (float(start_along[i]), float(lateral[i]))
            end: Point = (float(start_along[i] + length), float(lateral[i]))
        else:
            start = (float(lateral[i]), float(start_along[i]))
            end = (float(lateral[i]), float(start_along[i] + length))
        target = _SEGMENT_TARGET["CWM" if is_cwm[i] else "RWM"]
        n_segments = max(1, int(round(length / target)))
        dx = (end[0] - start[0]) / n_segments
        dy = (end[1] - start[1]) / n_segments
        segments = [
            PipeSegment(
                segment_id=f"{pipe_id}/s{k}",
                pipe_id=pipe_id,
                start=(start[0] + k * dx, start[1] + k * dy),
                end=(start[0] + (k + 1) * dx, start[1] + (k + 1) * dy),
            )
            for k in range(n_segments)
        ]
        era = era_bucket(int(laid_years[i]))
        materials, probs = _material_mix(era, bool(is_cwm[i]))
        material = materials[int(rng.choice(len(materials), p=np.asarray(probs) / np.sum(probs)))]
        pipe = Pipe(
            pipe_id=pipe_id,
            material=material,
            coating=_coating_for(material, int(laid_years[i]), rng),
            diameter_mm=float(diameters[i]),
            laid_year=int(laid_years[i]),
            segments=segments,
        )
        network.add_pipe(pipe)

    # Sanity: the bbox used downstream must cover the network.
    net_box = network.bounding_box()
    if net_box.width > side * 1.5 or net_box.height > side * 1.5:
        raise AssertionError("generated network escaped its modelling domain")
    _ = bbox  # documented domain; environment layers derive their own bbox
    return network
