"""Command-line interface: ``repro <command>``.

Commands
--------
``summary``    regenerate the Table 18.1 data summary for the synthetic regions
``compare``    fit the full model line-up on one region and print the AUC table
``riskmap``    fit DPMHBP and write a Fig. 18.9-style SVG risk map
``plan``       produce a budget-constrained inspection plan with economics

All commands accept ``--scale`` (fraction of paper-scale data, default
from ``REPRO_SCALE``/0.25), ``--seed``, and the parallelism knobs
``--jobs N`` / ``--executor {serial,threads,processes}`` (exported as
``REPRO_JOBS``/``REPRO_EXECUTOR`` so every fan-out point — DPMHBP chains,
comparison cells — picks them up; results are identical at any setting).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np


def _cmd_summary(args: argparse.Namespace) -> int:
    from .data.datasets import load_region
    from .eval.reporting import table_18_1

    datasets = [load_region(r, scale=args.scale, seed=args.seed) for r in args.regions]
    print(table_18_1(datasets))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .eval.experiment import default_models, evaluate_models, prepare_region_data
    from .eval.reporting import format_table

    data = prepare_region_data(args.region, scale=args.scale, seed=args.seed)
    run = evaluate_models(
        data, default_models(seed=0, fast=not args.full), region=args.region
    )
    rows = [
        [name, f"{100 * ev.auc:.2f}%", f"{ev.auc_budget_permyriad:.2f}"]
        for name, ev in sorted(run.evaluations.items(), key=lambda kv: -kv[1].auc)
    ]
    print(format_table(["Model", "AUC(100%)", "AUC(1%) [per-10k]"], rows))
    return 0


def _cmd_riskmap(args: argparse.Namespace) -> int:
    from .core.dpmhbp import DPMHBPModel
    from .data.datasets import load_region
    from .eval.riskmap import RiskMap
    from .features.builder import build_model_data
    from .network.pipe import PipeClass

    dataset = load_region(args.region, scale=args.scale, seed=args.seed).subset(PipeClass.CWM)
    data = build_model_data(dataset)
    scores = DPMHBPModel(n_sweeps=args.sweeps, burn_in=args.sweeps // 3, seed=0).fit_predict(data)
    out = args.out or Path(f"riskmap_{args.region}.svg")
    RiskMap(dataset=dataset, scores=scores).save_svg(out)
    print(f"wrote {out}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .core.dpmhbp import DPMHBPModel
    from .eval.economics import plan_economics
    from .eval.experiment import prepare_region_data

    data = prepare_region_data(args.region, scale=args.scale, seed=args.seed)
    scores = DPMHBPModel(n_sweeps=args.sweeps, burn_in=args.sweeps // 3, seed=0).fit_predict(data)
    econ = plan_economics(data, scores, args.budget)
    print(f"inspect {econ.n_inspected} pipes ({econ.inspected_km:.1f} km)")
    print(f"inspection cost : {econ.inspection_cost:,.0f}")
    print(f"failures caught : {econ.failures_caught} (missed {econ.failures_missed})")
    print(f"averted cost    : {econ.averted_cost:,.0f}")
    print(f"net savings     : {econ.net_savings:,.0f}")
    # Also emit the ranked plan rows for downstream scheduling.
    order = np.argsort(-scores)[: econ.n_inspected]
    for rank, i in enumerate(order, 1):
        print(f"{rank:4d}  {data.pipe_ids[i]:<14} score={scores[i]:.5f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, region: bool = True) -> None:
        p.add_argument("--scale", type=float, default=None)
        p.add_argument("--seed", type=int, default=None)
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker count for parallel fan-out (default: REPRO_JOBS or serial)",
        )
        p.add_argument(
            "--executor",
            choices=["serial", "threads", "processes"],
            default=None,
            help="execution backend (default: REPRO_EXECUTOR, or threads when --jobs > 1)",
        )
        if region:
            p.add_argument("--region", default="A", choices=["A", "B", "C"])

    p = sub.add_parser("summary", help="Table 18.1 data summary")
    common(p, region=False)
    p.add_argument("--regions", nargs="+", default=["A", "B", "C"])
    p.set_defaults(func=_cmd_summary)

    p = sub.add_parser("compare", help="model comparison on one region")
    common(p)
    p.add_argument("--full", action="store_true", help="full-length MCMC runs")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("riskmap", help="write an SVG risk map")
    common(p)
    p.add_argument("--out", type=Path, default=None)
    p.add_argument("--sweeps", type=int, default=40)
    p.set_defaults(func=_cmd_riskmap)

    p = sub.add_parser("plan", help="budget-constrained inspection plan")
    common(p)
    p.add_argument("--budget", type=float, default=0.01)
    p.add_argument("--sweeps", type=int, default=40)
    p.set_defaults(func=_cmd_plan)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    # Export the parallelism knobs so every fan-out point downstream
    # (chains, comparison cells) resolves the same executor config.
    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if getattr(args, "executor", None) is not None:
        os.environ["REPRO_EXECUTOR"] = args.executor
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
