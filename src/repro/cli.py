"""Command-line interface: ``repro <command>``.

Commands
--------
``summary``    regenerate the Table 18.1 data summary for the synthetic regions
``compare``    fit the full model line-up on one region and print the AUC table
``grid``       the repeated Table 18.3/18.4 grid — journalled, resumable
``status``     progress/timing/failure report over a journalled run directory
``doctor``     convergence/drift/failure health check over a run directory
               (exit 0 healthy / 1 warnings / 2 failures; ``--json`` for CI)
``riskmap``    fit DPMHBP and write a Fig. 18.9-style SVG risk map
``plan``       produce a budget-constrained inspection plan with economics

Every command also takes ``--trace [PATH]`` (see :mod:`repro.telemetry`):
spans, counters and gauges from the instrumented hot paths are collected
and a where-the-time-went report is printed at exit; with a journalled
``grid`` the trace lands in ``<run_dir>/trace.jsonl`` so ``repro status``
can fold it into its report. ``--metrics-out PATH`` additionally writes
the final counter/gauge state in Prometheus text exposition format
(``repro_*`` metrics; see :mod:`repro.telemetry.prometheus`).

Every command shares one parent parser (so flags are declared once):
``--scale`` (fraction of paper-scale data, default from
``REPRO_SCALE``/0.25), ``--seed``, the parallelism knobs ``--jobs N`` /
``--executor {serial,threads,processes}`` (exported as
``REPRO_JOBS``/``REPRO_EXECUTOR`` so every fan-out point — DPMHBP chains,
comparison cells — picks them up; results are identical at any setting),
and the run-control knobs ``--run-dir`` / ``--resume`` / ``--on-error`` /
``--retries`` / ``--cell-timeout`` consumed by ``grid`` (see
:mod:`repro.runs` — a killed grid resumed with ``--resume`` is
bit-identical to an uninterrupted one).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np


def _cmd_summary(args: argparse.Namespace) -> int:
    from .data.datasets import load_region
    from .eval.reporting import table_18_1

    datasets = [load_region(r, scale=args.scale, seed=args.seed) for r in args.regions]
    print(table_18_1(datasets))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .eval.experiment import default_models, evaluate_models, prepare_region_data
    from .eval.reporting import format_table

    data = prepare_region_data(args.region, scale=args.scale, seed=args.seed)
    run = evaluate_models(
        data, default_models(seed=0, fast=not args.full), region=args.region
    )
    rows = [
        [ev.model_name, f"{100 * ev.auc:.2f}%", f"{ev.auc_budget_permyriad:.2f}"]
        for ev in run.ranked()
    ]
    print(format_table(["Model", "AUC(100%)", "AUC(1%) [per-10k]"], rows))
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from .eval.experiment import run_comparison
    from .eval.reporting import table_18_3, table_18_4

    if args.resume and args.run_dir:
        print("use either --run-dir (fresh) or --resume (continue), not both",
              file=sys.stderr)
        return 2
    result = run_comparison(
        regions=tuple(args.regions),
        n_repeats=args.repeats,
        scale=args.scale,
        base_seed=args.seed or 0,
        fast=not args.full,
        run_dir=args.run_dir,
        resume=args.resume,
        on_error=args.on_error,
        retries=args.retries,
        cell_timeout=args.cell_timeout,
    )
    print(table_18_3(result))
    if args.repeats >= 2:
        print()
        print(table_18_4(result))
    if result.failures:
        print(
            f"\n{len(result.failures)} cell(s) failed and were skipped: "
            + ", ".join(sorted(o.spec.cell_id for o in result.failures)),
            file=sys.stderr,
        )
    if result.run_dir:
        print(f"\nrun journal: {result.run_dir} (resume with --resume {result.run_dir})")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .runs.journal import JournalError
    from .telemetry import format_status, run_status

    try:
        status = run_status(args.run_dir_pos)
    except JournalError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_status(status, verbose=args.verbose))
    counts = status.counts()
    return 1 if counts["failed"] and status.finished else 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    import json

    from .monitor.doctor import diagnose
    from .runs.journal import JournalError

    try:
        report = diagnose(
            args.run_dir_pos,
            baseline=args.baseline,
            band=args.band,
        )
    except (JournalError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return report.exit_code


def _cmd_riskmap(args: argparse.Namespace) -> int:
    from .core.dpmhbp import DPMHBPModel
    from .data.datasets import load_region
    from .eval.riskmap import RiskMap
    from .features.builder import build_model_data
    from .network.pipe import PipeClass

    dataset = load_region(args.region, scale=args.scale, seed=args.seed).subset(PipeClass.CWM)
    data = build_model_data(dataset)
    scores = DPMHBPModel(n_sweeps=args.sweeps, burn_in=args.sweeps // 3, seed=0).fit_predict(data)
    out = args.out or Path(f"riskmap_{args.region}.svg")
    RiskMap(dataset=dataset, scores=scores).save_svg(out)
    print(f"wrote {out}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .core.dpmhbp import DPMHBPModel
    from .eval.economics import plan_economics
    from .eval.experiment import prepare_region_data

    data = prepare_region_data(args.region, scale=args.scale, seed=args.seed)
    scores = DPMHBPModel(n_sweeps=args.sweeps, burn_in=args.sweeps // 3, seed=0).fit_predict(data)
    econ = plan_economics(data, scores, args.budget)
    print(f"inspect {econ.n_inspected} pipes ({econ.inspected_km:.1f} km)")
    print(f"inspection cost : {econ.inspection_cost:,.0f}")
    print(f"failures caught : {econ.failures_caught} (missed {econ.failures_missed})")
    print(f"averted cost    : {econ.averted_cost:,.0f}")
    print(f"net savings     : {econ.net_savings:,.0f}")
    # Also emit the ranked plan rows for downstream scheduling.
    order = np.argsort(-scores)[: econ.n_inspected]
    for rank, i in enumerate(order, 1):
        print(f"{rank:4d}  {data.pipe_ids[i]:<14} score={scores[i]:.5f}")
    return 0


def _parent_parser() -> argparse.ArgumentParser:
    """The flags every subcommand shares, declared exactly once.

    ``add_help=False`` because this parser only ever rides along in
    ``parents=[...]`` — subparsers add their own ``-h``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--scale", type=float, default=None)
    parent.add_argument("--seed", type=int, default=None)
    parent.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for parallel fan-out (default: REPRO_JOBS or serial)",
    )
    parent.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        default=None,
        help="execution backend (default: REPRO_EXECUTOR, or threads when --jobs > 1)",
    )
    parent.add_argument(
        "--trace",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="enable telemetry; append a JSONL trace to PATH (default: the "
        "run journal's trace.jsonl when journalled, else in-memory only)",
    )
    parent.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the final counters/gauges to PATH in Prometheus text "
        "exposition format (implies telemetry collection)",
    )
    run = parent.add_argument_group("run control (grid)")
    run.add_argument(
        "--run-dir",
        type=Path,
        default=None,
        help="journal the run here: manifest + event log + per-cell checkpoints",
    )
    run.add_argument(
        "--resume",
        type=Path,
        default=None,
        help="continue a journalled run; finished cells load bit-identically",
    )
    run.add_argument(
        "--on-error",
        choices=["raise", "skip", "retry"],
        default="raise",
        help="failing-cell policy (retry reseeds degenerate regions)",
    )
    run.add_argument(
        "--retries", type=int, default=2, help="extra attempts per cell under retry"
    )
    run.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="soft per-cell timeout in seconds",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    parent = _parent_parser()

    def region_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--region", default="A", choices=["A", "B", "C"])

    p = sub.add_parser("summary", parents=[parent], help="Table 18.1 data summary")
    p.add_argument("--regions", nargs="+", default=["A", "B", "C"])
    p.set_defaults(func=_cmd_summary)

    p = sub.add_parser("compare", parents=[parent], help="model comparison on one region")
    region_flag(p)
    p.add_argument("--full", action="store_true", help="full-length MCMC runs")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "grid",
        parents=[parent],
        help="repeated Table 18.3/18.4 grid (journalled, resumable)",
    )
    p.add_argument("--regions", nargs="+", default=["A", "B", "C"], choices=["A", "B", "C"])
    p.add_argument("--repeats", type=int, default=5)
    p.add_argument("--full", action="store_true", help="full-length MCMC runs")
    p.set_defaults(func=_cmd_grid)

    p = sub.add_parser(
        "status",
        parents=[parent],
        help="progress/timing/failure report over a journalled run directory",
    )
    p.add_argument(
        "run_dir_pos", metavar="run_dir", type=Path, help="a --run-dir/--resume directory"
    )
    p.add_argument(
        "--verbose", action="store_true", help="list every cell, including untimed ones"
    )
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser(
        "doctor",
        parents=[parent],
        help="convergence/drift/failure health check over a run directory",
    )
    p.add_argument(
        "run_dir_pos", metavar="run_dir", type=Path, help="a --run-dir/--resume directory"
    )
    p.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="HEALTH_<rev>.json metric baseline to check drift against",
    )
    p.add_argument(
        "--band",
        type=float,
        default=0.02,
        help="drift band (absolute for [0,1] metrics, relative otherwise)",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable report for CI"
    )
    p.set_defaults(func=_cmd_doctor)

    p = sub.add_parser("riskmap", parents=[parent], help="write an SVG risk map")
    region_flag(p)
    p.add_argument("--out", type=Path, default=None)
    p.add_argument("--sweeps", type=int, default=40)
    p.set_defaults(func=_cmd_riskmap)

    p = sub.add_parser("plan", parents=[parent], help="budget-constrained inspection plan")
    region_flag(p)
    p.add_argument("--budget", type=float, default=0.01)
    p.add_argument("--sweeps", type=int, default=40)
    p.set_defaults(func=_cmd_plan)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    # Export the parallelism knobs so every fan-out point downstream
    # (chains, comparison cells) resolves the same executor config.
    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if getattr(args, "executor", None) is not None:
        os.environ["REPRO_EXECUTOR"] = args.executor
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    # Passive (read-only) commands never print the where-the-time-went
    # report — they inspect runs rather than execute them — but they do
    # honour --metrics-out: `repro doctor --metrics-out` exports the
    # convergence gauges it just computed.
    passive = args.command in ("status", "doctor")
    report_trace = trace is not None and not passive
    if report_trace or metrics_out is not None:
        from . import telemetry

        # "auto" binds to the run journal when one is in play (run_comparison
        # does the binding, so resumed runs append to the same trace);
        # otherwise telemetry stays in-memory and is reported at exit.
        telemetry.configure(
            trace_path=None if trace in (None, "auto") else trace
        )
        try:
            return args.func(args)
        finally:
            telemetry.flush()
            recorder = telemetry.get_recorder()
            if report_trace:
                report = telemetry.format_trace_report(
                    telemetry.summarize_trace(recorder)
                )
                print(f"\n--- telemetry ({args.command}) ---", file=sys.stderr)
                print(report, file=sys.stderr)
                if recorder.trace_path is not None:
                    print(f"trace: {recorder.trace_path}", file=sys.stderr)
            if metrics_out is not None:
                path = telemetry.write_metrics(metrics_out, recorder)
                print(f"metrics: {path}", file=sys.stderr)
            telemetry.disable()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
