"""Tree canopy coverage layer (waste-water blockage driver).

The paper estimates tree-root extent from satellite-derived tree canopy
area; blockage (choke) rates rise strongly with canopy coverage
(Fig. 18.5). Here canopy coverage is a smooth [0, 1] scalar field sampled
at segment midpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..network.geometry import BoundingBox, Point
from .fields import ScalarField


@dataclass
class CanopyMap:
    """Fraction of ground covered by tree canopy, in [0, 1]."""

    field: ScalarField

    def coverage_at(self, points: Sequence[Point]) -> np.ndarray:
        """Canopy coverage fraction at each point."""
        return self.field.values_at(points)

    @staticmethod
    def random(bbox: BoundingBox, rng: np.random.Generator, n_groves: int = 60) -> "CanopyMap":
        """Random canopy map: distinct groves over a lightly vegetated base."""
        return CanopyMap(
            field=ScalarField.random(
                bbox,
                rng,
                n_bumps=n_groves,
                length_scale_fraction=0.05,
                baseline=0.05,
                amplitude=0.6,
            )
        )
