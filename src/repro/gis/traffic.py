"""Traffic intersections and distance-to-intersection computation.

Frequent vehicle starting/stopping at intersections cycles the road
surface pressure above buried mains, which correlates with failures; the
feature used in the paper is each pipe segment's distance to its closest
traffic intersection (Table 18.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..network.geometry import BoundingBox, Point
from ..network.spatial import GridIndex


@dataclass
class TrafficNetwork:
    """A set of traffic-intersection locations with fast nearest queries."""

    intersections: np.ndarray  # (n, 2)

    def __post_init__(self) -> None:
        self.intersections = np.asarray(self.intersections, dtype=float)
        if self.intersections.ndim != 2 or self.intersections.shape[1] != 2:
            raise ValueError("intersections must be (n, 2)")
        if len(self.intersections) == 0:
            raise ValueError("need at least one intersection")
        self._index = GridIndex([tuple(p) for p in self.intersections])

    @property
    def n_intersections(self) -> int:
        return len(self.intersections)

    def distance_to_nearest(self, points: Sequence[Point]) -> np.ndarray:
        """Distance (m) from each point to its closest intersection."""
        return self._index.nearest_distances(points)

    @staticmethod
    def from_street_grid(
        bbox: BoundingBox,
        block_size: float,
        rng: np.random.Generator,
        keep_fraction: float = 0.7,
        jitter_fraction: float = 0.15,
    ) -> "TrafficNetwork":
        """Intersections of a jittered street grid over ``bbox``.

        ``keep_fraction`` thins the grid (not every street crossing is
        signalised); jitter breaks the artificial exact regularity.
        """
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0 < keep_fraction <= 1:
            raise ValueError("keep_fraction must be in (0, 1]")
        xs = np.arange(bbox.min_x, bbox.max_x + block_size, block_size)
        ys = np.arange(bbox.min_y, bbox.max_y + block_size, block_size)
        gx, gy = np.meshgrid(xs, ys)
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        keep = rng.random(len(pts)) < keep_fraction
        pts = pts[keep]
        if len(pts) == 0:  # degenerate tiny bbox: keep one
            pts = np.array([[bbox.min_x, bbox.min_y]])
        pts = pts + rng.normal(0.0, jitter_fraction * block_size, pts.shape)
        return TrafficNetwork(intersections=pts)
