"""Soil moisture layer with yearly variation (waste-water blockage driver).

Soil moisture drives root growth toward sewers; choke rates rise with
moisture (Fig. 18.6). Modelled as a smooth spatial base field modulated by
a per-year multiplier (wet vs dry years), both in [0, 1] after clipping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..network.geometry import BoundingBox, Point
from .fields import ScalarField


@dataclass
class MoistureMap:
    """Spatio-temporal soil moisture: ``moisture(p, year) = base(p)·m_year``."""

    field: ScalarField
    year_multipliers: dict[int, float] = field(default_factory=dict)

    def moisture_at(self, points: Sequence[Point], year: int | None = None) -> np.ndarray:
        """Moisture in [0, 1] at each point (optionally for one year)."""
        base = self.field.values_at(points)
        if year is None:
            return base
        multiplier = self.year_multipliers.get(year, 1.0)
        return np.clip(base * multiplier, 0.0, 1.0)

    @staticmethod
    def random(
        bbox: BoundingBox,
        rng: np.random.Generator,
        years: Sequence[int] = (),
        n_bumps: int = 30,
    ) -> "MoistureMap":
        """Random moisture map; wet/dry years drawn around a mean of 1."""
        # Modest amplitudes keep the field away from the [0, 1] clipping
        # boundary, so moisture retains a usable gradient across the region
        # (a saturated field would flatten the Fig. 18.6 relationship).
        fld = ScalarField.random(
            bbox,
            rng,
            n_bumps=n_bumps,
            length_scale_fraction=0.12,
            baseline=0.08,
            amplitude=0.22,
        )
        multipliers = {int(y): float(np.clip(rng.normal(1.0, 0.25), 0.4, 1.6)) for y in years}
        return MoistureMap(field=fld, year_multipliers=multipliers)
