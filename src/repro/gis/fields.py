"""Spatial field primitives: categorical Voronoi fields and smooth scalar fields.

These stand in for the paper's GIS layers. Soil attributes are *categorical
partitions of the plane* ("the selected local government areas are
partitioned into small regions according to the distinct values of soil
factors"), which a nearest-seed Voronoi field reproduces exactly. Tree
canopy and soil moisture are continuous rasters, reproduced by smooth
Gaussian-bump random fields normalised to [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..network.geometry import BoundingBox, Point
from ..network.spatial import GridIndex


@dataclass
class CategoricalField:
    """Piecewise-constant categorical field: value = category of nearest seed."""

    seeds: np.ndarray  # (n, 2)
    labels: list[str]  # one per seed
    categories: list[str]  # distinct values, deterministic order

    def __post_init__(self) -> None:
        self.seeds = np.asarray(self.seeds, dtype=float)
        if self.seeds.ndim != 2 or self.seeds.shape[1] != 2:
            raise ValueError("seeds must be (n, 2)")
        if len(self.labels) != len(self.seeds):
            raise ValueError("need one label per seed")
        unknown = set(self.labels) - set(self.categories)
        if unknown:
            raise ValueError(f"labels {unknown} missing from categories")
        self._index = GridIndex([tuple(s) for s in self.seeds])

    def value_at(self, p: Point) -> str:
        """Category at point ``p``."""
        idx, _ = self._index.nearest(p)
        return self.labels[idx]

    def values_at(self, points: Sequence[Point]) -> list[str]:
        """Categories at many points."""
        return [self.value_at(p) for p in points]

    @staticmethod
    def random(
        bbox: BoundingBox,
        categories: Sequence[str],
        n_seeds: int,
        rng: np.random.Generator,
        weights: Sequence[float] | None = None,
    ) -> "CategoricalField":
        """Random Voronoi field over ``bbox``.

        ``weights`` optionally biases how often each category is used for
        seeds (e.g. mostly-benign soil with pockets of severe corrosivity).
        Every category is guaranteed at least one seed when
        ``n_seeds >= len(categories)``.
        """
        if n_seeds < 1:
            raise ValueError("need at least one seed")
        cats = list(categories)
        if not cats:
            raise ValueError("need at least one category")
        p = None
        if weights is not None:
            w = np.asarray(weights, dtype=float)
            if w.size != len(cats) or np.any(w < 0) or w.sum() == 0:
                raise ValueError("weights must be non-negative, one per category")
            p = w / w.sum()
        seeds = np.column_stack(
            [
                rng.uniform(bbox.min_x, bbox.max_x, n_seeds),
                rng.uniform(bbox.min_y, bbox.max_y, n_seeds),
            ]
        )
        labels = [str(c) for c in rng.choice(cats, size=n_seeds, p=p)]
        # Guarantee full category coverage where possible.
        if n_seeds >= len(cats):
            for i, c in enumerate(cats):
                if c not in labels:
                    labels[i] = c
        return CategoricalField(seeds=seeds, labels=labels, categories=cats)


@dataclass
class ScalarField:
    """Smooth field in [0, 1]: a normalised sum of Gaussian bumps."""

    centers: np.ndarray  # (n, 2)
    amplitudes: np.ndarray  # (n,)
    length_scale: float
    baseline: float = 0.0

    def __post_init__(self) -> None:
        self.centers = np.asarray(self.centers, dtype=float)
        self.amplitudes = np.asarray(self.amplitudes, dtype=float)
        if self.centers.ndim != 2 or self.centers.shape[1] != 2:
            raise ValueError("centers must be (n, 2)")
        if self.amplitudes.shape != (len(self.centers),):
            raise ValueError("need one amplitude per center")
        if self.length_scale <= 0:
            raise ValueError("length_scale must be positive")

    def value_at(self, p: Point) -> float:
        """Field value in [0, 1] at ``p``."""
        return float(self.values_at(np.asarray([p], dtype=float))[0])

    def values_at(self, points: Sequence[Point] | np.ndarray) -> np.ndarray:
        """Vectorised evaluation; output clipped to [0, 1]."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        sq = (
            np.sum(pts**2, axis=1)[:, None]
            - 2.0 * pts @ self.centers.T
            + np.sum(self.centers**2, axis=1)[None, :]
        )
        bumps = np.exp(-np.maximum(sq, 0.0) / (2.0 * self.length_scale**2))
        return np.clip(self.baseline + bumps @ self.amplitudes, 0.0, 1.0)

    @staticmethod
    def random(
        bbox: BoundingBox,
        rng: np.random.Generator,
        n_bumps: int = 40,
        length_scale_fraction: float = 0.08,
        baseline: float = 0.1,
        amplitude: float = 0.5,
    ) -> "ScalarField":
        """Random smooth field: bump centres uniform over ``bbox``."""
        if n_bumps < 1:
            raise ValueError("need at least one bump")
        centers = np.column_stack(
            [
                rng.uniform(bbox.min_x, bbox.max_x, n_bumps),
                rng.uniform(bbox.min_y, bbox.max_y, n_bumps),
            ]
        )
        scale = max(bbox.width, bbox.height) * length_scale_fraction
        amplitudes = rng.uniform(0.2, 1.0, n_bumps) * amplitude
        return ScalarField(
            centers=centers, amplitudes=amplitudes, length_scale=scale, baseline=baseline
        )
