"""GIS substrate: soil layers, traffic intersections, canopy & moisture fields."""

from .canopy import CanopyMap
from .fields import CategoricalField, ScalarField
from .moisture import MoistureMap
from .soil import (
    CORROSIVENESS_LEVELS,
    EXPANSIVENESS_LEVELS,
    GEOLOGY_TYPES,
    SOIL_MAP_TYPES,
    SoilLayers,
    corrosiveness_severity,
    expansiveness_severity,
)
from .traffic import TrafficNetwork

__all__ = [
    "CanopyMap",
    "CategoricalField",
    "ScalarField",
    "MoistureMap",
    "CORROSIVENESS_LEVELS",
    "EXPANSIVENESS_LEVELS",
    "GEOLOGY_TYPES",
    "SOIL_MAP_TYPES",
    "SoilLayers",
    "corrosiveness_severity",
    "expansiveness_severity",
    "TrafficNetwork",
]
