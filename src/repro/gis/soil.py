"""Soil condition layers: corrosiveness, expansiveness, geology, soil map.

Four categorical GIS layers per region (Table 18.2). Each layer partitions
the plane into contiguous zones sharing one categorical value; pipe
segments sample the layers at their midpoints ("pipe segments falling into
the same region share the same soil factor value").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..network.geometry import BoundingBox, Point
from .fields import CategoricalField

#: Pitting (metal corrosion) risk classes, from a linear polarisation test.
CORROSIVENESS_LEVELS = ("low", "moderate", "high", "severe")
#: Shrink–swell reactivity of expansive clays.
EXPANSIVENESS_LEVELS = ("low", "moderate", "high")
#: Dominant rock type.
GEOLOGY_TYPES = ("sandstone", "shale", "alluvium", "granite")
#: Landscape class from the soil map.
SOIL_MAP_TYPES = ("fluvial", "colluvial", "erosional", "residual")

#: Ordinal severity used by the failure simulator (not by the models —
#: models only ever see the categorical values, as in the paper).
CORROSIVENESS_SEVERITY = {"low": 0.0, "moderate": 0.4, "high": 0.75, "severe": 1.0}
EXPANSIVENESS_SEVERITY = {"low": 0.0, "moderate": 0.5, "high": 1.0}


@dataclass
class SoilLayers:
    """The four categorical soil layers of one region."""

    corrosiveness: CategoricalField
    expansiveness: CategoricalField
    geology: CategoricalField
    soil_map: CategoricalField

    def sample(self, points: Sequence[Point]) -> dict[str, list[str]]:
        """Layer values at each point, keyed by layer name."""
        return {
            "soil_corrosiveness": self.corrosiveness.values_at(points),
            "soil_expansiveness": self.expansiveness.values_at(points),
            "soil_geology": self.geology.values_at(points),
            "soil_map": self.soil_map.values_at(points),
        }

    @staticmethod
    def random(bbox: BoundingBox, rng: np.random.Generator, zones_per_layer: int = 24) -> "SoilLayers":
        """Random soil layers with realistic category prevalences.

        Corrosive and expansive zones are the minority (severe corrosion
        pockets are rare but high-impact), matching how the simulator uses
        them to create spatially clustered failure hot spots.
        """
        return SoilLayers(
            corrosiveness=CategoricalField.random(
                bbox, CORROSIVENESS_LEVELS, zones_per_layer, rng, weights=(0.4, 0.3, 0.2, 0.1)
            ),
            expansiveness=CategoricalField.random(
                bbox, EXPANSIVENESS_LEVELS, zones_per_layer, rng, weights=(0.5, 0.3, 0.2)
            ),
            geology=CategoricalField.random(bbox, GEOLOGY_TYPES, zones_per_layer, rng),
            soil_map=CategoricalField.random(bbox, SOIL_MAP_TYPES, zones_per_layer, rng),
        )


def corrosiveness_severity(levels: Sequence[str]) -> np.ndarray:
    """Ordinal severity in [0, 1] for corrosiveness categories."""
    return np.asarray([CORROSIVENESS_SEVERITY[level] for level in levels], dtype=float)


def expansiveness_severity(levels: Sequence[str]) -> np.ndarray:
    """Ordinal severity in [0, 1] for expansiveness categories."""
    return np.asarray([EXPANSIVENESS_SEVERITY[level] for level in levels], dtype=float)
