"""Distribution helpers used throughout the Bayesian nonparametric stack.

Thin, numerically careful wrappers: log-densities clip their arguments away
from the boundary of the support so samplers never see ``-inf`` from
floating-point round-off, and conjugate-marginal helpers (Beta–Binomial)
are expressed with ``betaln`` for stability at the extreme sparsity this
application lives in (thousands of segments, a handful of failures).
"""

from __future__ import annotations

import numpy as np
from scipy.special import betaln, gammaln

#: Smallest probability treated as distinct from 0/1 in log-space.
_EPS = 1e-12


def clip_unit(p: np.ndarray | float) -> np.ndarray | float:
    """Clip probabilities to the open unit interval ``(eps, 1-eps)``."""
    return np.clip(p, _EPS, 1.0 - _EPS)


def beta_logpdf(x: np.ndarray | float, a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray | float:
    """Log density of ``Beta(a, b)`` at ``x`` (vectorised, clipped)."""
    x = clip_unit(np.asarray(x, dtype=float))
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return (a - 1.0) * np.log(x) + (b - 1.0) * np.log1p(-x) - betaln(a, b)


def bernoulli_loglik(successes: np.ndarray | float, trials: np.ndarray | float, p: np.ndarray | float) -> np.ndarray | float:
    """Log likelihood of ``successes`` in ``trials`` i.i.d. Bernoulli(p) draws.

    Binomial coefficient omitted (constant in ``p``), as appropriate for
    inference over ``p``.
    """
    p = clip_unit(np.asarray(p, dtype=float))
    s = np.asarray(successes, dtype=float)
    n = np.asarray(trials, dtype=float)
    return s * np.log(p) + (n - s) * np.log1p(-p)


def beta_binomial_logmarginal(
    successes: np.ndarray | float,
    trials: np.ndarray | float,
    a: np.ndarray | float,
    b: np.ndarray | float,
) -> np.ndarray | float:
    """Log marginal likelihood of Bernoulli data with the rate integrated out.

    ``∫ p^s (1-p)^(n-s) Beta(p; a, b) dp = B(a+s, b+n-s) / B(a, b)``
    (binomial coefficient again omitted). This is the quantity the collapsed
    CRP Gibbs sweep evaluates per (segment, group) pair, so it must be exact
    and vectorisable.
    """
    s = np.asarray(successes, dtype=float)
    n = np.asarray(trials, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return betaln(a + s, b + n - s) - betaln(a, b)


def beta_mean_concentration(mean: float, concentration: float) -> tuple[float, float]:
    """Convert (mean q, concentration c) to standard Beta shapes ``(cq, c(1-q))``.

    This is the parameterisation the beta process uses everywhere:
    ``Beta(c·q, c·(1-q))`` has mean ``q`` and gets tighter as ``c`` grows.
    """
    if not 0.0 < mean < 1.0:
        raise ValueError(f"mean must lie in (0, 1), got {mean}")
    if concentration <= 0.0:
        raise ValueError(f"concentration must be positive, got {concentration}")
    return concentration * mean, concentration * (1.0 - mean)


def gaussian_logpdf(x: np.ndarray, mean: np.ndarray | float, var: np.ndarray | float) -> np.ndarray:
    """Elementwise log density of ``N(mean, var)`` at ``x``."""
    x = np.asarray(x, dtype=float)
    var = np.asarray(var, dtype=float)
    return -0.5 * (np.log(2.0 * np.pi * var) + (x - mean) ** 2 / var)


def gaussian_marginal_logpdf_sum(
    x: np.ndarray, prior_mean: float, prior_var: float, noise_var: float
) -> float:
    """Log marginal of i.i.d. Gaussian data with a conjugate Gaussian mean prior.

    ``x_i ~ N(mu, noise_var)``, ``mu ~ N(prior_mean, prior_var)``; returns
    ``log ∫ Π N(x_i; mu, noise_var) N(mu; prior_mean, prior_var) dmu``
    for a single feature dimension (vector ``x``). Used by the feature-aware
    CRP to score a block of observations as one cluster.
    """
    x = np.asarray(x, dtype=float)
    n = x.size
    if n == 0:
        return 0.0
    post_prec = 1.0 / prior_var + n / noise_var
    post_var = 1.0 / post_prec
    xsum = float(x.sum())
    post_mean = post_var * (prior_mean / prior_var + xsum / noise_var)
    ll = -0.5 * n * np.log(2.0 * np.pi * noise_var)
    ll -= 0.5 * float(np.sum(x**2)) / noise_var
    ll -= 0.5 * prior_mean**2 / prior_var
    ll += 0.5 * post_mean**2 * post_prec
    ll += 0.5 * (np.log(post_var) - np.log(prior_var))
    return float(ll)


def log_factorial(n: np.ndarray | float) -> np.ndarray | float:
    """``log(n!)`` via the gamma function (vectorised)."""
    return gammaln(np.asarray(n, dtype=float) + 1.0)
