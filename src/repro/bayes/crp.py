"""Chinese restaurant process: the constructive view of the Dirichlet process.

Provides sequential partition sampling (paper Eq. 18.6), the exchangeable
partition probability function (EPPF) used to score partitions, the Gibbs
reseating weights used inside collapsed samplers, and the expected table
count (useful for choosing the concentration ``α``).
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln


def sample_partition(n: int, alpha: float, rng: np.random.Generator) -> np.ndarray:
    """Sequentially seat ``n`` customers with concentration ``alpha``.

    Returns a label vector of length ``n`` with cluster ids ``0..K-1``
    (appearance order). Customer ``l`` joins existing table ``r`` with
    probability ``n_r / (l + alpha)`` and a new table with probability
    ``alpha / (l + alpha)`` — paper Eq. 18.6.
    """
    _check_alpha(alpha)
    if n < 0:
        raise ValueError("n must be non-negative")
    labels = np.empty(n, dtype=np.int64)
    counts: list[float] = []
    for l in range(n):
        if l == 0:
            labels[0] = 0
            counts.append(1.0)
            continue
        weights = np.asarray(counts + [alpha])
        probs = weights / (l + alpha)
        choice = int(rng.choice(probs.size, p=probs))
        if choice == len(counts):
            counts.append(1.0)
        else:
            counts[choice] += 1.0
        labels[l] = choice
    return labels


def table_counts(labels: np.ndarray) -> np.ndarray:
    """Occupancy of each table, ordered by table id."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(labels)


def log_eppf(counts: np.ndarray, alpha: float) -> float:
    """Log probability of a partition with table occupancies ``counts``.

    The CRP's exchangeable partition probability function:
    ``α^K · Π_k (n_k − 1)! · Γ(α) / Γ(α + n)``. Invariant to customer
    order — the exchangeability property the paper leans on.
    """
    _check_alpha(alpha)
    counts = np.asarray(counts, dtype=float)
    counts = counts[counts > 0]
    n = counts.sum()
    k = counts.size
    if n == 0:
        return 0.0
    return float(
        k * np.log(alpha)
        + np.sum(gammaln(counts))
        + gammaln(alpha)
        - gammaln(alpha + n)
    )


def gibbs_weights(counts: np.ndarray, alpha: float) -> np.ndarray:
    """Unnormalised prior reseating weights ``[n_1, …, n_K, α]``.

    For collapsed Gibbs sampling: remove the customer from its table first
    (so ``counts`` excludes it), multiply by per-table data likelihoods,
    normalise, and sample. The last entry is the new-table weight.
    """
    _check_alpha(alpha)
    counts = np.asarray(counts, dtype=float)
    if np.any(counts < 0):
        raise ValueError("table counts must be non-negative")
    return np.concatenate([counts, [alpha]])


def expected_tables(n: int, alpha: float) -> float:
    """``E[K] = Σ_{i=0}^{n-1} α / (α + i)`` — grows as ``α·log n``."""
    _check_alpha(alpha)
    if n < 0:
        raise ValueError("n must be non-negative")
    i = np.arange(n, dtype=float)
    return float(np.sum(alpha / (alpha + i)))


def alpha_for_expected_tables(n: int, target_tables: float) -> float:
    """Concentration whose expected table count is ``target_tables``.

    Solved by bisection; handy for setting a weakly informative ``α`` from
    a domain prior like "expect a few dozen pipe cohorts".
    """
    if n <= 1:
        raise ValueError("need at least two customers")
    if not 1.0 <= target_tables <= n:
        raise ValueError(f"target tables must lie in [1, {n}]")
    lo, hi = 1e-6, 1e6
    for _ in range(200):
        mid = np.sqrt(lo * hi)
        if expected_tables(n, mid) < target_tables:
            lo = mid
        else:
            hi = mid
    return float(np.sqrt(lo * hi))


def relabel(labels: np.ndarray) -> np.ndarray:
    """Canonical relabelling: clusters numbered 0..K-1 by first appearance."""
    labels = np.asarray(labels)
    mapping: dict[int, int] = {}
    out = np.empty_like(labels)
    for i, lab in enumerate(labels):
        if lab not in mapping:
            mapping[int(lab)] = len(mapping)
        out[i] = mapping[int(lab)]
    return out


def _check_alpha(alpha: float) -> None:
    if alpha <= 0:
        raise ValueError(f"CRP concentration must be positive, got {alpha}")
