"""Beta process over a discrete base measure, with its conjugate posterior.

The beta process ``H ~ BP(c, H0)`` (Hjort 1990; Thibaux & Jordan 2007) is a
positive Lévy process parameterised by a concentration ``c`` and a base
measure ``H0``. When ``H0`` is discrete with atoms ``{(ω_i, q_i)}``, a draw
``H`` has atoms at the same locations with independent weights

    π_i ~ Beta(c·q_i, c·(1 − q_i)),

which is the representation the pipe-failure models use: each atom is a
(unique) pipe or segment and ``π_i`` its per-year failure probability.
The Bernoulli process is conjugate: observing ``m`` draws ``X_j ~ BeP(H)``
with per-atom success counts ``s_i`` updates the process to

    H | X ~ BP(c + m,  c/(c+m)·H0 + 1/(c+m)·Σ_j X_j)      (paper Eq. 18.4)

so the posterior atom weights are ``Beta(c·q_i + s_i, c·(1−q_i) + m − s_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distributions import clip_unit


@dataclass(frozen=True)
class DiscreteBetaProcess:
    """``BP(c, H0)`` with discrete ``H0 = Σ_i q_i δ_{ω_i}``.

    Attributes
    ----------
    concentration:
        ``c > 0``; larger values concentrate draws around the base weights.
    base_weights:
        ``q_i ∈ (0, 1)``, one per atom.
    """

    concentration: float
    base_weights: np.ndarray

    def __post_init__(self) -> None:
        if self.concentration <= 0:
            raise ValueError(f"concentration must be positive, got {self.concentration}")
        weights = np.asarray(self.base_weights, dtype=float)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("base_weights must be a non-empty 1-D array")
        if np.any(weights <= 0.0) or np.any(weights >= 1.0):
            raise ValueError("base weights must lie strictly inside (0, 1)")
        object.__setattr__(self, "base_weights", weights)

    @property
    def n_atoms(self) -> int:
        return self.base_weights.size

    def shape_parameters(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-atom Beta shapes ``(c·q_i, c·(1−q_i))``."""
        c = self.concentration
        q = self.base_weights
        return c * q, c * (1.0 - q)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """One draw of the atom weights ``π_i``."""
        a, b = self.shape_parameters()
        return rng.beta(a, b)

    def mean(self) -> np.ndarray:
        """Expected atom weights (equal to the base weights)."""
        return self.base_weights.copy()

    def variance(self) -> np.ndarray:
        """Per-atom variance ``q(1−q)/(c+1)`` — shrinks as ``c`` grows."""
        q = self.base_weights
        return q * (1.0 - q) / (self.concentration + 1.0)

    def posterior(self, successes: np.ndarray, n_draws: int) -> "DiscreteBetaProcess":
        """Conjugate update after ``n_draws`` Bernoulli-process observations.

        ``successes[i]`` is the number of the ``n_draws`` binary draws in
        which atom ``i`` fired (``Σ_j x_{i,j}``). Implements paper Eq. 18.4.
        """
        s = np.asarray(successes, dtype=float)
        if s.shape != self.base_weights.shape:
            raise ValueError("successes must have one entry per atom")
        if np.any(s < 0) or np.any(s > n_draws):
            raise ValueError("success counts must lie in [0, n_draws]")
        c, m = self.concentration, float(n_draws)
        new_base = clip_unit((c * self.base_weights + s) / (c + m))
        return DiscreteBetaProcess(concentration=c + m, base_weights=np.asarray(new_base))

    def posterior_mean(self, successes: np.ndarray, n_draws: int) -> np.ndarray:
        """Posterior expected atom weights, ``(c·q_i + s_i) / (c + m)``."""
        return self.posterior(successes, n_draws).mean()


def sample_levy_atoms(
    mass: float, concentration: float, rng: np.random.Generator, truncation: int = 1000
) -> np.ndarray:
    """Approximate draw of a beta process with *continuous* base measure.

    Uses the stick-breaking-like construction of Teh, Görür & Ghahramani:
    rounds ``r = 1, 2, ...`` contribute ``Poisson(γ)`` atoms with weights
    given by products of Beta(c, 1) sticks (``γ`` = total mass of ``H0``).
    Only used for simulation/testing; the pipe models always work with the
    discrete representation above.
    """
    if mass <= 0 or concentration <= 0:
        raise ValueError("mass and concentration must be positive")
    weights: list[float] = []
    stick = 1.0
    for _ in range(truncation):
        n_round = int(rng.poisson(mass))
        stick *= float(rng.beta(concentration, 1.0))
        weights.extend(stick * rng.beta(concentration, 1.0, size=n_round))
        if stick < 1e-10:
            break
    return np.asarray(weights, dtype=float)
