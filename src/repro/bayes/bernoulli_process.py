"""Bernoulli process draws and binary failure matrices.

A draw ``X_j ~ BeP(H)`` from a Bernoulli process with a discrete beta
process ``H = Σ_i π_i δ_{ω_i}`` is a binary measure with
``x_{i,j} ~ Bernoulli(π_i)`` per atom. Stacking ``m`` draws column-wise
yields the paper's binary failure matrix (Fig. 18.3): rows are pipes (or
pipe segments), columns are observation years, ``x_{i,j} = 1`` iff asset
``i`` failed in year ``j``.
"""

from __future__ import annotations

import numpy as np

from .beta_process import DiscreteBetaProcess
from .distributions import bernoulli_loglik


def sample_draws(
    process: DiscreteBetaProcess | np.ndarray, n_draws: int, rng: np.random.Generator
) -> np.ndarray:
    """``(n_atoms, n_draws)`` binary matrix of Bernoulli-process draws.

    ``process`` may be a :class:`DiscreteBetaProcess` (its atom weights are
    sampled once, then shared by all draws — the exchangeable setting the
    conjugacy result assumes) or a fixed weight vector.
    """
    if n_draws < 0:
        raise ValueError("n_draws must be non-negative")
    if isinstance(process, DiscreteBetaProcess):
        weights = process.sample(rng)
    else:
        weights = np.asarray(process, dtype=float)
        if np.any(weights < 0) or np.any(weights > 1):
            raise ValueError("Bernoulli weights must lie in [0, 1]")
    return (rng.random((weights.size, n_draws)) < weights[:, None]).astype(np.int8)


def success_counts(matrix: np.ndarray) -> np.ndarray:
    """Per-atom success counts ``s_i = Σ_j x_{i,j}`` of a binary matrix."""
    matrix = _validate_binary(matrix)
    return matrix.sum(axis=1).astype(float)


def loglik(matrix: np.ndarray, weights: np.ndarray) -> float:
    """Log likelihood of a binary matrix under fixed atom weights."""
    matrix = _validate_binary(matrix)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (matrix.shape[0],):
        raise ValueError("need one weight per matrix row")
    s = matrix.sum(axis=1)
    n = matrix.shape[1]
    return float(np.sum(bernoulli_loglik(s, n, weights)))


def _validate_binary(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("failure matrix must be 2-D (atoms x draws)")
    if matrix.size and not np.isin(matrix, (0, 1)).all():
        raise ValueError("failure matrix must be binary")
    return matrix
