"""Bayesian nonparametric primitives: beta process, Bernoulli process, CRP."""

from .bernoulli_process import loglik, sample_draws, success_counts
from .beta_process import DiscreteBetaProcess, sample_levy_atoms
from .crp import (
    alpha_for_expected_tables,
    expected_tables,
    gibbs_weights,
    log_eppf,
    relabel,
    sample_partition,
    table_counts,
)
from .distributions import (
    bernoulli_loglik,
    beta_binomial_logmarginal,
    beta_logpdf,
    beta_mean_concentration,
    clip_unit,
    gaussian_logpdf,
    gaussian_marginal_logpdf_sum,
    log_factorial,
)

__all__ = [
    "loglik",
    "sample_draws",
    "success_counts",
    "DiscreteBetaProcess",
    "sample_levy_atoms",
    "alpha_for_expected_tables",
    "expected_tables",
    "gibbs_weights",
    "log_eppf",
    "relabel",
    "sample_partition",
    "table_counts",
    "bernoulli_loglik",
    "beta_binomial_logmarginal",
    "beta_logpdf",
    "beta_mean_concentration",
    "clip_unit",
    "gaussian_logpdf",
    "gaussian_marginal_logpdf_sum",
    "log_factorial",
]
