"""The telemetry recorder: hierarchical spans, counters, gauges, JSONL traces.

One process-global :class:`TelemetryRecorder` backs the module-level
:func:`span` / :func:`count` / :func:`gauge` helpers that the instrumented
hot paths call. Telemetry is **off by default** and the disabled path is a
single attribute check returning a shared no-op context manager — cheap
enough to leave instrumentation permanently in sweep loops (the perf
smoke's ``telemetry_noop`` check asserts this stays true).

Enabled, the recorder keeps everything in memory (thread-safe; span
parentage via a per-thread stack) and, when given a ``trace_path``,
appends finished spans and counter/gauge snapshots as JSONL — one JSON
object per ``write`` call, the same torn-line-free append discipline as
the run journal's event log. Counter increments are buffered and flushed
as deltas whenever a top-level span closes (and on :func:`flush`), so a
tight loop bumping ``dpmhbp.sweeps`` costs a dict update, not a write.

Cross-process: :func:`configure` exports ``REPRO_TRACE`` so process-pool
workers (which import this module fresh, or inherit the environment via
fork) auto-configure themselves against the *same* trace file; every line
carries its pid/thread, and the aggregation helpers in
:mod:`repro.telemetry.aggregate` merge them back together.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Environment variable carrying the trace path into worker processes.
TRACE_ENV = "REPRO_TRACE"

#: In-memory span retention cap; the trace file keeps the full history.
MAX_RETAINED_SPANS = 20_000


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: what ran, where in the tree, and for how long."""

    name: str
    path: str  # "/"-joined ancestry, e.g. "cell/fit/sweep"
    start_unix: float
    duration_s: float
    attrs: dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    thread: str = ""

    def to_json(self) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "path": self.path,
            "t": self.start_unix,
            "dur_s": self.duration_s,
            "pid": self.pid,
            "thread": self.thread,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared, reusable no-op context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; closing it records (and possibly exports) the result."""

    __slots__ = ("recorder", "name", "attrs", "_start", "_stack")

    def __init__(self, recorder: "TelemetryRecorder", name: str, attrs: dict):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._stack: list[str] | None = None

    def __enter__(self) -> "_Span":
        self._stack = self.recorder._thread_stack()
        self._stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start
        stack = self._stack if self._stack is not None else [self.name]
        path = "/".join(stack)
        if stack and stack[-1] == self.name:
            stack.pop()
        self.recorder._finish_span(
            SpanRecord(
                name=self.name,
                path=path,
                start_unix=time.time() - duration,
                duration_s=duration,
                attrs=self.attrs,
                pid=os.getpid(),
                thread=threading.current_thread().name,
            ),
            top_level=not stack,
        )


class TelemetryRecorder:
    """Thread-safe collector of spans, counters and gauges.

    ``enabled=False`` (the default global recorder) makes every operation
    a no-op; instrumented code never needs its own guard beyond calling
    the module-level helpers.
    """

    def __init__(self, enabled: bool = False, trace_path: str | Path | None = None):
        self.enabled = enabled
        self._trace_path: Path | None = Path(trace_path) if trace_path else None
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: list[SpanRecord] = []
        self._dropped_spans = 0
        self.counters: dict[str, float] = {}
        self._pending_counts: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    # ------------------------------------------------------------- recording
    def span(self, name: str, **attrs: Any) -> "_Span | _NullSpan":
        """A timed context manager; nested spans record their ancestry path."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def count(self, name: str, n: float = 1) -> None:
        """Increment a counter (buffered; exported on the next flush)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + n
            self._pending_counts[name] = self._pending_counts.get(name, 0.0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest value (exported immediately)."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = float(value)
        self._export(
            {
                "kind": "gauge",
                "t": time.time(),
                "name": name,
                "value": float(value),
                "pid": os.getpid(),
            }
        )

    # -------------------------------------------------------------- internals
    def _thread_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish_span(self, record: SpanRecord, top_level: bool) -> None:
        with self._lock:
            if len(self.spans) < MAX_RETAINED_SPANS:
                self.spans.append(record)
            else:
                self._dropped_spans += 1
        self._export(record.to_json())
        if top_level:
            self.flush()

    def _export(self, payload: dict) -> None:
        if self._trace_path is None:
            return
        line = json.dumps(payload, sort_keys=True, default=str) + "\n"
        try:
            with open(self._trace_path, "a", encoding="utf-8") as handle:
                handle.write(line)
        except OSError:
            # Telemetry must never take a run down with it.
            pass

    # ------------------------------------------------------------- lifecycle
    @property
    def trace_path(self) -> Path | None:
        return self._trace_path

    def set_trace_path(self, path: str | Path) -> None:
        """Point the exporter at ``path`` (e.g. the run journal directory)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._trace_path = path
        os.environ[TRACE_ENV] = str(path)

    def flush(self) -> None:
        """Export buffered counter deltas (one ``counters`` line if any)."""
        with self._lock:
            pending, self._pending_counts = self._pending_counts, {}
        if pending:
            self._export(
                {
                    "kind": "counters",
                    "t": time.time(),
                    "pid": os.getpid(),
                    "counts": pending,
                }
            )

    def snapshot(self) -> dict:
        """Point-in-time view of everything collected in this process."""
        with self._lock:
            return {
                "spans": list(self.spans),
                "dropped_spans": self._dropped_spans,
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
            }

    def reset(self) -> None:
        """Drop all collected data (tests; between unrelated runs)."""
        with self._lock:
            self.spans.clear()
            self._dropped_spans = 0
            self.counters.clear()
            self._pending_counts.clear()
            self.gauges.clear()


# The process-global recorder. Starts disabled; a worker process spawned
# with REPRO_TRACE in its environment wakes up already exporting.
_recorder = TelemetryRecorder(
    enabled=TRACE_ENV in os.environ, trace_path=os.environ.get(TRACE_ENV) or None
)


def get_recorder() -> TelemetryRecorder:
    """The active process-global recorder."""
    return _recorder


def configure(
    trace_path: str | Path | None = None, enabled: bool = True
) -> TelemetryRecorder:
    """Replace the global recorder; with ``trace_path``, export JSONL there.

    The path is also published via the ``REPRO_TRACE`` environment
    variable so process-pool workers trace into the same file.
    """
    global _recorder
    _recorder = TelemetryRecorder(enabled=enabled)
    if trace_path is not None:
        _recorder.set_trace_path(trace_path)
    else:
        os.environ.pop(TRACE_ENV, None)
    return _recorder


def disable() -> None:
    """Back to the zero-overhead no-op recorder."""
    configure(trace_path=None, enabled=False)


def enabled() -> bool:
    return _recorder.enabled


def span(name: str, **attrs: Any) -> "_Span | _NullSpan":
    """Module-level :meth:`TelemetryRecorder.span` on the global recorder."""
    rec = _recorder
    if not rec.enabled:
        return _NULL_SPAN
    return rec.span(name, **attrs)


def count(name: str, n: float = 1) -> None:
    rec = _recorder
    if rec.enabled:
        rec.count(name, n)


def gauge(name: str, value: float) -> None:
    rec = _recorder
    if rec.enabled:
        rec.gauge(name, value)


def flush() -> None:
    _recorder.flush()


def timed_iter(name: str, iterable: "Iterator | Any") -> Iterator:
    """Yield from ``iterable``, counting ``<name>`` once per item.

    Convenience for sweep loops: ``for sweep in timed_iter("dpmhbp.sweeps",
    range(n))`` bumps the counter without littering the loop body. The
    disabled path adds one truthiness check per item.
    """
    rec = _recorder
    if not rec.enabled:
        yield from iterable
        return
    for item in iterable:
        rec.count(name)
        yield item
