"""Trace aggregation: turn a JSONL trace into where-the-time-went tables.

The trace file interleaves span/counter/gauge lines from every process
and thread that worked on a run. These helpers fold it back into the
numbers a human asks for — total/mean/max per span name, counter totals,
last-seen gauges — and render the ``docs/performance.md``-style report
``repro status`` and the docs build on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .recorder import SpanRecord, TelemetryRecorder

__all__ = [
    "SpanStats",
    "read_trace",
    "aggregate_spans",
    "aggregate_counters",
    "aggregate_gauges",
    "summarize_trace",
    "format_trace_report",
]


@dataclass
class SpanStats:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    min_s: float = field(default=float("inf"))

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        self.max_s = max(self.max_s, duration_s)
        self.min_s = min(self.min_s, duration_s)


def read_trace(path: str | Path) -> list[dict]:
    """Parsed trace lines, skipping any torn/partial trailing writes."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _span_dicts(records: list[dict | SpanRecord]) -> list[dict]:
    out = []
    for record in records:
        if isinstance(record, SpanRecord):
            out.append(record.to_json())
        elif record.get("kind") == "span":
            out.append(record)
    return out


def aggregate_spans(
    records: list[dict | SpanRecord], by: str = "name"
) -> dict[str, SpanStats]:
    """Per-``name`` (or per-``path``) timing stats over the span records."""
    if by not in ("name", "path"):
        raise ValueError(f"by must be 'name' or 'path', got {by!r}")
    stats: dict[str, SpanStats] = {}
    for record in _span_dicts(records):
        key = str(record.get(by, "?"))
        stats.setdefault(key, SpanStats(name=key)).add(float(record.get("dur_s", 0.0)))
    return stats


def aggregate_counters(records: list[dict]) -> dict[str, float]:
    """Summed counter deltas across every ``counters`` line in the trace."""
    totals: dict[str, float] = {}
    for record in records:
        if record.get("kind") != "counters":
            continue
        for name, value in (record.get("counts") or {}).items():
            totals[name] = totals.get(name, 0.0) + float(value)
    return totals


def aggregate_gauges(records: list[dict]) -> dict[str, float]:
    """Last-written value per gauge (trace order)."""
    gauges: dict[str, float] = {}
    for record in records:
        if record.get("kind") == "gauge" and "name" in record:
            gauges[str(record["name"])] = float(record.get("value", 0.0))
    return gauges


def summarize_trace(
    source: str | Path | list[dict] | TelemetryRecorder, by: str = "name"
) -> dict:
    """One-stop summary of a trace file, parsed records, or a live recorder."""
    if isinstance(source, TelemetryRecorder):
        snap = source.snapshot()
        return {
            "spans": aggregate_spans(snap["spans"], by=by),
            "counters": snap["counters"],
            "gauges": snap["gauges"],
        }
    records = read_trace(source) if isinstance(source, (str, Path)) else source
    return {
        "spans": aggregate_spans(records, by=by),
        "counters": aggregate_counters(records),
        "gauges": aggregate_gauges(records),
    }


def format_trace_report(summary: dict, top: int = 15) -> str:
    """Render a summary (see :func:`summarize_trace`) as an aligned table."""
    lines: list[str] = []
    spans: dict[str, SpanStats] = summary.get("spans", {})
    if spans:
        lines.append(
            f"{'span':<28s} {'count':>7s} {'total':>10s} {'mean':>10s} {'max':>10s}"
        )
        ranked = sorted(spans.values(), key=lambda s: s.total_s, reverse=True)
        for stat in ranked[:top]:
            lines.append(
                f"{stat.name:<28s} {stat.count:>7d} {stat.total_s:>9.2f}s"
                f" {1000 * stat.mean_s:>8.1f}ms {1000 * stat.max_s:>8.1f}ms"
            )
        if len(ranked) > top:
            lines.append(f"… {len(ranked) - top} more span name(s)")
    counters = summary.get("counters", {})
    if counters:
        if lines:  # blank separator only between sections, never leading
            lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<30s} {counters[name]:>12g}")
    gauges = summary.get("gauges", {})
    if gauges:
        if lines:
            lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<30s} {gauges[name]:>12.4g}")
    if not lines:
        return "no telemetry recorded"
    return "\n".join(lines)
