"""``repro status <run_dir>``: what a journalled run is doing right now.

Everything here is read-only over the PR 2 run-journal artifacts — the
manifest (grid shape), the checkpoint markers (done cells), the
``.failed.json`` records and the event log (attempts, retries, timing) —
plus the telemetry trace (``trace.jsonl``) when the run was traced. It
works equally on an in-flight run (a concurrent writer only ever appends
whole lines / renames complete files) and a finished one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..runs.journal import RunJournal
from .aggregate import format_trace_report, summarize_trace

#: Trace file name inside a run directory (written by ``--trace``).
TRACE_NAME = "trace.jsonl"


@dataclass
class CellStatus:
    """One grid cell's lifecycle as the journal records it."""

    cell_id: str
    state: str  # "done" | "failed" | "running" | "pending"
    attempts: int = 0
    duration_s: float | None = None
    error_type: str | None = None
    error: str | None = None
    last_seed: int | None = None


@dataclass
class RunStatus:
    """Everything ``repro status`` renders, as plain data."""

    run_dir: str
    fingerprint: str
    regions: list[str]
    n_repeats: int
    cells: list[CellStatus]
    retries: dict[str, int] = field(default_factory=dict)
    started_unix: float | None = None
    finished: bool = False
    trace_summary: dict | None = None

    @property
    def total(self) -> int:
        return len(self.cells)

    def counts(self) -> dict[str, int]:
        out = {"done": 0, "failed": 0, "running": 0, "pending": 0}
        for cell in self.cells:
            out[cell.state] += 1
        return out


def _expected_cell_ids(regions: list[str], n_repeats: int) -> list[str]:
    return [
        f"{region}-r{repeat:03d}"
        for region in regions
        for repeat in range(n_repeats)
    ]


def run_status(run_dir: str | Path) -> RunStatus:
    """Assemble a :class:`RunStatus` from a run directory's artifacts."""
    journal = RunJournal.open(run_dir)
    config = journal.manifest.get("config", {})
    regions = [str(r) for r in (config.get("regions") or [])]
    n_repeats = int(config.get("n_repeats") or 0)
    completed = journal.completed_cells()
    failed = journal.failed_cells()
    events = journal.events()

    # Per-cell evidence from the event log: attempts, timing, liveness.
    started: dict[str, float] = {}
    attempts: dict[str, int] = {}
    durations: dict[str, float] = {}
    retries: dict[str, int] = {}
    seeds: dict[str, int | None] = {}
    run_started: float | None = None
    finished = False
    for event in events:
        kind = event.get("event")
        cell = event.get("cell")
        if kind == "run_started" and run_started is None:
            run_started = float(event.get("t", 0.0)) or None
        elif kind in ("run_completed", "run_aborted"):
            finished = True
        if not cell:
            continue
        if kind == "cell_started":
            started[cell] = float(event.get("t", 0.0))
            attempts[cell] = max(attempts.get(cell, 0), int(event.get("attempt", 1)))
            seeds[cell] = event.get("seed")
        elif kind == "cell_retried":
            retries[cell] = retries.get(cell, 0) + 1
        elif kind == "cell_completed":
            durations[cell] = float(event.get("duration_s", 0.0))

    expected = _expected_cell_ids(regions, n_repeats)
    known = set(expected)
    # A journal can hold cells outside the manifest grid (defensive).
    extras = sorted((completed | set(failed)) - known)
    cells: list[CellStatus] = []
    for cell_id in expected + extras:
        if cell_id in completed:
            state = "done"
        elif cell_id in failed:
            state = "failed"
        elif cell_id in started and not finished:
            state = "running"
        else:
            state = "pending"
        failure = failed.get(cell_id, {})
        cells.append(
            CellStatus(
                cell_id=cell_id,
                state=state,
                attempts=max(
                    attempts.get(cell_id, 0), int(failure.get("attempts") or 0)
                ),
                duration_s=durations.get(cell_id),
                error_type=failure.get("error_type"),
                error=failure.get("error"),
                last_seed=seeds.get(cell_id),
            )
        )

    trace_path = Path(run_dir) / TRACE_NAME
    trace_summary = summarize_trace(trace_path) if trace_path.exists() else None
    return RunStatus(
        run_dir=str(journal.run_dir),
        fingerprint=journal.fingerprint,
        regions=regions,
        n_repeats=n_repeats,
        cells=cells,
        retries=retries,
        started_unix=run_started,
        finished=finished,
        trace_summary=trace_summary,
    )


_STATE_GLYPH = {"done": "#", "failed": "x", "running": ">", "pending": "."}


def format_status(status: RunStatus, verbose: bool = False) -> str:
    """Render a :class:`RunStatus` as the ``repro status`` report."""
    counts = status.counts()
    lines = [
        f"run: {status.run_dir}  (fingerprint {status.fingerprint[:12]}…)",
        f"grid: regions {', '.join(status.regions) or '?'} × {status.n_repeats} "
        f"repeat(s) = {status.total} cell(s)   "
        f"[{'finished' if status.finished else 'in flight'}]",
        f"progress: {counts['done']}/{status.total} done, {counts['failed']} failed, "
        f"{counts['running']} running, {counts['pending']} pending",
    ]
    if status.started_unix is not None:
        age = time.time() - status.started_unix
        lines.append(f"last (re)start: {age:.0f}s ago")

    by_region: dict[str, list[CellStatus]] = {}
    for cell in status.cells:
        by_region.setdefault(cell.cell_id.rsplit("-r", 1)[0], []).append(cell)
    for region, region_cells in by_region.items():
        strip = "".join(_STATE_GLYPH[c.state] for c in region_cells)
        done = sum(c.state == "done" for c in region_cells)
        lines.append(f"  region {region:<4s} [{strip}] {done}/{len(region_cells)}")

    timed = [c for c in status.cells if c.duration_s is not None]
    # Verbose renders the table even when nothing has a duration yet (a
    # freshly started or traced-but-uncompleted run has cells worth
    # listing); the total/mean footer still needs at least one timing.
    if timed or (verbose and status.cells):
        lines.append("")
        lines.append(f"{'cell':<12s} {'state':<8s} {'attempts':>8s} {'duration':>10s}")
        for cell in status.cells:
            if cell.duration_s is None and not verbose:
                continue
            dur = f"{cell.duration_s:.2f}s" if cell.duration_s is not None else "—"
            lines.append(
                f"{cell.cell_id:<12s} {cell.state:<8s} {cell.attempts:>8d} {dur:>10s}"
            )
        if timed:
            total_s = sum(c.duration_s for c in timed)
            mean_s = total_s / len(timed)
            lines.append(
                f"cell time: total {total_s:.2f}s, mean {mean_s:.2f}s over {len(timed)} cell(s)"
            )

    failures = [c for c in status.cells if c.state == "failed"]
    if failures:
        lines.append("")
        lines.append("failures:")
        for cell in failures:
            first = (cell.error or "").strip().splitlines()
            detail = first[-1] if first else ""
            lines.append(
                f"  {cell.cell_id}: {cell.error_type or '?'} "
                f"after {cell.attempts} attempt(s)  {detail[:80]}"
            )
    if status.retries:
        total_retries = sum(status.retries.values())
        per_cell = ", ".join(
            f"{cell}×{n}" for cell, n in sorted(status.retries.items())
        )
        lines.append(f"retries: {total_retries} ({per_cell})")

    if status.trace_summary is not None:
        lines.append("")
        lines.append(f"trace ({TRACE_NAME}):")
        lines.append(format_trace_report(status.trace_summary))
    return "\n".join(lines)
