"""Prometheus text exposition of the telemetry counters and gauges.

The recorder's counters/gauges map 1:1 onto Prometheus' two simplest
metric types, so a run can drop a scrape-ready snapshot next to its
journal with zero dependencies: every CLI subcommand takes
``--metrics-out PATH`` and writes the process' final counter and gauge
state in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# TYPE`` line per metric, one sample per line, ``_total``-suffixed
counters. A node-exporter-style textfile collector (or any scraper of
static files) picks it up as-is.

Dotted telemetry names map to Prometheus' underscore convention:
``chain.rhat.n_clusters`` → ``repro_chain_rhat_n_clusters``.
"""

from __future__ import annotations

import math
import os
import re
import tempfile
from pathlib import Path
from typing import Mapping

from .recorder import TelemetryRecorder, get_recorder

#: Namespace prefix for every exported metric.
METRIC_PREFIX = "repro_"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def sanitize_metric_name(name: str, prefix: str = METRIC_PREFIX) -> str:
    """Telemetry name → valid prefixed Prometheus metric name.

    Dots (and any other invalid character) become underscores; a leading
    digit after prefixing cannot happen because the prefix starts the
    name. Idempotent on already-valid names.
    """
    cleaned = _INVALID_CHARS.sub("_", name.strip())
    candidate = f"{prefix}{cleaned}"
    if not _VALID_NAME.match(candidate):
        raise ValueError(f"cannot form a Prometheus metric name from {name!r}")
    return candidate


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_metrics(
    counters: Mapping[str, float],
    gauges: Mapping[str, float],
    prefix: str = METRIC_PREFIX,
) -> str:
    """Render counter/gauge mappings as Prometheus exposition text.

    Counters get the conventional ``_total`` suffix; both families are
    emitted sorted so the output is diff-stable across runs. The returned
    text ends with a newline (required by the format).
    """
    lines: list[str] = []
    for name in sorted(counters):
        metric = sanitize_metric_name(name, prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    for name in sorted(gauges):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    return "\n".join(lines) + "\n" if lines else ""


def render_recorder(
    recorder: TelemetryRecorder | None = None, prefix: str = METRIC_PREFIX
) -> str:
    """Exposition text for a recorder's current counters and gauges."""
    snapshot = (recorder or get_recorder()).snapshot()
    return render_metrics(snapshot["counters"], snapshot["gauges"], prefix=prefix)


def write_metrics(
    path: str | Path,
    recorder: TelemetryRecorder | None = None,
    prefix: str = METRIC_PREFIX,
) -> Path:
    """Atomically write the recorder's metrics to ``path``.

    Same-directory temp file + ``os.replace``, matching the journal's
    write discipline — a scraper never reads a torn metrics file.
    """
    path = Path(path)
    text = render_recorder(recorder, prefix=prefix)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
