"""Zero-dependency observability: spans, counters, gauges, traces, status.

The third leg of the production stool (after the parallel executor and
the journalled run engine): one consistent instrumentation API threaded
through inference, parallel fan-out, the cache and the grid engine.

* :func:`span` — hierarchical timed spans (``with span("fit"): ...``),
  thread-safe, with per-thread ancestry paths;
* :func:`count` / :func:`gauge` — sweeps, acceptance rates, cluster
  counts, cache hits, retries;
* :func:`configure` — switch telemetry on, optionally exporting a JSONL
  trace (``--trace`` on every CLI subcommand writes it into the run
  journal's directory so traces resume with the run);
* :mod:`~repro.telemetry.aggregate` — fold a trace back into
  where-the-time-went tables;
* :mod:`~repro.telemetry.status` — the ``repro status <run_dir>`` view
  over a journalled run.

Telemetry is **disabled by default** and the disabled path is a no-op
recorder (one attribute check per call) — cheap enough that the
instrumentation lives permanently in the hot paths; the perf smoke
(``make perfcheck``) asserts the overhead stays unmeasurable.
"""

from .aggregate import (
    SpanStats,
    aggregate_counters,
    aggregate_gauges,
    aggregate_spans,
    format_trace_report,
    read_trace,
    summarize_trace,
)
from .prometheus import (
    METRIC_PREFIX,
    render_metrics,
    render_recorder,
    sanitize_metric_name,
    write_metrics,
)
from .recorder import (
    MAX_RETAINED_SPANS,
    TRACE_ENV,
    SpanRecord,
    TelemetryRecorder,
    configure,
    count,
    disable,
    enabled,
    flush,
    gauge,
    get_recorder,
    span,
    timed_iter,
)
from .status import TRACE_NAME, CellStatus, RunStatus, format_status, run_status

__all__ = [
    "MAX_RETAINED_SPANS",
    "METRIC_PREFIX",
    "TRACE_ENV",
    "TRACE_NAME",
    "CellStatus",
    "RunStatus",
    "SpanRecord",
    "SpanStats",
    "TelemetryRecorder",
    "aggregate_counters",
    "aggregate_gauges",
    "aggregate_spans",
    "configure",
    "count",
    "disable",
    "enabled",
    "flush",
    "format_status",
    "format_trace_report",
    "gauge",
    "get_recorder",
    "read_trace",
    "render_metrics",
    "render_recorder",
    "run_status",
    "sanitize_metric_name",
    "span",
    "summarize_trace",
    "timed_iter",
    "write_metrics",
]
