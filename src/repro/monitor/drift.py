"""Metric-drift tracking: per-cell metric history vs. saved baselines.

The perf harness (:mod:`repro.perf`) pins the repo's *speed* trajectory
with ``BENCH_<rev>.json`` snapshots; this module pins its *accuracy*
trajectory the same way. ``make health-save`` reads every completed
cell's metrics (AUC, budget-restricted AUC) out of a run journal and
writes them to ``HEALTH_<rev>.json``; ``make health-compare`` re-reads a
run directory and flags every cell×model×metric that moved beyond a
configurable band from the saved baseline.

Band semantics: metrics whose baseline and current values both lie in
``[0, 1]`` (AUC-family) compare on an **absolute** band (default
``0.02``); anything else compares on a **relative** band of the same
numeric value (default 2%⇒band·|baseline|), so unbounded metrics don't
inherit a meaningless absolute tolerance.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

#: Default drift band (absolute for [0,1]-scale metrics, relative otherwise).
DEFAULT_BAND = 0.02

#: Baseline snapshot filename stem (mirrors ``BENCH_<rev>.json``).
BASELINE_PREFIX = "HEALTH_"


@dataclass(frozen=True)
class DriftFlag:
    """One cell×model×metric that moved outside the band."""

    cell_id: str
    model: str
    metric: str
    baseline: float
    current: float
    band: float
    relative: bool  # True when the band applied as band·|baseline|

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def key(self) -> str:
        return f"{self.cell_id}/{self.model}/{self.metric}"

    def to_json(self) -> dict:
        return {
            "cell_id": self.cell_id,
            "model": self.model,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "band": self.band,
            "relative": self.relative,
        }


@dataclass
class DriftReport:
    """Outcome of comparing a run's metrics against a baseline snapshot."""

    flags: list[DriftFlag] = field(default_factory=list)
    n_compared: int = 0
    missing: list[str] = field(default_factory=list)  # in baseline, not in run
    added: list[str] = field(default_factory=list)  # in run, not in baseline
    baseline_rev: str = "?"

    @property
    def ok(self) -> bool:
        return not self.flags

    @property
    def verdict(self) -> str:
        return "pass" if self.ok else "warn"

    def to_json(self) -> dict:
        return {
            "verdict": self.verdict,
            "n_compared": self.n_compared,
            "baseline_rev": self.baseline_rev,
            "flags": [flag.to_json() for flag in self.flags],
            "missing": list(self.missing),
            "added": list(self.added),
        }

    def format(self) -> str:
        lines = [
            f"compared {self.n_compared} metric(s) against baseline rev "
            f"{self.baseline_rev}"
        ]
        for flag in self.flags:
            kind = "rel" if flag.relative else "abs"
            lines.append(
                f"DRIFT: {flag.key}  {flag.baseline:.4f} -> {flag.current:.4f}"
                f"  (Δ {flag.delta:+.4f}, {kind} band {flag.band:g})"
            )
        if self.missing:
            lines.append(f"missing vs baseline: {', '.join(self.missing)}")
        if self.added:
            lines.append(f"new vs baseline: {', '.join(self.added)}")
        if self.ok:
            lines.append("ok: no metric drifted outside the band")
        return "\n".join(lines)


def current_rev() -> str:
    """Short git revision of the working tree, or ``"worktree"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        )
        return out.stdout.strip() or "worktree"
    except (OSError, subprocess.SubprocessError):
        return "worktree"


def metrics_snapshot(run_dir: str | Path) -> dict:
    """Every completed cell's per-model scalar metrics, as plain data.

    Shape: ``{"fingerprint": ..., "cells": {cell_id: {model: {metric:
    value}}}}`` — exactly what gets persisted to ``HEALTH_<rev>.json``
    and what :func:`compare_to_baseline` consumes on both sides.
    """
    from ..runs.journal import RunJournal

    journal = RunJournal.open(run_dir)
    return {
        "fingerprint": journal.fingerprint,
        "cells": journal.cell_metrics(),
    }


def baseline_path(directory: Path | str = ".", rev: str | None = None) -> Path:
    """``HEALTH_<rev>.json`` inside ``directory``."""
    return Path(directory) / f"{BASELINE_PREFIX}{rev or current_rev()}.json"


def save_baseline(
    run_dir: str | Path, directory: Path | str = ".", rev: str | None = None
) -> Path:
    """Snapshot a run's cell metrics to ``HEALTH_<rev>.json``."""
    rev = rev or current_rev()
    payload = {"rev": rev, **metrics_snapshot(run_dir)}
    path = baseline_path(directory, rev)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path | str) -> dict:
    """Read a ``HEALTH_*.json`` baseline snapshot."""
    payload = json.loads(Path(path).read_text())
    if "cells" not in payload:
        raise ValueError(f"{path} is not a metric baseline (no 'cells' key)")
    return payload


def latest_baseline(directory: Path | str = ".") -> Path | None:
    """Most recently modified ``HEALTH_*.json`` in ``directory``, if any."""
    candidates = sorted(
        Path(directory).glob(f"{BASELINE_PREFIX}*.json"),
        key=lambda p: p.stat().st_mtime,
    )
    return candidates[-1] if candidates else None


def compare_to_baseline(
    baseline: dict, current: dict, band: float = DEFAULT_BAND
) -> DriftReport:
    """Flag every cell×model×metric outside ``band`` of the baseline.

    Metrics present on only one side cannot drift; they are reported in
    ``missing`` / ``added`` instead so renamed models and new cells are
    visible without failing the comparison.
    """
    if band <= 0:
        raise ValueError("band must be positive")
    base_cells = baseline.get("cells") or {}
    cur_cells = current.get("cells") or {}

    def flatten(cells: dict) -> dict[tuple[str, str, str], float]:
        flat = {}
        for cell_id, models in cells.items():
            for model, metrics in (models or {}).items():
                for metric, value in (metrics or {}).items():
                    flat[(cell_id, model, metric)] = float(value)
        return flat

    base_flat = flatten(base_cells)
    cur_flat = flatten(cur_cells)
    report = DriftReport(baseline_rev=str(baseline.get("rev", "?")))
    report.missing = sorted("/".join(k) for k in base_flat.keys() - cur_flat.keys())
    report.added = sorted("/".join(k) for k in cur_flat.keys() - base_flat.keys())
    for key in sorted(base_flat.keys() & cur_flat.keys()):
        ref, now = base_flat[key], cur_flat[key]
        report.n_compared += 1
        unit_scale = 0.0 <= ref <= 1.0 and 0.0 <= now <= 1.0
        limit = band if unit_scale else band * max(abs(ref), 1e-12)
        if abs(now - ref) > limit:
            cell_id, model, metric = key
            report.flags.append(
                DriftFlag(
                    cell_id=cell_id,
                    model=model,
                    metric=metric,
                    baseline=ref,
                    current=now,
                    band=band,
                    relative=not unit_scale,
                )
            )
    return report


def compare_run(
    run_dir: str | Path, baseline: Path | str, band: float = DEFAULT_BAND
) -> DriftReport:
    """Convenience: load a baseline and compare a run directory against it."""
    return compare_to_baseline(
        load_baseline(baseline), metrics_snapshot(run_dir), band=band
    )
