"""Chain-health monitoring: per-sweep scalars → convergence verdicts.

The convergence diagnostics in :mod:`repro.inference.diagnostics` were a
dead-end library until this module: nothing called them, so a silently
divergent chain produced a confident Table 18.3 row. :class:`ChainHealth`
closes that loop — it records per-sweep scalars (cluster count, collapsed
log-likelihood, acceptance rates) into one :class:`~repro.inference.chains.Trace`
per chain, and at fit end folds per-quantity ESS, Geweke z and pooled
split-R̂ into a :class:`HealthReport` with a pass/warn/fail verdict.

Thresholds are tunable via keyword arguments or ``REPRO_HEALTH_*``
environment variables (``REPRO_HEALTH_RHAT_WARN=1.05`` etc.); see
:class:`HealthThresholds`.

``nan`` diagnostics keep the meaning the diagnostics module defines:
**undiagnosable**. An undiagnosable statistic never passes *or* fails a
quantity — it is reported as-is and excluded from the verdict, so a
degenerate (constant) quantity cannot masquerade as a converged one and
cannot fail an otherwise healthy fit either.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .. import telemetry
from ..inference.chains import Trace
from ..inference.diagnostics import (
    effective_sample_size,
    geweke_zscore,
    split_rhat,
)

#: Environment-variable prefix for threshold overrides.
HEALTH_ENV_PREFIX = "REPRO_HEALTH_"

#: Verdict severity order (worst wins when folding quantities together).
VERDICTS = ("pass", "warn", "fail")

#: Numeric code exported as the ``chain.health`` gauge.
VERDICT_CODES = {"pass": 0.0, "undiagnosable": 1.0, "warn": 1.0, "fail": 2.0}

#: Geweke needs this many retained samples to say anything.
MIN_GEWEKE_SAMPLES = 20


@dataclass(frozen=True)
class HealthThresholds:
    """Tunable pass/warn/fail bands for the convergence statistics.

    ``rhat`` and ``|geweke z|`` escalate when they *exceed* their bound;
    ``ess`` (summed across chains) escalates when it *falls below* its
    bound. Defaults are the conventional conservative choices (R̂ 1.1 /
    1.3, |z| 2.5 / 4, ESS 25 / 10).
    """

    rhat_warn: float = 1.1
    rhat_fail: float = 1.3
    ess_warn: float = 25.0
    ess_fail: float = 10.0
    geweke_warn: float = 2.5
    geweke_fail: float = 4.0

    def __post_init__(self) -> None:
        if not (1.0 <= self.rhat_warn <= self.rhat_fail):
            raise ValueError("need 1.0 <= rhat_warn <= rhat_fail")
        if not (0.0 <= self.ess_fail <= self.ess_warn):
            raise ValueError("need 0 <= ess_fail <= ess_warn")
        if not (0.0 < self.geweke_warn <= self.geweke_fail):
            raise ValueError("need 0 < geweke_warn <= geweke_fail")

    @classmethod
    def from_env(cls, **overrides: float | None) -> "HealthThresholds":
        """Defaults ← ``REPRO_HEALTH_<FIELD>`` env vars ← explicit kwargs."""
        values: dict[str, float] = {}
        for f in dataclasses.fields(cls):
            raw = os.environ.get(HEALTH_ENV_PREFIX + f.name.upper())
            if raw is None:
                continue
            try:
                values[f.name] = float(raw)
            except ValueError as exc:
                raise ValueError(
                    f"{HEALTH_ENV_PREFIX}{f.name.upper()}={raw!r} is not a number"
                ) from exc
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


def _nan_to_none(value: float) -> float | None:
    return None if value is None or not np.isfinite(value) else float(value)


def _none_to_nan(value: float | None) -> float:
    return float("nan") if value is None else float(value)


@dataclass(frozen=True)
class QuantityHealth:
    """Convergence diagnostics of one scalar quantity across the chains."""

    name: str
    n_chains: int
    n_samples: int  # retained per chain (after trimming to the shortest)
    mean: float
    ess: float  # summed across chains; nan = undiagnosable
    geweke_z: float  # worst |z| across chains (signed); nan = undiagnosable
    rhat: float  # pooled split-R̂; nan = undiagnosable
    verdict: str  # "pass" | "warn" | "fail" | "undiagnosable"
    reasons: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "n_chains": self.n_chains,
            "n_samples": self.n_samples,
            "mean": _nan_to_none(self.mean),
            "ess": _nan_to_none(self.ess),
            "geweke_z": _nan_to_none(self.geweke_z),
            "rhat": _nan_to_none(self.rhat),
            "verdict": self.verdict,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "QuantityHealth":
        return cls(
            name=str(payload["name"]),
            n_chains=int(payload["n_chains"]),
            n_samples=int(payload["n_samples"]),
            mean=_none_to_nan(payload.get("mean")),
            ess=_none_to_nan(payload.get("ess")),
            geweke_z=_none_to_nan(payload.get("geweke_z")),
            rhat=_none_to_nan(payload.get("rhat")),
            verdict=str(payload["verdict"]),
            reasons=tuple(payload.get("reasons") or ()),
        )


@dataclass
class HealthReport:
    """Every monitored quantity's diagnostics plus the folded verdict."""

    quantities: dict[str, QuantityHealth]
    thresholds: HealthThresholds = field(default_factory=HealthThresholds)
    verdict: str = "undiagnosable"

    @property
    def ok(self) -> bool:
        return self.verdict == "pass"

    def worst_rhat(self) -> float:
        """Largest finite pooled R̂, or nan when none is diagnosable."""
        finite = [
            q.rhat for q in self.quantities.values() if np.isfinite(q.rhat)
        ]
        return max(finite) if finite else float("nan")

    def to_json(self) -> dict:
        return {
            "verdict": self.verdict,
            "thresholds": self.thresholds.to_json(),
            "quantities": {
                name: q.to_json() for name, q in self.quantities.items()
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "HealthReport":
        return cls(
            quantities={
                name: QuantityHealth.from_json(entry)
                for name, entry in (payload.get("quantities") or {}).items()
            },
            thresholds=HealthThresholds(**(payload.get("thresholds") or {})),
            verdict=str(payload.get("verdict", "undiagnosable")),
        )

    def publish_gauges(self) -> None:
        """Export the report's statistics as telemetry gauges.

        ``chain.rhat.<q>`` / ``chain.ess.<q>`` / ``chain.geweke.<q>`` per
        quantity, plus the summary gauges ``chain.rhat`` (worst finite R̂)
        and ``chain.health`` (0 pass / 1 warn / 2 fail). The Prometheus
        exporter renders these as ``repro_chain_rhat`` etc. No-ops when
        telemetry is disabled.
        """
        if not telemetry.enabled():
            return
        for name, q in self.quantities.items():
            if np.isfinite(q.rhat):
                telemetry.gauge(f"chain.rhat.{name}", q.rhat)
            if np.isfinite(q.ess):
                telemetry.gauge(f"chain.ess.{name}", q.ess)
            if np.isfinite(q.geweke_z):
                telemetry.gauge(f"chain.geweke.{name}", q.geweke_z)
        worst = self.worst_rhat()
        if np.isfinite(worst):
            telemetry.gauge("chain.rhat", worst)
        telemetry.gauge("chain.health", VERDICT_CODES.get(self.verdict, 1.0))

    def format(self) -> str:
        """Render the per-quantity convergence table plus the verdict."""
        lines = [
            f"{'quantity':<16s} {'chains':>6s} {'samples':>8s} {'mean':>10s}"
            f" {'ESS':>8s} {'geweke z':>9s} {'R-hat':>7s}  verdict"
        ]

        def cell(value: float, fmt: str) -> str:
            return format(value, fmt) if np.isfinite(value) else "nan"

        for q in self.quantities.values():
            lines.append(
                f"{q.name:<16s} {q.n_chains:>6d} {q.n_samples:>8d}"
                f" {cell(q.mean, '>10.4g'):>10s} {cell(q.ess, '>8.1f'):>8s}"
                f" {cell(q.geweke_z, '>9.2f'):>9s} {cell(q.rhat, '>7.3f'):>7s}"
                f"  {q.verdict}"
                + (f"  ({'; '.join(q.reasons)})" if q.reasons else "")
            )
        lines.append(f"health verdict: {self.verdict.upper()}")
        return "\n".join(lines)


def _classify(
    name: str,
    ess: float,
    geweke_z: float,
    rhat: float,
    thresholds: HealthThresholds,
) -> tuple[str, tuple[str, ...]]:
    """Fold the three statistics into one per-quantity verdict.

    Undiagnosable (nan) statistics are skipped: they can neither pass nor
    fail the quantity. A quantity with *no* diagnosable statistic is
    "undiagnosable" overall.
    """
    level = -1  # -1 undiagnosable, 0 pass, 1 warn, 2 fail
    reasons: list[str] = []
    if np.isfinite(rhat):
        if rhat >= thresholds.rhat_fail:
            level = max(level, 2)
            reasons.append(f"R-hat {rhat:.3f} >= {thresholds.rhat_fail}")
        elif rhat >= thresholds.rhat_warn:
            level = max(level, 1)
            reasons.append(f"R-hat {rhat:.3f} >= {thresholds.rhat_warn}")
        else:
            level = max(level, 0)
    if np.isfinite(ess):
        if ess < thresholds.ess_fail:
            level = max(level, 2)
            reasons.append(f"ESS {ess:.1f} < {thresholds.ess_fail}")
        elif ess < thresholds.ess_warn:
            level = max(level, 1)
            reasons.append(f"ESS {ess:.1f} < {thresholds.ess_warn}")
        else:
            level = max(level, 0)
    if np.isfinite(geweke_z):
        if abs(geweke_z) >= thresholds.geweke_fail:
            level = max(level, 2)
            reasons.append(f"|geweke z| {abs(geweke_z):.2f} >= {thresholds.geweke_fail}")
        elif abs(geweke_z) >= thresholds.geweke_warn:
            level = max(level, 1)
            reasons.append(f"|geweke z| {abs(geweke_z):.2f} >= {thresholds.geweke_warn}")
        else:
            level = max(level, 0)
    verdict = {-1: "undiagnosable", 0: "pass", 1: "warn", 2: "fail"}[level]
    return verdict, tuple(reasons)


class ChainHealth:
    """Per-sweep scalar recorder and end-of-fit convergence judge.

    Two ways in:

    * **live** — pass :meth:`as_callback` as a sampler's per-sweep hook
      (``DPMHBP(sweep_callback=...)``, ``GibbsSampler(monitor=...)``);
      every sweep's scalars are recorded into the chain's
      :class:`~repro.inference.chains.Trace` and mirrored to telemetry
      gauges (``chain.<name>``) when telemetry is on;
    * **bulk** — :meth:`ingest_chain` whole per-sweep series after the
      fact (how :class:`~repro.core.dpmhbp.DPMHBPModel` pools its
      worker-fitted chains).

    :meth:`report` trims every chain's series to the shortest, drops
    ``burn_in`` leading sweeps, and computes per-quantity ESS (summed
    across chains), the worst per-chain Geweke z, and the pooled
    split-R̂.
    """

    def __init__(
        self,
        thresholds: HealthThresholds | None = None,
        burn_in: int = 0,
        **threshold_overrides: float,
    ):
        if thresholds is not None and threshold_overrides:
            raise ValueError("pass thresholds= or individual overrides, not both")
        self.thresholds = (
            thresholds
            if thresholds is not None
            else HealthThresholds.from_env(**threshold_overrides)
        )
        if burn_in < 0:
            raise ValueError("burn_in must be >= 0")
        self.burn_in = int(burn_in)
        self._chains: dict[int, Trace] = {}

    # ------------------------------------------------------------ recording
    def chain_trace(self, chain: int = 0) -> Trace:
        """The (created-on-demand) per-sweep trace of one chain."""
        return self._chains.setdefault(chain, Trace())

    @property
    def n_chains(self) -> int:
        return len(self._chains)

    def on_sweep(self, scalars: Mapping[str, float], chain: int = 0) -> None:
        """Record one sweep's scalar quantities for ``chain``."""
        clean = {name: float(value) for name, value in scalars.items()}
        self.chain_trace(chain).record(**clean)
        if telemetry.enabled():
            for name, value in clean.items():
                telemetry.gauge(f"chain.{name}", value)

    def as_callback(self, chain: int = 0):
        """A ``(sweep, scalars) -> None`` hook bound to one chain index."""

        def callback(sweep: int, scalars: Mapping[str, float]) -> None:
            self.on_sweep(scalars, chain=chain)

        return callback

    def ingest_chain(
        self, quantities: Mapping[str, np.ndarray], chain: int | None = None
    ) -> int:
        """Bulk-add one chain's per-sweep series; returns its chain index."""
        index = chain if chain is not None else (max(self._chains, default=-1) + 1)
        trace = self.chain_trace(index)
        for name, values in quantities.items():
            trace.extend(name, np.asarray(values, dtype=float).ravel())
        return index

    # ------------------------------------------------------------- verdicts
    def report(self, publish: bool = True) -> HealthReport:
        """Compute the :class:`HealthReport` over everything recorded.

        ``publish=True`` (default) also exports the statistics as
        telemetry gauges via :meth:`HealthReport.publish_gauges`.
        """
        chain_ids = sorted(self._chains)
        names: list[str] = []
        for cid in chain_ids:
            for name in self._chains[cid].scalar_names():
                if name not in names:
                    names.append(name)

        quantities: dict[str, QuantityHealth] = {}
        for name in names:
            series = []
            for cid in chain_ids:
                trace = self._chains[cid]
                if name not in trace:
                    continue
                samples = trace.get(name, burn_in=self.burn_in)
                if samples.ndim == 1 and samples.size > 0:
                    series.append(samples)
            if not series:
                continue
            n = min(s.size for s in series)
            trimmed = np.stack([s[:n] for s in series])
            with np.errstate(divide="ignore", invalid="ignore"):
                ess = self._pooled_ess(trimmed)
                geweke = self._worst_geweke(trimmed)
                rhat = split_rhat(trimmed) if n >= 4 else float("nan")
            verdict, reasons = _classify(name, ess, geweke, rhat, self.thresholds)
            quantities[name] = QuantityHealth(
                name=name,
                n_chains=trimmed.shape[0],
                n_samples=n,
                mean=float(trimmed.mean()),
                ess=ess,
                geweke_z=geweke,
                rhat=rhat,
                verdict=verdict,
                reasons=reasons,
            )

        verdict = self._fold_verdicts(q.verdict for q in quantities.values())
        report = HealthReport(
            quantities=quantities, thresholds=self.thresholds, verdict=verdict
        )
        if publish:
            report.publish_gauges()
        return report

    @staticmethod
    def _pooled_ess(chains: np.ndarray) -> float:
        """Summed per-chain ESS; nan only when *every* chain is undiagnosable."""
        values = [effective_sample_size(chain) for chain in chains]
        finite = [v for v in values if np.isfinite(v)]
        return float(sum(finite)) if finite else float("nan")

    @staticmethod
    def _worst_geweke(chains: np.ndarray) -> float:
        """The per-chain z with the largest magnitude (signed); nan if none."""
        worst = float("nan")
        for chain in chains:
            if chain.size < MIN_GEWEKE_SAMPLES:
                continue
            z = geweke_zscore(chain)
            if np.isfinite(z) and (not np.isfinite(worst) or abs(z) > abs(worst)):
                worst = z
        return worst

    @staticmethod
    def _fold_verdicts(verdicts) -> str:
        """Worst diagnosable verdict; "undiagnosable" only when nothing is."""
        folded = "undiagnosable"
        rank = {"undiagnosable": -1, "pass": 0, "warn": 1, "fail": 2}
        level = -1
        for verdict in verdicts:
            if rank.get(verdict, -1) > level:
                level = rank[verdict]
                folded = verdict
        return folded
