"""Model-health monitoring: convergence verdicts, metric drift, doctor.

Three layers on top of the telemetry and diagnostics primitives:

* :mod:`repro.monitor.health` — :class:`ChainHealth` records per-sweep
  scalars from the samplers and folds them into a :class:`HealthReport`
  (per-quantity ESS / Geweke z / split-R̂ with a pass/warn/fail verdict);
* :mod:`repro.monitor.drift` — per-cell metric history in the run
  journal, compared against saved ``HEALTH_<rev>.json`` baselines;
* :mod:`repro.monitor.doctor` — the ``repro doctor <run_dir>``
  subcommand: convergence tables, drift flags, failure context, and CI
  exit codes (0 healthy / 1 warnings / 2 failures).
"""

from .doctor import DoctorReport, diagnose
from .drift import (
    DEFAULT_BAND,
    DriftFlag,
    DriftReport,
    compare_run,
    compare_to_baseline,
    load_baseline,
    metrics_snapshot,
    save_baseline,
)
from .health import (
    ChainHealth,
    HealthReport,
    HealthThresholds,
    QuantityHealth,
)

__all__ = [
    "DEFAULT_BAND",
    "ChainHealth",
    "DoctorReport",
    "DriftFlag",
    "DriftReport",
    "HealthReport",
    "HealthThresholds",
    "QuantityHealth",
    "compare_run",
    "compare_to_baseline",
    "diagnose",
    "load_baseline",
    "metrics_snapshot",
    "save_baseline",
]
