"""``python -m repro.monitor`` — the metric-drift command line.

Subcommands
-----------
``save``     snapshot a run directory's per-cell metrics to ``HEALTH_<rev>.json``
``compare``  re-read a run directory and fail (exit 1) when any cell's
             metric drifted beyond the band vs. a baseline snapshot
             (latest ``HEALTH_*.json`` by default)

Wired to ``make health-save`` and ``make health-compare``; the fuller
single-run inspection (convergence tables, failure context) lives in
``repro doctor``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .drift import (
    DEFAULT_BAND,
    compare_to_baseline,
    latest_baseline,
    load_baseline,
    metrics_snapshot,
    save_baseline,
)


def _cmd_save(args: argparse.Namespace) -> int:
    path = save_baseline(args.run_dir, directory=args.dir, rev=args.rev)
    payload = load_baseline(path)
    n_metrics = sum(
        len(metrics)
        for models in payload["cells"].values()
        for metrics in models.values()
    )
    print(f"snapshotted {len(payload['cells'])} cell(s), {n_metrics} metric(s)")
    print(f"wrote {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline_path = args.baseline or latest_baseline(args.dir)
    if baseline_path is None:
        print(
            f"no HEALTH_*.json baseline found in {Path(args.dir).resolve()}",
            file=sys.stderr,
        )
        return 2
    report = compare_to_baseline(
        load_baseline(baseline_path), metrics_snapshot(args.run_dir), band=args.band
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(f"baseline: {baseline_path}")
        print(report.format())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.monitor", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("save", help="snapshot run metrics to HEALTH_<rev>.json")
    p.add_argument("run_dir", help="journalled run directory to snapshot")
    p.add_argument("--dir", default=".", help="directory for the snapshot")
    p.add_argument("--rev", default=None, help="revision label (default: git short rev)")
    p.set_defaults(func=_cmd_save)

    p = sub.add_parser("compare", help="flag metric drift vs. a baseline")
    p.add_argument("run_dir", help="journalled run directory to compare")
    p.add_argument("baseline", nargs="?", default=None, help="baseline snapshot path")
    p.add_argument("--dir", default=".", help="where to look for the latest baseline")
    p.add_argument(
        "--band",
        type=float,
        default=DEFAULT_BAND,
        help="drift band (absolute for [0,1] metrics, relative otherwise)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.set_defaults(func=_cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
