"""``repro doctor <run_dir>`` — one verdict over a journalled run's health.

The doctor folds three independent signals into a single CI-friendly
exit code (0 healthy / 1 warnings / 2 failures):

* **convergence** — every ``health.json`` a checkpointing
  :class:`~repro.core.dpmhbp.DPMHBPModel` left under the run directory,
  plus on-the-fly diagnosis of bare ``chain_<i>.npz`` checkpoint groups
  from runs that predate health reports (burn-in defaults to a third of
  the trace when the checkpoints don't record it);
* **drift** — the run's per-cell metrics vs. a ``HEALTH_<rev>.json``
  baseline (omitted when no baseline is given or discoverable);
* **failures** — cells whose last attempt failed, with error types and
  retry counts pulled from the journal.

``nan`` diagnostics stay "undiagnosable": they are printed but never
escalate the verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import telemetry
from .drift import DEFAULT_BAND, DriftReport, compare_to_baseline, load_baseline, metrics_snapshot
from .health import ChainHealth, HealthReport, HealthThresholds, VERDICT_CODES

#: Verdict → process exit code (the doctor's contract with CI).
EXIT_CODES = {"pass": 0, "undiagnosable": 0, "warn": 1, "fail": 2}


@dataclass
class DoctorReport:
    """Everything ``repro doctor`` found, plus the folded verdict."""

    run_dir: str
    verdict: str = "pass"
    health: dict[str, HealthReport] = field(default_factory=dict)
    drift: DriftReport | None = None
    cells_completed: int = 0
    cells_failed: dict[str, dict] = field(default_factory=dict)
    retries: int = 0

    @property
    def exit_code(self) -> int:
        return EXIT_CODES.get(self.verdict, 1)

    def to_json(self) -> dict:
        return {
            "run_dir": self.run_dir,
            "verdict": self.verdict,
            "exit_code": self.exit_code,
            "health": {label: r.to_json() for label, r in self.health.items()},
            "drift": self.drift.to_json() if self.drift is not None else None,
            "cells_completed": self.cells_completed,
            "cells_failed": {
                cell: {
                    "error_type": record.get("error_type"),
                    "attempts": record.get("attempts"),
                }
                for cell, record in self.cells_failed.items()
            },
            "retries": self.retries,
        }

    def format(self) -> str:
        lines = [f"run: {self.run_dir}"]
        lines.append(
            f"cells: {self.cells_completed} completed, "
            f"{len(self.cells_failed)} failed, {self.retries} retried attempt(s)"
        )
        for cell, record in sorted(self.cells_failed.items()):
            lines.append(
                f"FAILED {cell}: {record.get('error_type', '?')} "
                f"after {record.get('attempts', '?')} attempt(s)"
            )
        if self.health:
            lines.append("")
            lines.append("convergence:")
            for label, report in self.health.items():
                lines.append(f"[{label}]")
                lines.append(report.format())
        else:
            lines.append("convergence: no chain health artifacts under the run dir")
        lines.append("")
        if self.drift is not None:
            lines.append("drift:")
            lines.append(self.drift.format())
            lines.append("")
        lines.append(f"doctor verdict: {self.verdict.upper()} (exit {self.exit_code})")
        return "\n".join(lines)


def _health_from_chain_group(
    paths: list[Path], thresholds: HealthThresholds
) -> HealthReport | None:
    """Diagnose a directory of bare ``chain_<i>.npz`` posteriors.

    Pre-health-report checkpoints don't record their burn-in, so a third
    of the trace is dropped — conservative for this repo's defaults
    (burn_in = n_sweeps/3).
    """
    from ..core.dpmhbp import DPMHBPPosterior

    posteriors = []
    for path in sorted(paths):
        try:
            posteriors.append(DPMHBPPosterior.load(path))
        except ValueError:
            continue  # corrupt checkpoint: the engine refits it, we skip it
    if not posteriors:
        return None
    trace_len = min(p.n_clusters_trace.size for p in posteriors)
    monitor = ChainHealth(thresholds=thresholds, burn_in=trace_len // 3)
    for posterior in posteriors:
        series = {"n_clusters": np.asarray(posterior.n_clusters_trace, dtype=float)}
        if posterior.log_lik_trace.size:
            series["log_lik"] = posterior.log_lik_trace
        if posterior.accept_trace.size:
            series["accept_q"] = posterior.accept_trace
        monitor.ingest_chain(series)
    return monitor.report(publish=False)


def collect_health(
    run_dir: Path, thresholds: HealthThresholds | None = None
) -> dict[str, HealthReport]:
    """Every convergence report discoverable under ``run_dir``.

    Saved ``health.json`` files win; directories holding only bare
    ``chain_<i>.npz`` checkpoints are diagnosed on the fly. Labels are
    run-dir-relative paths so multi-model runs stay distinguishable.
    """
    thresholds = thresholds or HealthThresholds.from_env()
    reports: dict[str, HealthReport] = {}
    covered: set[Path] = set()
    for path in sorted(run_dir.rglob("health.json")):
        try:
            reports[_label(run_dir, path.parent)] = HealthReport.from_json(
                json.loads(path.read_text())
            )
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            continue  # unreadable report: treated as absent, never fatal
        covered.add(path.parent)
    groups: dict[Path, list[Path]] = {}
    for path in sorted(run_dir.rglob("chain_*.npz")):
        if path.parent not in covered:
            groups.setdefault(path.parent, []).append(path)
    for parent, paths in sorted(groups.items()):
        report = _health_from_chain_group(paths, thresholds)
        if report is not None:
            reports[_label(run_dir, parent)] = report
    return reports


def _label(run_dir: Path, parent: Path) -> str:
    try:
        relative = parent.resolve().relative_to(run_dir.resolve())
    except ValueError:
        return str(parent)
    return str(relative) if str(relative) != "." else "chains"


def diagnose(
    run_dir: str | Path,
    baseline: str | Path | None = None,
    band: float = DEFAULT_BAND,
    thresholds: HealthThresholds | None = None,
) -> DoctorReport:
    """Inspect a journalled run directory and fold a doctor verdict.

    Raises :class:`~repro.runs.journal.JournalError` when ``run_dir`` is
    not a run directory. When telemetry is enabled, the findings are also
    published as gauges (``repro_chain_rhat``, ``repro_doctor_health``,
    …) so ``--metrics-out`` exports a scrape-ready snapshot.
    """
    from ..runs.journal import RunJournal

    run_dir = Path(run_dir)
    journal = RunJournal.open(run_dir)
    report = DoctorReport(run_dir=str(run_dir))
    report.cells_completed = len(journal.completed_cells())
    report.cells_failed = journal.failed_cells()
    report.retries = sum(
        1 for event in journal.events() if event.get("event") == "cell_retried"
    )
    report.health = collect_health(run_dir, thresholds)
    if baseline is not None:
        report.drift = compare_to_baseline(
            load_baseline(baseline), metrics_snapshot(run_dir), band=band
        )

    # Fold: failures dominate, then chain-health, then drift warnings.
    level = 0
    rank = {"pass": 0, "undiagnosable": 0, "warn": 1, "fail": 2}
    for health in report.health.values():
        level = max(level, rank.get(health.verdict, 1))
    if report.drift is not None and not report.drift.ok:
        level = max(level, 1)
    if report.cells_failed:
        level = max(level, 2)
    report.verdict = {0: "pass", 1: "warn", 2: "fail"}[level]

    if telemetry.enabled():
        for health in report.health.values():
            health.publish_gauges()
        telemetry.gauge("doctor.health", VERDICT_CODES.get(report.verdict, 1.0))
        telemetry.gauge("doctor.cells_completed", float(report.cells_completed))
        telemetry.gauge("doctor.cells_failed", float(len(report.cells_failed)))
        if report.drift is not None:
            telemetry.gauge("doctor.drift_flags", float(len(report.drift.flags)))
    return report
