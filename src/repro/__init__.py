"""repro — water pipe failure prediction, reproduced end to end.

A complete open-source implementation of ranking-based and Bayesian
nonparametric pipe failure prediction:

* the **data-mining ranking method** — a real-valued ranking function
  directly maximising the empirical AUC (Eq. 18.10), optimised with
  from-scratch evolutionary search, plus its convex RankSVM instantiation;
* the **DPMHBP** model — a Dirichlet process mixture of hierarchical beta
  processes over pipe segments with Metropolis-within-Gibbs inference;
* every compared baseline (HBP with fixed groupings, Cox proportional
  hazards, Weibull NHPP, time-exponential/power/linear models);
* a calibrated synthetic metropolitan network substituting the
  proprietary utility data, and the full evaluation harness (AUC,
  budget-restricted AUC, detection curves, paired t-tests, risk maps).

Quickstart::

    from repro import prepare_region_data, default_models, evaluate_models

    data = prepare_region_data("A")
    run = evaluate_models(data, default_models(fast=True), region="A")
    for name, ev in run.evaluations.items():
        print(name, ev.auc)
"""

from .core import (
    AUCRankingModel,
    CoxPHModel,
    DPMHBPModel,
    FailureModel,
    HBPModel,
    SVMRankingModel,
    WeibullModel,
    empirical_auc,
)
from .core.hbp import HBPBestModel
from .data import load_region, load_wastewater_region
from .eval import (
    ComparisonResult,
    NoTestFailuresError,
    RegionRun,
    default_models,
    detection_curve,
    evaluate_models,
    paired_t_test,
    prepare_region_data,
    run_comparison,
)
from .features import FeatureConfig, ModelData, build_model_data
from .physical import PhysicalConditionModel
from .runs import CellSpec, FaultInjector, FaultSpec, RunJournal, RunPolicy

__version__ = "1.1.0"

__all__ = [
    "AUCRankingModel",
    "CoxPHModel",
    "DPMHBPModel",
    "FailureModel",
    "HBPModel",
    "HBPBestModel",
    "SVMRankingModel",
    "WeibullModel",
    "empirical_auc",
    "load_region",
    "load_wastewater_region",
    "default_models",
    "detection_curve",
    "evaluate_models",
    "paired_t_test",
    "prepare_region_data",
    "run_comparison",
    "ComparisonResult",
    "NoTestFailuresError",
    "RegionRun",
    "FeatureConfig",
    "ModelData",
    "build_model_data",
    "PhysicalConditionModel",
    "CellSpec",
    "FaultInjector",
    "FaultSpec",
    "RunJournal",
    "RunPolicy",
    "__version__",
]
