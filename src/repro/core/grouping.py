"""Fixed (heuristic) pipe groupings for the HBP model.

The HBP baseline groups pipes by one expert-chosen attribute, with the
group count fixed beforehand — the rigidity the DP mixture removes. Three
groupings from the evaluation protocol: material, diameter band, and
laid-year decade.
"""

from __future__ import annotations

import numpy as np

from ..features.builder import ModelData

#: Grouping names accepted by :func:`fixed_grouping`.
GROUPINGS = ("material", "diameter", "laid_year")


def group_by_material(data: ModelData) -> np.ndarray:
    """Group index per pipe by material type."""
    materials = sorted(set(data.pipe_material))
    index = {m: i for i, m in enumerate(materials)}
    return np.asarray([index[m] for m in data.pipe_material], dtype=np.int64)


def group_by_diameter(data: ModelData, bands: tuple[float, ...] = (150.0, 250.0, 375.0, 500.0)) -> np.ndarray:
    """Group index per pipe by diameter band (edges in mm)."""
    return np.searchsorted(np.asarray(bands), data.pipe_diameter, side="right")


def group_by_laid_year(data: ModelData, decade: int = 10) -> np.ndarray:
    """Group index per pipe by laid-year bucket (default: decades)."""
    if decade < 1:
        raise ValueError("decade width must be >= 1")
    buckets = (data.pipe_laid_year // decade).astype(np.int64)
    _, labels = np.unique(buckets, return_inverse=True)
    return labels


def fixed_grouping(data: ModelData, scheme: str) -> np.ndarray:
    """Pipe group labels (0..K-1) for a named scheme."""
    if scheme == "material":
        labels = group_by_material(data)
    elif scheme == "diameter":
        labels = group_by_diameter(data)
    elif scheme == "laid_year":
        labels = group_by_laid_year(data)
    else:
        raise ValueError(f"unknown grouping {scheme!r}; choose from {GROUPINGS}")
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)


def segment_grouping(data: ModelData, scheme: str) -> np.ndarray:
    """Pipe-scheme group labels broadcast to segments."""
    return fixed_grouping(data, scheme)[data.seg_pipe_idx]
