"""Hierarchical beta process (HBP) failure model with fixed groupings.

The two-level hierarchy of Eq. 18.5: a group-level failure rate
``q_k ~ Beta(c0·q0, c0·(1−q0))``, pipe-level failure probabilities
``π_i ~ Beta(c_k·q_k, c_k·(1−q_k))`` for pipes in group ``k``, and yearly
failure indicators ``x_{i,j} ~ Bernoulli(π_i)``. Failure data is shared
within a group through ``q_k``, which is the mechanism that survives the
extreme sparsity of per-pipe records.

Inference is Metropolis-within-Gibbs:

* ``π_i`` — exact conjugate Beta draw given ``q_k`` and the pipe's counts;
* ``q_k`` — logit-scale random-walk Metropolis against the collapsed
  Beta–Binomial likelihood of its members (the Beta layer over ``π`` is
  integrated out for this block, improving mixing).

Covariates modulate the posterior risk multiplicatively, Cox-style, via a
Poisson GLM factor (``repro.ml.PoissonRegression.covariate_factor``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bayes.distributions import beta_binomial_logmarginal, beta_logpdf
from ..features.builder import ModelData
from ..inference.metropolis import AdaptiveScale, metropolis_probability_step
from ..ml.glm import PoissonRegression
from .base import FailureModel
from .grouping import fixed_grouping


@dataclass
class HBPPosterior:
    """Posterior summaries of one HBP fit."""

    pi_mean: np.ndarray  # (n_units,) posterior mean failure probability
    q_mean: np.ndarray  # (K,) posterior mean group rates
    q_trace: np.ndarray  # (n_kept, K)
    accept_rate: float


def fit_hbp(
    failures: np.ndarray,
    groups: np.ndarray,
    q0: float = 0.02,
    c0: float = 4.0,
    c_group: float = 30.0,
    n_sweeps: int = 250,
    burn_in: int = 100,
    seed: int = 0,
    sampler: str = "metropolis",
) -> HBPPosterior:
    """Run the HBP sampler on a binary (units × years) failure matrix.

    ``groups`` assigns each unit (pipe or segment) to one of K groups.
    Returns posterior means of the per-unit failure probabilities ``π``
    and group rates ``q``. ``sampler`` selects the non-conjugate ``q_k``
    update: adaptive random-walk ``"metropolis"`` (default) or tuning-free
    ``"slice"`` sampling.
    """
    if sampler not in ("metropolis", "slice"):
        raise ValueError(f"unknown sampler {sampler!r}")
    failures = np.asarray(failures)
    if failures.ndim != 2:
        raise ValueError("failures must be (units, years)")
    groups = np.asarray(groups, dtype=np.int64)
    n_units, n_years = failures.shape
    if groups.shape != (n_units,):
        raise ValueError("groups must have one label per unit")
    if burn_in >= n_sweeps:
        raise ValueError("burn_in must be smaller than n_sweeps")
    n_groups = int(groups.max()) + 1
    s = failures.sum(axis=1).astype(float)  # successes per unit
    m = float(n_years)

    rng = np.random.default_rng(seed)
    q = np.full(n_groups, q0)
    scales = [AdaptiveScale() for _ in range(n_groups)]
    member_s = [s[groups == k] for k in range(n_groups)]

    pi_acc = np.zeros(n_units)
    q_acc = np.zeros(n_groups)
    q_trace: list[np.ndarray] = []
    n_accept = 0
    n_prop = 0
    kept = 0
    for sweep in range(n_sweeps):
        # Block 1: q_k via logit Metropolis on the collapsed likelihood.
        for k in range(n_groups):
            sk = member_s[k]

            def log_target(qk: float, sk=sk) -> float:
                prior = float(beta_logpdf(qk, c0 * q0, c0 * (1.0 - q0)))
                lik = float(
                    np.sum(
                        beta_binomial_logmarginal(sk, m, c_group * qk, c_group * (1.0 - qk))
                    )
                )
                return prior + lik

            if sampler == "slice":
                from ..inference.slice import slice_probability_step

                q[k] = slice_probability_step(q[k], log_target, rng)
                accepted = True  # slice updates always move within the slice
            else:
                q[k], accepted = metropolis_probability_step(
                    q[k], log_target, scales[k].scale, rng
                )
                scales[k].update(accepted)
            n_prop += 1
            n_accept += int(accepted)
            if sweep == burn_in:
                scales[k].freeze()

        # Block 2: π_i exact conjugate draw given q.
        a = c_group * q[groups] + s
        b = c_group * (1.0 - q[groups]) + m - s
        pi = rng.beta(a, b)

        if sweep >= burn_in:
            pi_acc += pi
            q_acc += q
            q_trace.append(q.copy())
            kept += 1

    return HBPPosterior(
        pi_mean=pi_acc / kept,
        q_mean=q_acc / kept,
        q_trace=np.asarray(q_trace),
        accept_rate=n_accept / max(n_prop, 1),
    )


@dataclass
class HBPModel(FailureModel):
    """HBP failure model at pipe level with a fixed grouping scheme.

    ``grouping`` is "material", "diameter" or "laid_year" — the protocol's
    three expert-suggested fixed groupings ("only the results from the
    best groupings are shown" in the paper's tables; the experiment runner
    selects the best on training data).
    """

    name: str = "HBP"
    grouping: str = "material"
    q0: float = 0.02
    c0: float = 4.0
    c_group: float = 30.0
    n_sweeps: int = 250
    burn_in: int = 100
    covariates: bool = True
    seed: int = 0
    posterior_: HBPPosterior | None = field(default=None, repr=False)
    _factor: np.ndarray | None = field(default=None, repr=False)

    def fit(self, data: ModelData) -> "HBPModel":
        groups = fixed_grouping(data, self.grouping)
        self.posterior_ = fit_hbp(
            data.pipe_fail_train,
            groups,
            q0=self.q0,
            c0=self.c0,
            c_group=self.c_group,
            n_sweeps=self.n_sweeps,
            burn_in=self.burn_in,
            seed=self.seed,
        )
        if self.covariates:
            counts = data.pipe_fail_train.sum(axis=1).astype(float)
            exposure = np.full(data.n_pipes, float(data.pipe_fail_train.shape[1]))
            glm = PoissonRegression(l2=1e-2).fit(data.X_pipe, counts, exposure=exposure)
            self._factor = glm.covariate_factor(data.X_pipe)
        else:
            self._factor = np.ones(data.n_pipes)
        return self

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        if self.posterior_ is None or self._factor is None:
            raise RuntimeError("model used before fit()")
        return self.posterior_.pi_mean * self._factor


@dataclass
class HBPBestModel(FailureModel):
    """HBP with the grouping chosen by internal validation.

    The paper's tables report "only the results from the best groupings"
    for HBP; this wrapper selects among material / diameter / laid-year by
    AUC on a validation split (the last training year), then refits on the
    full training window with the winning scheme. Real test labels are
    never consulted.
    """

    name: str = "HBP"
    q0: float = 0.02
    c0: float = 4.0
    c_group: float = 15.0
    n_sweeps: int = 250
    burn_in: int = 100
    covariates: bool = True
    seed: int = 0
    chosen_grouping_: str | None = None
    _fitted: HBPModel | None = field(default=None, repr=False)

    def _make(self, grouping: str) -> HBPModel:
        return HBPModel(
            grouping=grouping,
            q0=self.q0,
            c0=self.c0,
            c_group=self.c_group,
            n_sweeps=self.n_sweeps,
            burn_in=self.burn_in,
            covariates=self.covariates,
            seed=self.seed,
        )

    def fit(self, data: ModelData) -> "HBPBestModel":
        from .grouping import GROUPINGS
        from .ranking.objective import empirical_auc

        validation = data.validation_split()
        best_auc, best_scheme = -np.inf, GROUPINGS[0]
        if validation.pipe_fail_test.sum() > 0:
            for scheme in GROUPINGS:
                scores = self._make(scheme).fit_predict(validation)
                auc = empirical_auc(scores, validation.pipe_fail_test)
                if auc > best_auc:
                    best_auc, best_scheme = auc, scheme
        self.chosen_grouping_ = best_scheme
        self._fitted = self._make(best_scheme).fit(data)
        return self

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        if self._fitted is None:
            raise RuntimeError("model used before fit()")
        return self._fitted.predict_pipe_risk(data)
