"""Core prediction models: ranking (data-mining method), HBP, DPMHBP, baselines."""

from .base import FailureModel, ranking_features
from .dpmhbp import DPMHBP, DPMHBPModel, DPMHBPPosterior
from .grouping import GROUPINGS, fixed_grouping, segment_grouping
from .hbp import HBPModel, HBPPosterior, fit_hbp
from .ranking import (
    AUCRankingModel,
    DifferentialEvolution,
    EvolutionStrategy,
    RankSVM,
    SVMClassifierModel,
    SVMRankingModel,
    empirical_auc,
    sigmoid_auc,
    top_fraction_hit_rate,
)
from .survival_models import CoxPHModel, TimeRateModel, WeibullModel

__all__ = [
    "FailureModel",
    "ranking_features",
    "DPMHBP",
    "DPMHBPModel",
    "DPMHBPPosterior",
    "GROUPINGS",
    "fixed_grouping",
    "segment_grouping",
    "HBPModel",
    "HBPPosterior",
    "fit_hbp",
    "AUCRankingModel",
    "DifferentialEvolution",
    "EvolutionStrategy",
    "RankSVM",
    "SVMClassifierModel",
    "SVMRankingModel",
    "empirical_auc",
    "sigmoid_auc",
    "top_fraction_hit_rate",
    "CoxPHModel",
    "TimeRateModel",
    "WeibullModel",
]
