"""Common interface for every pipe-failure prediction model.

A model is fitted on a :class:`~repro.features.ModelData` (training years
only — the test column exists on the object but fitting must not read it)
and returns one risk score per pipe for the held-out test year. Scores are
*ranking* scores: the evaluation only ever compares their order, so they
need not be calibrated probabilities (the ranking models deliberately are
not).
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from ..features.builder import ModelData


class FailureModel(abc.ABC):
    """Base class: fit on training years, score pipes for the test year."""

    #: Human-readable name used in result tables.
    name: str = "model"

    @abc.abstractmethod
    def fit(self, data: ModelData) -> "FailureModel":
        """Fit on ``data``'s training years; returns ``self``."""

    @abc.abstractmethod
    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        """Risk score per pipe (aligned with ``data.pipe_ids``) for the test year."""

    def fit_predict(self, data: ModelData) -> np.ndarray:
        """Convenience: ``fit(data).predict_pipe_risk(data)``."""
        return self.fit(data).predict_pipe_risk(data)

    def get_params(self) -> dict:
        """Configuration parameters that define this model, as plain data.

        The contract behind the run journal's config fingerprint: two
        models with equal ``(type(m).__name__, m.get_params())`` must
        produce bit-identical scores on the same :class:`ModelData`.
        Fitted state is excluded — by convention that is every attribute
        whose name starts or ends with an underscore (``posterior_``,
        ``_factor``, …). The default implementation covers the dataclass
        models; override only if a model holds configuration elsewhere.
        """
        if dataclasses.is_dataclass(self):
            pairs = (
                (f.name, getattr(self, f.name)) for f in dataclasses.fields(self)
            )
        else:
            pairs = vars(self).items()
        return {
            name: value
            for name, value in pairs
            if not name.startswith("_") and not name.endswith("_")
        }


def ranking_features(
    data: ModelData, score_year: int | None = None, include_history: bool = False
) -> np.ndarray:
    """Feature matrix for discriminative rankers (SVM / AUC-optimised).

    The static Table 18.2 block plus pipe age in ``score_year`` (the laid
    date, expressed as the protocol's time variable). By default this is
    *exactly* the paper's feature set — Table 18.2 lists no failure-history
    features, which is a large part of why the feature-only rankers trail
    the Bayesian models that consume failure histories natively.

    ``include_history=True`` (an extension beyond the protocol) appends two
    leakage-safe history summaries computed from training years strictly
    before ``score_year``: log failure count and a recency-weighted rate.
    """
    score_year = data.test_year if score_year is None else score_year
    ages = data.pipe_ages(score_year)
    columns = [data.X_pipe, _standardise(ages)[:, None]]
    if include_history:
        visible = [j for j, y in enumerate(data.train_years) if y < score_year]
        history = data.pipe_fail_train[:, visible].astype(float)
        if history.shape[1] == 0:
            history = np.zeros((data.n_pipes, 1))
        n_years = history.shape[1]
        recency = np.exp(-(np.arange(n_years)[::-1]) / 4.0)  # newest year weight 1
        recent_rate = history @ recency / recency.sum()
        columns.append(_standardise(np.log1p(history.sum(axis=1)))[:, None])
        columns.append(_standardise(recent_rate)[:, None])
    return np.hstack(columns)


def _standardise(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    std = x.std()
    return (x - x.mean()) / (std if std > 1e-12 else 1.0)
