"""Dirichlet process mixture of hierarchical beta processes (DPMHBP).

The proposed model (Eq. 18.7): pipe *segments* are adaptively grouped by a
CRP, each group ``k`` carries a failure rate ``q_k`` with a beta-process
prior, segment failure probabilities ``ρ_l`` are Beta-distributed around
their group's rate, yearly segment failures are Bernoulli draws, and a
pipe's failure probability composes over its serially connected segments:

    q_k ~ Beta(c0·q0, c0·(1−q0))          group failure rate
    z_l ~ CRP(α)                           adaptive segment grouping
    ρ_l ~ Beta(c·q_{z_l}, c·(1−q_{z_l}))   segment failure probability
    y_{l,j} ~ Bernoulli(ρ_l)               yearly failure indicators
    π_i = 1 − Π_{l∈pipe i} (1 − ρ_l)       pipe failure probability

Grouping is *feature-aware*: each cluster also carries a Gaussian mean
over the segment's (standardised) Table 18.2 features, so segments cluster
by the joint evidence of failure history and intrinsic/environmental
attributes — "pipes with similar intrinsic attributes and environmental
factors often share similar failure patterns". The number of groups is
unbounded and inferred.

Inference is Metropolis-within-Gibbs (the HBP hierarchy breaks conjugacy
for ``q_k``), with Neal's Algorithm 8 auxiliary-cluster moves for the CRP
assignments and ``ρ_l`` collapsed out of the assignment and ``q_k`` blocks
(the Beta–Binomial marginal). Because every segment has the same number of
observation years ``m`` and tiny failure counts, the per-cluster
Beta–Binomial terms are precomputed as a ``(K, m+1)`` table once per sweep
— the sparsity-exploiting approximation that keeps sweeps linear in the
number of segments.

The implementation keeps the sequential CRP scan (Algorithm 8 is
inherently one-segment-at-a-time) but everything inside and around it is
vectorized: auxiliary-cluster weights come from one ``betaln`` call over
all ``n_aux`` candidates, the categorical draw is a Gumbel-max over the
log-weights (no normalisation, no ``rng.choice``), the live cluster-size
array is authoritative during the sweep and synced back to the cluster
state once per sweep, the ``q_k`` block scores a cluster through its
(m+1)-bin failure-count histogram instead of its member vector, and the
conjugate Gaussian block updates every cluster mean in one batch.
"""

from __future__ import annotations

import io
import json
import math
import os
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np
from scipy.special import betaln

from .. import telemetry
from ..bayes.distributions import beta_logpdf
from ..features.builder import ModelData
from ..inference.metropolis import AdaptiveScale, metropolis_probability_step
from ..ml.glm import PoissonRegression
from ..monitor.health import ChainHealth, HealthReport
from ..parallel import shm
from ..parallel.executor import parallel_map, resolve_executor
from .base import FailureModel

#: Per-sweep scalars handed to ``sweep_callback`` and the health monitor.
SweepCallback = Callable[[int, Mapping[str, float]], None]


def _betaln_scalar(a: float, b: float) -> float:
    """Scalar ``betaln`` via ``math.lgamma`` — far cheaper than the ufunc."""
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


@dataclass
class DPMHBPPosterior:
    """Posterior summaries of one DPMHBP fit."""

    rho_mean: np.ndarray  # (n_segments,) posterior mean failure probability
    rho_std: np.ndarray  # (n_segments,) posterior sd of the conditional mean
    n_clusters_trace: np.ndarray  # (n_sweeps,)
    last_assignments: np.ndarray  # (n_segments,)
    last_q: np.ndarray  # (K,) group rates at the final sweep
    accept_rate_q: float
    #: Per-sweep collapsed Beta–Binomial log-likelihood; empty when the
    #: posterior was restored from a pre-monitoring checkpoint.
    log_lik_trace: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Per-sweep q-block acceptance rate; empty on old checkpoints.
    accept_trace: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def credible_interval(self, z: float = 1.64) -> tuple[np.ndarray, np.ndarray]:
        """Normal-approximation central interval for each segment's ρ.

        ``z = 1.64`` gives ~90% coverage of the posterior of the
        *conditional mean* (MCMC variability over group assignments and
        rates), clipped to [0, 1].
        """
        lo = np.clip(self.rho_mean - z * self.rho_std, 0.0, 1.0)
        hi = np.clip(self.rho_mean + z * self.rho_std, 0.0, 1.0)
        return lo, hi

    def save(self, path: str | Path) -> Path:
        """Checkpoint this posterior to an ``.npz``, atomically.

        The temp-file + ``os.replace`` dance means a killed process leaves
        either the previous checkpoint or none — never a torn file that
        :meth:`load` would half-read.
        """
        path = Path(path)
        buffer = io.BytesIO()
        np.savez(
            buffer,
            rho_mean=self.rho_mean,
            rho_std=self.rho_std,
            n_clusters_trace=self.n_clusters_trace,
            last_assignments=self.last_assignments,
            last_q=self.last_q,
            accept_rate_q=np.asarray(self.accept_rate_q),
            log_lik_trace=self.log_lik_trace,
            accept_trace=self.accept_trace,
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buffer.getvalue())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DPMHBPPosterior":
        """Restore a posterior checkpoint written by :meth:`save`.

        Raises ``ValueError`` on a truncated/corrupt or wrong-format file,
        so callers can fall back to refitting the chain.
        """
        try:
            with np.load(Path(path)) as arrays:
                return cls(
                    rho_mean=arrays["rho_mean"],
                    rho_std=arrays["rho_std"],
                    n_clusters_trace=arrays["n_clusters_trace"],
                    last_assignments=arrays["last_assignments"],
                    last_q=arrays["last_q"],
                    accept_rate_q=float(arrays["accept_rate_q"]),
                    # Pre-monitoring checkpoints lack the sweep traces;
                    # empty arrays keep them loadable (the health monitor
                    # simply has fewer quantities to judge).
                    log_lik_trace=(
                        arrays["log_lik_trace"]
                        if "log_lik_trace" in arrays.files
                        else np.zeros(0)
                    ),
                    accept_trace=(
                        arrays["accept_trace"]
                        if "accept_trace" in arrays.files
                        else np.zeros(0)
                    ),
                )
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile) as exc:
            raise ValueError(f"corrupt DPMHBP chain checkpoint {path}: {exc}") from exc


class _ClusterState:
    """Mutable cluster bookkeeping for the Gibbs sweeps."""

    def __init__(self, c_group: float, m: float, d: int):
        self.c = c_group
        self.m = m
        self.d = d
        self.q: list[float] = []
        self.mu: list[np.ndarray] = []
        self.count: list[int] = []
        self.bb_table: list[np.ndarray] = []  # (m+1,) per cluster
        self._s_grid = np.arange(m + 1.0)

    @property
    def k(self) -> int:
        return len(self.q)

    def bb_column(self, q: float) -> np.ndarray:
        """Beta–Binomial log marginal for s = 0..m at group rate ``q``."""
        s = self._s_grid
        a = self.c * q
        b = self.c * (1.0 - q)
        return betaln(a + s, b + self.m - s) - betaln(a, b)

    def add(self, q: float, mu: np.ndarray, count: int = 0) -> int:
        self.q.append(float(q))
        self.mu.append(np.asarray(mu, dtype=float))
        self.count.append(count)
        self.bb_table.append(self.bb_column(q))
        return self.k - 1

    def remove(self, k: int) -> None:
        for attr in (self.q, self.mu, self.count, self.bb_table):
            attr.pop(k)

    def matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(counts, bb (K, m+1), mu (K, d), ‖mu‖² (K,)) as arrays."""
        counts = np.asarray(self.count, dtype=float)
        bb = np.asarray(self.bb_table)
        mu = np.asarray(self.mu)
        return counts, bb, mu, np.sum(mu**2, axis=1)


@dataclass
class DPMHBP:
    """The DPMHBP sampler on raw arrays (no dataset plumbing).

    Parameters
    ----------
    alpha:
        CRP concentration — larger means more (finer) groups a priori.
    q0, c0:
        Top-level beta-process mean and concentration (group-rate prior).
    c_group:
        Concentration tying segment probabilities to their group rate.
    feature_weight:
        Weight of the feature likelihood in the grouping (the Gaussian
        noise variance is ``1/feature_weight``); 0 disables feature-aware
        grouping (history-only clustering).
    n_aux:
        Auxiliary clusters per assignment move (Neal Algorithm 8's ``m``).
    """

    alpha: float = 4.0
    q0: float = 0.02
    c0: float = 4.0
    c_group: float = 30.0
    feature_weight: float = 3.0
    n_aux: int = 2
    n_sweeps: int = 60
    burn_in: int = 20
    seed: int = 0
    #: Optional per-sweep hook ``callback(sweep, scalars)`` receiving
    #: ``n_clusters`` / ``log_lik`` / ``accept_q`` after every sweep —
    #: e.g. :meth:`repro.monitor.ChainHealth.as_callback` for live
    #: convergence monitoring. Must be picklable (or None) when chains
    #: fan out over a process executor.
    sweep_callback: SweepCallback | None = None

    def fit(
        self,
        failures: np.ndarray,
        features: np.ndarray | None = None,
        init_labels: np.ndarray | None = None,
    ) -> DPMHBPPosterior:
        """Run the sampler on a binary (segments × years) failure matrix.

        ``init_labels`` optionally seeds the partition (e.g. a coarse
        attribute crossing); the CRP moves then merge/split/refine it. A
        good seed shortens burn-in dramatically — the stationary
        distribution is unchanged.
        """
        with telemetry.span(
            "dpmhbp.fit", n_sweeps=self.n_sweeps, seed=self.seed
        ):
            posterior = self._fit(failures, features, init_labels)
        telemetry.count("dpmhbp.fits")
        telemetry.gauge("dpmhbp.accept_rate_q", posterior.accept_rate_q)
        telemetry.gauge("dpmhbp.n_clusters", float(posterior.n_clusters_trace[-1]))
        return posterior

    def _fit(
        self,
        failures: np.ndarray,
        features: np.ndarray | None,
        init_labels: np.ndarray | None,
    ) -> DPMHBPPosterior:
        failures = np.asarray(failures)
        if failures.ndim != 2:
            raise ValueError("failures must be (segments, years)")
        n_seg, n_years = failures.shape
        if self.burn_in >= self.n_sweeps:
            raise ValueError("burn_in must be smaller than n_sweeps")
        s = failures.sum(axis=1).astype(np.int64)
        m = float(n_years)

        use_features = features is not None and self.feature_weight > 0.0
        if use_features:
            feats = np.asarray(features, dtype=float)
            if feats.shape[0] != n_seg:
                raise ValueError("features must have one row per segment")
            d = feats.shape[1]
            sigma2 = 1.0 / self.feature_weight
        else:
            feats = np.zeros((n_seg, 1))
            d = 1
            sigma2 = 1.0
        tau2 = 1.0  # prior variance of cluster feature means

        rng = np.random.default_rng(self.seed)
        state = _ClusterState(self.c_group, m, d)

        # Initialise from the provided seed partition, or a coarse random one.
        # Either way, relabel to contiguous ids so no initial cluster is
        # empty — reassigning random segments to fill gaps (the old
        # behaviour) could silently empty *another* cluster and leave its
        # stale count in play for the whole run.
        if init_labels is not None:
            z = np.asarray(init_labels, dtype=np.int64).copy()
            if z.shape != (n_seg,):
                raise ValueError("init_labels must have one label per segment")
        else:
            init_k = max(2, min(10, n_seg))
            z = rng.integers(0, init_k, size=n_seg)
        _, z = np.unique(z, return_inverse=True)
        for k in range(int(z.max()) + 1):
            members = z == k
            mu0 = feats[members].mean(axis=0) if use_features else np.zeros(d)
            q_init = min(max((s[members].mean() / m) + 1e-3, 1e-4), 0.5)
            state.add(q_init, mu0, int(members.sum()))

        scales: list[AdaptiveScale] = [AdaptiveScale() for _ in range(state.k)]
        rho_acc = np.zeros(n_seg)
        rho_sq_acc = np.zeros(n_seg)
        kept = 0
        n_clusters_trace = []
        log_lik_trace = []
        accept_trace = []
        q_accepts = 0
        q_props = 0
        q_accepts_prev = 0
        q_props_prev = 0

        log_alpha_aux = math.log(self.alpha / self.n_aux)
        a0 = self.c0 * self.q0
        b0 = self.c0 * (1.0 - self.q0)
        sqrt_tau = math.sqrt(tau2)
        s_f = s.astype(float)

        for sweep in range(self.n_sweeps):
            # ---- Block 1: CRP assignments (Neal Algorithm 8) ----
            counts, bb, mu, mu_sq = state.matrices()
            log_counts = np.log(counts)
            order = rng.permutation(n_seg)
            # Draw every segment's auxiliary-cluster parameters up front and
            # score them in one vectorized pass: the failure count s_l is
            # fixed within a sweep, so each segment's Beta–Binomial term
            # depends only on its own pre-drawn auxiliary rates.
            aux_q_all = rng.beta(a0, b0, (n_seg, self.n_aux))
            aux_mu_all = rng.normal(0.0, sqrt_tau, (n_seg, self.n_aux, d))
            a_aux = self.c_group * aux_q_all
            b_aux = self.c_group - a_aux
            aux_base = (
                log_alpha_aux
                + betaln(a_aux + s_f[:, None], b_aux + (m - s_f)[:, None])
                - betaln(a_aux, b_aux)
            )
            if use_features:
                # ‖feats_l‖² is common to every candidate (existing and
                # auxiliary) and cannot move the draw, so both weight
                # formulas drop it.
                aux_cross = np.einsum("ld,lhd->lh", feats, aux_mu_all)
                aux_sq = np.einsum("lhd,lhd->lh", aux_mu_all, aux_mu_all)
                aux_base += (aux_cross - 0.5 * aux_sq) / sigma2

            for l in order:
                k_old = int(z[l])
                counts[k_old] -= 1.0
                singleton_params = None
                if counts[k_old] == 0.0:
                    singleton_params = (state.q[k_old], state.mu[k_old])
                    # Delete the empty cluster; relabel in the live arrays.
                    state.remove(k_old)
                    scales.pop(k_old)
                    counts = np.delete(counts, k_old)
                    log_counts = np.delete(log_counts, k_old)
                    bb = np.delete(bb, k_old, axis=0)
                    mu = np.delete(mu, k_old, axis=0)
                    mu_sq = np.delete(mu_sq, k_old)
                    z[z > k_old] -= 1
                else:
                    log_counts[k_old] = math.log(counts[k_old])
                k_live = state.k

                # Existing-cluster log weights.
                logw = log_counts + bb[:, s[l]]
                if use_features:
                    logw += (mu @ feats[l] - 0.5 * mu_sq) / sigma2

                # Auxiliary clusters from the prior (the deleted singleton's
                # parameters are recycled as the first auxiliary, per Alg 8).
                aux_q = aux_q_all[l]
                aux_mu = aux_mu_all[l]
                aux_logw = aux_base[l]
                if singleton_params is not None:
                    aux_q = aux_q.copy()
                    aux_mu = aux_mu.copy()
                    aux_logw = aux_logw.copy()
                    q_s, mu_s = singleton_params
                    aux_q[0] = q_s
                    aux_mu[0] = mu_s
                    a_s = self.c_group * q_s
                    b_s = self.c_group * (1.0 - q_s)
                    sl = float(s[l])
                    w0 = (
                        log_alpha_aux
                        + _betaln_scalar(a_s + sl, b_s + (m - sl))
                        - _betaln_scalar(a_s, b_s)
                    )
                    if use_features:
                        w0 += (float(feats[l] @ mu_s) - 0.5 * float(mu_s @ mu_s)) / sigma2
                    aux_logw[0] = w0

                # Gumbel-max categorical draw on the unnormalised log-weights.
                all_logw = np.concatenate([logw, aux_logw])
                all_logw += rng.gumbel(size=all_logw.size)
                choice = int(all_logw.argmax())

                if choice < k_live:
                    z[l] = choice
                    counts[choice] += 1.0
                    log_counts[choice] = math.log(counts[choice])
                else:
                    h = choice - k_live
                    new_k = state.add(float(aux_q[h]), aux_mu[h], 1)
                    scales.append(AdaptiveScale())
                    z[l] = new_k
                    counts = np.append(counts, 1.0)
                    log_counts = np.append(log_counts, 0.0)
                    bb = np.vstack([bb, state.bb_table[new_k]])
                    mu = np.vstack([mu, aux_mu[h]])
                    mu_sq = np.append(mu_sq, float(aux_mu[h] @ aux_mu[h]))
            # The live ``counts`` array was authoritative during the scan;
            # write it back to the cluster state once per sweep.
            state.count = [int(c) for c in counts]

            # ---- Block 2: q_k via logit Metropolis (collapsed ρ) ----
            # Failure counts live on the small grid 0..m, so a cluster's
            # collapsed likelihood is its count-histogram dotted with the
            # (m+1)-long Beta–Binomial table — O(m) per target evaluation
            # regardless of cluster size.
            hist = np.zeros((state.k, int(m) + 1))
            np.add.at(hist, (z, s), 1.0)
            for k in range(state.k):

                def log_target(qk: float, hk=hist[k]) -> float:
                    prior = float(beta_logpdf(qk, self.c0 * self.q0, self.c0 * (1.0 - self.q0)))
                    return prior + float(hk @ state.bb_column(qk))

                new_q, accepted = metropolis_probability_step(
                    state.q[k], log_target, scales[k].scale, rng
                )
                scales[k].update(accepted)
                q_props += 1
                q_accepts += int(accepted)
                if accepted:
                    state.q[k] = new_q
                    state.bb_table[k] = state.bb_column(new_q)

            # ---- Block 3: cluster feature means (conjugate Gaussian) ----
            if use_features:
                k_tot = state.k
                seg_sums = np.zeros((k_tot, d))
                np.add.at(seg_sums, z, feats)
                n_k = np.bincount(z, minlength=k_tot).astype(float)
                post_var = 1.0 / (1.0 / tau2 + n_k / sigma2)
                post_mean = post_var[:, None] * seg_sums / sigma2
                draws = post_mean + np.sqrt(post_var)[:, None] * rng.standard_normal(
                    (k_tot, d)
                )
                state.mu = [draws[k] for k in range(k_tot)]

            n_clusters_trace.append(state.k)
            # Collapsed log-likelihood of the sweep's state: each segment's
            # Beta–Binomial term is one lookup in its cluster's table.
            log_lik = float(np.asarray(state.bb_table)[z, s].sum())
            log_lik_trace.append(log_lik)
            sweep_accept = (q_accepts - q_accepts_prev) / max(
                q_props - q_props_prev, 1
            )
            accept_trace.append(sweep_accept)
            q_accepts_prev, q_props_prev = q_accepts, q_props
            telemetry.count("dpmhbp.sweeps")
            if self.sweep_callback is not None:
                self.sweep_callback(
                    sweep,
                    {
                        "n_clusters": float(state.k),
                        "log_lik": log_lik,
                        "accept_q": sweep_accept,
                    },
                )

            # ---- Accumulate posterior mean ρ (collapsed conditional mean) ----
            if sweep >= self.burn_in:
                q_z = np.asarray(state.q)[z]
                rho_sweep = (self.c_group * q_z + s) / (self.c_group + m)
                rho_acc += rho_sweep
                rho_sq_acc += rho_sweep**2
                kept += 1

        rho_mean = rho_acc / kept
        rho_var = np.maximum(rho_sq_acc / kept - rho_mean**2, 0.0)
        return DPMHBPPosterior(
            rho_mean=rho_mean,
            rho_std=np.sqrt(rho_var),
            n_clusters_trace=np.asarray(n_clusters_trace),
            last_assignments=z.copy(),
            last_q=np.asarray(state.q),
            accept_rate_q=q_accepts / max(q_props, 1),
            log_lik_trace=np.asarray(log_lik_trace),
            accept_trace=np.asarray(accept_trace),
        )


def _write_json_atomic(path: Path, payload: dict) -> Path:
    """Write a JSON document via same-dir temp file + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def _fit_dpmhbp_chain(task: tuple) -> DPMHBPPosterior:
    """Run one chain of the sampler (module-level so processes can pickle it).

    The canonical task is ``(sampler, handle, ckpt_path)`` — the training
    arrays travel once through the :mod:`repro.parallel.shm` data plane
    and every chain resolves read-only zero-copy views, instead of each
    task pickling its own copy of the same (failures, features, init)
    bundle. The legacy 5-tuple with inline arrays is still accepted (old
    pickled call sites).

    With a checkpoint path, the chain restores a valid prior checkpoint
    instead of re-sampling (bit-identical — the checkpoint *is* the chain's
    result), and saves its posterior atomically after a fresh fit; corrupt
    checkpoints are discarded and refit.
    """
    if len(task) == 3:
        sampler, handle, ckpt_path = task
        arrays = shm.resolve_bundle(handle)
        failures, features, init = arrays["failures"], arrays["features"], arrays["init"]
    else:
        sampler, failures, features, init, ckpt_path = task
    if ckpt_path is not None and Path(ckpt_path).exists():
        try:
            restored = DPMHBPPosterior.load(ckpt_path)
            telemetry.count("dpmhbp.chain.restored")
            return restored
        except ValueError:
            pass  # corrupt/stale checkpoint: refit and overwrite below
    with telemetry.span("dpmhbp.chain", seed=sampler.seed):
        posterior = sampler.fit(failures, features, init_labels=init)
    if ckpt_path is not None:
        posterior.save(ckpt_path)
    return posterior


@dataclass
class DPMHBPModel(FailureModel):
    """DPMHBP failure model: segment-level inference, pipe-level prediction.

    Fits the sampler on the training failure matrix and the segment
    clustering features, composes pipe risk as
    ``π_i = 1 − Π(1 − ρ_l)`` over the pipe's segments, and applies the
    multiplicative covariate factor (Poisson GLM), mirroring the paper's
    "features applied multiplicatively" treatment.

    Chains are independent given their derived seeds, so they fan across
    the executor configured by ``jobs``/``executor`` (or the
    ``REPRO_JOBS``/``REPRO_EXECUTOR`` environment variables) with
    bit-identical results on every backend.
    """

    name: str = "DPMHBP"
    alpha: float = 4.0
    q0: float = 0.02
    c0: float = 4.0
    c_group: float = 30.0
    feature_weight: float = 3.0
    n_sweeps: int = 60
    burn_in: int = 20
    n_chains: int = 2
    covariates: bool = True
    seed: int = 0
    jobs: int | None = None
    executor: str | None = None
    #: Pool the chains' per-sweep traces into a convergence
    #: :class:`~repro.monitor.HealthReport` after fitting (stored on
    #: ``health_``; also written to ``checkpoint_dir/health.json`` when
    #: checkpointing). Thresholds come from ``REPRO_HEALTH_*`` env vars.
    monitor: bool = True
    #: Directory for per-chain posterior checkpoints (``chain_<i>.npz``).
    #: A refit with the same configuration restores finished chains instead
    #: of re-sampling them — the chain-level resume a killed cell relies on.
    checkpoint_dir: str | None = None
    posterior_: DPMHBPPosterior | None = field(default=None, repr=False)
    chain_posteriors_: list[DPMHBPPosterior] = field(default_factory=list, repr=False)
    health_: HealthReport | None = field(default=None, repr=False)
    _factor: np.ndarray | None = field(default=None, repr=False)

    def fit(self, data: ModelData) -> "DPMHBPModel":
        if self.n_chains < 1:
            raise ValueError("need at least one chain")
        # Seed the partition with the material × laid-decade crossing — a
        # coarse expert prior the CRP is free to merge, split and refine.
        materials = np.asarray(data.pipe_material)[data.seg_pipe_idx]
        decades = (data.seg_laid_year // 10).astype(int)
        _, init = np.unique(
            np.char.add(materials.astype(str), decades.astype(str)), return_inverse=True
        )
        features = data.clustering_features()
        exec_config = resolve_executor(self.jobs, self.executor)
        # One shared bundle for every chain: under a multi-worker process
        # config the arrays are published to shared memory once and each
        # task pickles only the small handle; serially (or with threads)
        # the handle degrades to direct references — no copies either way.
        bundle = shm.publish_bundle(
            {"failures": data.seg_fail_train, "features": features, "init": init},
            config=exec_config if self.n_chains > 1 else None,
        )
        tasks = [
            (
                DPMHBP(
                    alpha=self.alpha,
                    q0=self.q0,
                    c0=self.c0,
                    c_group=self.c_group,
                    feature_weight=self.feature_weight,
                    n_sweeps=self.n_sweeps,
                    burn_in=self.burn_in,
                    seed=self.seed + 101 * chain,
                ),
                bundle,
                (
                    str(Path(self.checkpoint_dir) / f"chain_{chain}.npz")
                    if self.checkpoint_dir is not None
                    else None
                ),
            )
            for chain in range(self.n_chains)
        ]
        try:
            # chunksize=1: chains are few and heavy — a chain must never
            # queue behind a batch-mate on a busy worker.
            self.chain_posteriors_ = parallel_map(
                _fit_dpmhbp_chain, tasks, exec_config, chunksize=1
            )
        finally:
            # Workers that attached keep their mappings alive (POSIX unlink
            # semantics), so releasing immediately after the map is safe —
            # and guarantees a raising chain can't leak the segment.
            shm.release(bundle)
        # Pool the chains: the posterior mean averages, the variance adds
        # the within-chain and between-chain components.
        rho_means = np.stack([p.rho_mean for p in self.chain_posteriors_])
        rho_vars = np.stack([p.rho_std**2 for p in self.chain_posteriors_])
        pooled_mean = rho_means.mean(axis=0)
        pooled_var = rho_vars.mean(axis=0) + rho_means.var(axis=0)
        last = self.chain_posteriors_[-1]
        self.posterior_ = DPMHBPPosterior(
            rho_mean=pooled_mean,
            rho_std=np.sqrt(pooled_var),
            n_clusters_trace=last.n_clusters_trace,
            last_assignments=last.last_assignments,
            last_q=last.last_q,
            accept_rate_q=float(
                np.mean([p.accept_rate_q for p in self.chain_posteriors_])
            ),
        )
        self.health_ = self._pool_health() if self.monitor else None
        if self.covariates:
            counts = data.pipe_fail_train.sum(axis=1).astype(float)
            exposure = np.full(data.n_pipes, float(data.pipe_fail_train.shape[1]))
            glm = PoissonRegression(l2=1e-2).fit(data.X_pipe, counts, exposure=exposure)
            self._factor = glm.covariate_factor(data.X_pipe)
        else:
            self._factor = np.ones(data.n_pipes)
        return self

    def _pool_health(self) -> HealthReport:
        """Fold the chains' per-sweep traces into one convergence report.

        Chains run in (possibly process-pool) workers, so the monitor
        cannot observe them live — their recorded traces are bulk-ingested
        here instead. Post-burn-in sweeps only, matching what the pooled
        posterior itself retains. Old checkpoints without sweep traces
        contribute ``n_clusters`` only.
        """
        health = ChainHealth(burn_in=self.burn_in)
        for posterior in self.chain_posteriors_:
            series: dict[str, np.ndarray] = {
                "n_clusters": np.asarray(posterior.n_clusters_trace, dtype=float)
            }
            if posterior.log_lik_trace.size:
                series["log_lik"] = posterior.log_lik_trace
            if posterior.accept_trace.size:
                series["accept_q"] = posterior.accept_trace
            health.ingest_chain(series)
        report = health.report()
        if self.checkpoint_dir is not None:
            _write_json_atomic(
                Path(self.checkpoint_dir) / "health.json", report.to_json()
            )
        return report

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        if self.posterior_ is None or self._factor is None:
            raise RuntimeError("model used before fit()")
        pipe_prob = data.survival_pipe_probability(self.posterior_.rho_mean)
        return pipe_prob * self._factor

    def predict_segment_risk(self) -> np.ndarray:
        """Posterior mean per-segment yearly failure probability ``ρ_l``."""
        if self.posterior_ is None:
            raise RuntimeError("model used before fit()")
        return self.posterior_.rho_mean
