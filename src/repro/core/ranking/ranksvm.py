"""RankSVM: pairwise hinge-loss ranking with a linear kernel.

The convex instantiation of the ranking objective: for every
(positive z, negative z') pair, penalise ``max(0, 1 − wᵀ(z − z'))``. This
is exactly an SVM on pair-difference vectors, trained here with Pegasos-
style stochastic subgradient steps over sampled pairs (the full pair set
is |P|·|N| and never materialised).

This is the "SVM-based ranking approach ... with a linear kernel" the
evaluation protocol compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RankSVM:
    """Linear pairwise ranking SVM trained on sampled positive–negative pairs."""

    lam: float = 1e-3
    n_pairs: int = 50_000
    epochs: int = 3
    seed: int = 0
    coef_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RankSVM":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        pos_idx = np.flatnonzero(y == 1.0)
        neg_idx = np.flatnonzero(y != 1.0)
        if pos_idx.size == 0 or neg_idx.size == 0:
            raise ValueError("RankSVM needs both positive and negative examples")
        rng = np.random.default_rng(self.seed)
        d = X.shape[1]
        w = np.zeros(d)
        t = 0
        for _ in range(self.epochs):
            p = rng.choice(pos_idx, size=self.n_pairs)
            n = rng.choice(neg_idx, size=self.n_pairs)
            for i in range(self.n_pairs):
                t += 1
                eta = 1.0 / (self.lam * t)
                diff = X[p[i]] - X[n[i]]
                w *= 1.0 - eta * self.lam
                if w @ diff < 1.0:
                    w += eta * diff
                norm = float(np.linalg.norm(w))
                radius = 1.0 / np.sqrt(self.lam)
                if norm > radius:
                    w *= radius / norm
        self.coef_ = w
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Ranking scores ``wᵀx`` (only their order is meaningful)."""
        if self.coef_ is None:
            raise RuntimeError("model used before fit()")
        return np.asarray(X, dtype=float) @ self.coef_

    def pairwise_accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correctly ordered (pos, neg) pairs — the empirical AUC."""
        from .objective import empirical_auc

        return empirical_auc(self.decision_function(X), y)
