"""Derivative-free optimisers for the exact (non-smooth) AUC objective.

The empirical AUC is piecewise constant in the ranking function's
parameters, so the data-mining formulation optimises it directly with
evolutionary search rather than gradients. Two classic optimisers are
implemented from scratch:

* :class:`EvolutionStrategy` — a (μ/μ, λ) ES with global intermediate
  recombination and cumulative step-size-free self-adaptation (each
  offspring mutates its own log-σ), robust on noisy rank objectives;
* :class:`DifferentialEvolution` — DE/rand/1/bin, a strong default for
  low-dimensional continuous black-box problems.

Both maximise ``objective(w)`` over flat parameter vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

Objective = Callable[[np.ndarray], float]


@dataclass
class OptimisationResult:
    """Best point found and its objective value, plus the search history."""

    best_params: np.ndarray
    best_value: float
    history: list[float]


@dataclass
class EvolutionStrategy:
    """(μ/μ, λ) evolution strategy with self-adaptive mutation strength."""

    population: int = 40  # λ
    parents: int = 10  # μ
    generations: int = 60
    init_sigma: float = 0.5
    seed: int = 0

    def maximise(self, objective: Objective, dim: int, x0: np.ndarray | None = None) -> OptimisationResult:
        if self.parents < 1 or self.population <= self.parents:
            raise ValueError("need population > parents >= 1")
        rng = np.random.default_rng(self.seed)
        mean = np.zeros(dim) if x0 is None else np.asarray(x0, dtype=float).copy()
        if mean.shape != (dim,):
            raise ValueError(f"x0 must have shape ({dim},)")
        sigma = self.init_sigma
        tau = 1.0 / np.sqrt(2.0 * dim)
        best_params = mean.copy()
        best_value = objective(mean)
        history = [best_value]
        for _ in range(self.generations):
            # Each offspring self-adapts its step size before mutating.
            sigmas = sigma * np.exp(tau * rng.standard_normal(self.population))
            offspring = mean[None, :] + sigmas[:, None] * rng.standard_normal(
                (self.population, dim)
            )
            values = np.asarray([objective(ind) for ind in offspring])
            elite = np.argsort(-values)[: self.parents]
            mean = offspring[elite].mean(axis=0)
            sigma = float(np.exp(np.mean(np.log(sigmas[elite]))))
            sigma = min(max(sigma, 1e-6), 1e3)
            gen_best = int(elite[0])
            if values[gen_best] > best_value:
                best_value = float(values[gen_best])
                best_params = offspring[gen_best].copy()
            history.append(best_value)
        return OptimisationResult(best_params=best_params, best_value=best_value, history=history)


@dataclass
class DifferentialEvolution:
    """DE/rand/1/bin maximiser with fixed F and CR."""

    population: int = 40
    generations: int = 80
    differential_weight: float = 0.7  # F
    crossover_rate: float = 0.9  # CR
    init_scale: float = 0.5
    seed: int = 0

    def maximise(self, objective: Objective, dim: int, x0: np.ndarray | None = None) -> OptimisationResult:
        if self.population < 4:
            raise ValueError("DE needs a population of at least 4")
        rng = np.random.default_rng(self.seed)
        pop = rng.normal(0.0, self.init_scale, size=(self.population, dim))
        if x0 is not None:
            pop[0] = np.asarray(x0, dtype=float)
        values = np.asarray([objective(ind) for ind in pop])
        history = [float(values.max())]
        for _ in range(self.generations):
            for i in range(self.population):
                candidates = [j for j in range(self.population) if j != i]
                a, b, c = rng.choice(candidates, size=3, replace=False)
                mutant = pop[a] + self.differential_weight * (pop[b] - pop[c])
                cross = rng.random(dim) < self.crossover_rate
                cross[rng.integers(dim)] = True  # guarantee one gene crosses
                trial = np.where(cross, mutant, pop[i])
                trial_value = objective(trial)
                if trial_value >= values[i]:
                    pop[i] = trial
                    values[i] = trial_value
            history.append(float(values.max()))
        best = int(np.argmax(values))
        return OptimisationResult(
            best_params=pop[best].copy(), best_value=float(values[best]), history=history
        )
