"""Ranking-based failure models (the data-mining method and its SVM variant).

The core formulation: rank pipes by a learned real-valued function so the
empirical AUC (Eq. 18.10) is maximised. Training uses *temporal
snapshots*: for each of the last ``n_snapshots`` training years ``y``, a
design matrix is built from information available before ``y`` and
labelled with year-``y`` failures — exactly the deployment situation of
scoring 2009 with data to 2008.

Three concrete models:

* :class:`AUCRankingModel` — linear scoring function, exact-AUC objective,
  optimised by evolution strategy or differential evolution (the titled
  paper's "data mining method");
* :class:`SVMRankingModel` — the convex RankSVM instantiation with a
  linear kernel (the evaluation protocol's "SVM" comparator);
* :class:`SVMClassifierModel` — a plain class-balanced linear SVM
  classifier, included as a secondary baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...features.builder import ModelData
from ...ml.svm import LinearSVM
from ..base import FailureModel, ranking_features
from .evolutionary import DifferentialEvolution, EvolutionStrategy, OptimisationResult
from .objective import empirical_auc
from .ranksvm import RankSVM


def build_snapshots(data: ModelData, n_snapshots: int = 5) -> tuple[np.ndarray, np.ndarray]:
    """Stacked (X, y) over the last ``n_snapshots`` training years.

    Only snapshot years with at least one failure and one non-failure are
    kept (degenerate years teach a ranker nothing).
    """
    if n_snapshots < 1:
        raise ValueError("need at least one snapshot year")
    years = list(data.train_years)[-n_snapshots:]
    xs: list[np.ndarray] = []
    ys: list[np.ndarray] = []
    year_col = {y: j for j, y in enumerate(data.train_years)}
    for y in years:
        labels = data.pipe_fail_train[:, year_col[y]].astype(float)
        if labels.sum() == 0 or labels.sum() == labels.size:
            continue
        xs.append(ranking_features(data, score_year=y))
        ys.append(labels)
    if not xs:
        raise ValueError("no usable snapshot years (no failures in recent training years)")
    return np.vstack(xs), np.concatenate(ys)


@dataclass
class AUCRankingModel(FailureModel):
    """Linear ranking function trained by direct AUC maximisation.

    ``optimiser`` selects the black-box search: "es" (evolution strategy)
    or "de" (differential evolution). A RankSVM warm start gives the
    search a good basin; the evolutionary phase then squeezes the exact,
    non-smooth objective.
    """

    name: str = "AUC-Rank"
    optimiser: str = "es"
    n_snapshots: int = 5
    generations: int = 60
    population: int = 40
    seed: int = 0
    warm_start: bool = True
    coef_: np.ndarray | None = None
    result_: OptimisationResult | None = field(default=None, repr=False)

    def fit(self, data: ModelData) -> "AUCRankingModel":
        X, y = build_snapshots(data, self.n_snapshots)
        dim = X.shape[1]

        def objective(w: np.ndarray) -> float:
            return empirical_auc(X @ w, y)

        x0 = None
        if self.warm_start:
            x0 = RankSVM(seed=self.seed, n_pairs=20_000, epochs=2).fit(X, y).coef_
            norm = float(np.linalg.norm(x0))
            if norm > 0:
                x0 = x0 / norm
        if self.optimiser == "es":
            search = EvolutionStrategy(
                population=self.population,
                parents=max(2, self.population // 4),
                generations=self.generations,
                seed=self.seed,
            )
        elif self.optimiser == "de":
            search = DifferentialEvolution(
                population=self.population, generations=self.generations, seed=self.seed
            )
        else:
            raise ValueError(f"unknown optimiser {self.optimiser!r}")
        self.result_ = search.maximise(objective, dim, x0=x0)
        self.coef_ = self.result_.best_params
        return self

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model used before fit()")
        return ranking_features(data) @ self.coef_


@dataclass
class SVMRankingModel(FailureModel):
    """RankSVM (linear kernel) on the same temporal snapshots."""

    name: str = "SVM"
    n_snapshots: int = 5
    lam: float = 1e-3
    seed: int = 0
    _svm: RankSVM | None = field(default=None, repr=False)

    def fit(self, data: ModelData) -> "SVMRankingModel":
        X, y = build_snapshots(data, self.n_snapshots)
        self._svm = RankSVM(lam=self.lam, seed=self.seed).fit(X, y)
        return self

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        if self._svm is None:
            raise RuntimeError("model used before fit()")
        return self._svm.decision_function(ranking_features(data))


@dataclass
class SVMClassifierModel(FailureModel):
    """Class-balanced linear SVM classifier; margin used as the risk score."""

    name: str = "SVM-clf"
    n_snapshots: int = 5
    lam: float = 1e-3
    seed: int = 0
    _svm: LinearSVM | None = field(default=None, repr=False)

    def fit(self, data: ModelData) -> "SVMClassifierModel":
        X, y = build_snapshots(data, self.n_snapshots)
        self._svm = LinearSVM(lam=self.lam, seed=self.seed, epochs=8).fit(X, y.astype(int))
        return self

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        if self._svm is None:
            raise RuntimeError("model used before fit()")
        return self._svm.decision_function(ranking_features(data))
