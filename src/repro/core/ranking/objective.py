"""Ranking objectives: the exact AUC criterion and smooth surrogates.

The data-mining formulation treats failure prediction as *ranking*: learn
a real-valued function ``H`` maximising

    Σ_{z ∈ P, z' ∈ N} I(H(z) > H(z'))  /  (|P|·|N|)

(the empirical AUC; Eq. 18.10 of the evaluation protocol), where ``P`` are
failure examples and ``N`` non-failures. The indicator makes the objective
piecewise constant, hence the derivative-free evolutionary optimisers in
:mod:`.evolutionary`; a sigmoid-smoothed surrogate is provided for
gradient methods and for tests.
"""

from __future__ import annotations

import numpy as np


def empirical_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Exact AUC of ``scores`` against binary ``labels`` (ties count 1/2).

    Computed with the rank-sum (Mann–Whitney) identity in O(n log n)
    rather than the literal O(|P|·|N|) double sum.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=float).ravel()
    if scores.shape[0] != labels.shape[0]:
        raise ValueError("scores and labels must align")
    pos = labels == 1.0
    n_pos = int(pos.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs at least one positive and one negative")
    ranks = midranks(scores)
    rank_sum = float(ranks[pos].sum())
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def midranks(x: np.ndarray) -> np.ndarray:
    """1-based ranks with ties assigned the mean rank of their block.

    The repo's one rank-sum implementation (every AUC path goes through
    it). Fully vectorized: tie blocks are the runs between change points
    of the sorted array, and each block's mean rank broadcasts back via
    ``np.repeat``.
    """
    x = np.asarray(x)
    n = x.size
    order = np.argsort(x, kind="mergesort")
    sorted_x = x[order]
    block_start = np.empty(n, dtype=bool)
    if n:
        block_start[0] = True
        np.not_equal(sorted_x[1:], sorted_x[:-1], out=block_start[1:])
    starts = np.flatnonzero(block_start)
    ends = np.append(starts[1:], n)  # exclusive block ends
    block_rank = 0.5 * (starts + ends - 1) + 1.0
    ranks = np.empty(n, dtype=float)
    ranks[order] = np.repeat(block_rank, ends - starts)
    return ranks


#: Backwards-compatible alias (the function predates its public export).
_midranks = midranks


#: Pairwise-delta blocks are streamed at most this many elements at a time,
#: bounding sigmoid_auc's peak allocation to a few MB however large |P|·|N|.
_SIGMOID_AUC_BLOCK = 4_000_000


def sigmoid_auc(scores: np.ndarray, labels: np.ndarray, sharpness: float = 5.0) -> float:
    """Smooth AUC surrogate: indicator replaced by ``σ(sharpness·Δ)``.

    Upper-bounds nothing and lower-bounds nothing in general, but its
    maximiser approaches the exact-AUC maximiser as ``sharpness → ∞``.
    O(|P|·|N|) time, but the pairwise delta matrix is computed in
    memory-bounded chunks of positives, so large inputs never allocate
    the full |P|×|N| array.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=float).ravel()
    pos = scores[labels == 1.0]
    neg = scores[labels != 1.0]
    if pos.size == 0 or neg.size == 0:
        raise ValueError("need at least one positive and one negative")
    rows_per_chunk = max(1, _SIGMOID_AUC_BLOCK // neg.size)
    total = 0.0
    for start in range(0, pos.size, rows_per_chunk):
        delta = sharpness * (pos[start : start + rows_per_chunk, None] - neg[None, :])
        total += float(np.sum(1.0 / (1.0 + np.exp(-np.clip(delta, -50, 50)))))
    return total / (pos.size * neg.size)


def top_fraction_hit_rate(scores: np.ndarray, labels: np.ndarray, fraction: float) -> float:
    """Share of all positives captured in the top ``fraction`` of scores.

    The budget-constrained criterion behind the 1%-inspection evaluation.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=float).ravel()
    n_top = max(1, int(round(fraction * scores.size)))
    top = np.argsort(-scores, kind="mergesort")[:n_top]
    total = labels.sum()
    if total == 0:
        raise ValueError("no positives to detect")
    return float(labels[top].sum() / total)
