"""Ranking core: AUC objective, evolutionary optimisers, RankSVM, models."""

from .evolutionary import DifferentialEvolution, EvolutionStrategy, OptimisationResult
from .model import AUCRankingModel, SVMClassifierModel, SVMRankingModel, build_snapshots
from .objective import empirical_auc, midranks, sigmoid_auc, top_fraction_hit_rate
from .ranksvm import RankSVM

__all__ = [
    "DifferentialEvolution",
    "EvolutionStrategy",
    "OptimisationResult",
    "AUCRankingModel",
    "SVMClassifierModel",
    "SVMRankingModel",
    "build_snapshots",
    "empirical_auc",
    "midranks",
    "sigmoid_auc",
    "top_fraction_hit_rate",
    "RankSVM",
]
