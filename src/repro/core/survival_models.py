"""FailureModel adapters for the classical survival baselines.

These translate the shared :class:`~repro.features.ModelData` into the
representations the survival models expect:

* **Cox PH** — time axis is pipe *age*; each pipe enters observation at
  its 1998 age (left truncation), exits at its first training-period
  failure (event) or its 2008 age (censored); the test-year risk is the
  conditional probability of failing in the one-year age window of 2009.
* **Weibull NHPP** — one exposure row per pipe-year of the training
  period; the test-year score is the expected failure count in the 2009
  age window.
* **time-exponential / power / linear** — age-only rate models applied to
  pipe length exposure (the related-work single-covariate baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..features.builder import ModelData
from ..survival.cox import CoxPH
from ..survival.time_models import TimeExponentialModel, TimeLinearModel, TimePowerModel
from ..survival.weibull import WeibullNHPP
from .base import FailureModel


def _cox_arrays(data: ModelData) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(entry age, exit age, event) for the training window."""
    first_year = data.train_years[0]
    last_year = data.train_years[-1]
    entry = data.pipe_ages(first_year)
    fail_any = data.pipe_fail_train.sum(axis=1) > 0
    first_fail_col = np.argmax(data.pipe_fail_train, axis=1)  # 0 when no failure
    fail_year = np.asarray(data.train_years, dtype=float)[first_fail_col]
    exit_age = np.where(
        fail_any,
        np.maximum(fail_year - data.pipe_laid_year, 0.0) + 0.5,  # mid-year failure
        np.maximum(float(last_year) - data.pipe_laid_year, 0.0) + 1.0,
    )
    return entry, exit_age, fail_any.astype(float)


@dataclass
class CoxPHModel(FailureModel):
    """Cox proportional hazards on pipe ages with Table 18.2 covariates."""

    name: str = "Cox"
    l2: float = 1e-3
    ties: str = "breslow"
    _cox: CoxPH | None = field(default=None, repr=False)

    def fit(self, data: ModelData) -> "CoxPHModel":
        entry, exit_age, event = _cox_arrays(data)
        self._cox = CoxPH(l2=self.l2, ties=self.ties).fit(
            data.X_pipe, exit_age, event, entry_time=entry
        )
        return self

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        if self._cox is None:
            raise RuntimeError("model used before fit()")
        age_start = data.pipe_ages(data.test_year)
        return self._cox.interval_failure_probability(
            data.X_pipe, age_start, age_start + 1.0
        )


def _pipe_year_exposure(data: ModelData) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stacked per-pipe-per-training-year rows: (X, counts, age_start, age_end)."""
    n_years = len(data.train_years)
    X = np.repeat(data.X_pipe, n_years, axis=0)
    counts = data.pipe_fail_train.astype(float).ravel()
    ages = np.stack([data.pipe_ages(y) for y in data.train_years], axis=1).ravel()
    return X, counts, ages, ages + 1.0


@dataclass
class WeibullModel(FailureModel):
    """Weibull power-law NHPP with multiplicative covariates."""

    name: str = "Weibull"
    l2: float = 1e-3
    _model: WeibullNHPP | None = field(default=None, repr=False)

    def fit(self, data: ModelData) -> "WeibullModel":
        X, counts, a0, a1 = _pipe_year_exposure(data)
        self._model = WeibullNHPP(l2=self.l2).fit(X, counts, a0, a1)
        return self

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("model used before fit()")
        age = data.pipe_ages(data.test_year)
        return self._model.expected_failures(data.X_pipe, age, age + 1.0)


@dataclass
class TimeRateModel(FailureModel):
    """Adapter for the age-only rate baselines.

    ``kind`` is "exponential", "power" or "linear" (Shamir–Howard, Mavin,
    Kettler–Goulter respectively).
    """

    name: str = "TimeExp"
    kind: str = "exponential"
    _model: TimeExponentialModel | TimePowerModel | TimeLinearModel | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        names = {"exponential": "TimeExp", "power": "TimePow", "linear": "TimeLin"}
        if self.kind not in names:
            raise ValueError(f"unknown kind {self.kind!r}")
        if self.name == "TimeExp":
            self.name = names[self.kind]

    def fit(self, data: ModelData) -> "TimeRateModel":
        _, counts, a0, _a1 = _pipe_year_exposure(data)
        lengths = np.repeat(data.pipe_lengths, len(data.train_years))
        if self.kind == "exponential":
            self._model = TimeExponentialModel().fit(a0, counts, lengths)
        elif self.kind == "power":
            self._model = TimePowerModel().fit(a0, counts, lengths)
        else:
            self._model = TimeLinearModel().fit(a0, counts, lengths)
        return self

    def predict_pipe_risk(self, data: ModelData) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("model used before fit()")
        age = data.pipe_ages(data.test_year)
        return self._model.expected_failures(age, data.pipe_lengths)
