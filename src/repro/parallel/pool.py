"""Persistent process pools: spawn once, fan out many times.

``parallel_map`` used to build a fresh ``ProcessPoolExecutor`` per call —
the per-cell fan-out in :mod:`repro.runs.engine` and the per-chain
fan-out in :class:`~repro.core.dpmhbp.DPMHBPModel` rebuilt pools dozens
of times per grid, paying worker spawn, interpreter warm-up and a cold
region cache every time. This module keeps one pool per
:class:`~repro.parallel.executor.ExecutorConfig` alive for the life of
the process (registry + atexit shutdown), so repeated maps reuse warm
workers whose process-local caches persist across calls.

Scope: **processes only, top-level process only.** Thread pools cost
microseconds to build, and a persistent shared ``ThreadPoolExecutor``
would deadlock on re-entrant maps (outer tasks occupying every worker
while their inner maps queue), so the threads backend keeps its per-call
pool. Inside a pool worker, nested process fan-out (a grid cell fitting
multi-chain DPMHBP under ``REPRO_EXECUTOR=processes``) likewise stays
per-call: a persistent grandchild pool would outlive its map and wedge
the worker's interpreter shutdown.

Worker initialisation: new pools snapshot the parent's telemetry context
(``REPRO_TRACE``) and the shared region cache
(:func:`repro.parallel.cache.export_shared_region_cache`) into their
initializer, so workers wake up tracing into the same file and resolving
already-built regions zero-copy from shared memory instead of
regenerating them. The pool registry key includes the telemetry
fingerprint — pointing the recorder at a new trace file retires the old
pool rather than leaving workers tracing into the wrong run.

Fork-safety: registry entries record their creating pid; a forked worker
inherits the parent's dict but its executors are dead weight there, so
``get_pool`` discards stale-pid entries instead of reusing them.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .. import telemetry
from ..telemetry.recorder import TRACE_ENV

if TYPE_CHECKING:  # pragma: no cover
    from .executor import ExecutorConfig

#: Environment switch: set ``REPRO_POOL_REUSE=0`` to restore per-call
#: pools (A/B benchmarking; debugging worker-state bleed).
POOL_REUSE_ENV = "REPRO_POOL_REUSE"

#: Items per IPC round-trip are batched so a many-small-item map stops
#: paying one pickle/unpickle cycle per item; capped so every worker
#: still gets several batches to balance across.
_CHUNK_WAVES = 4

#: True inside a pool worker (set by the initializer). Persistent pools
#: are for the top-level process only: a nested fan-out inside a worker
#: (e.g. a grid cell fitting a multi-chain DPMHBP under an inherited
#: ``REPRO_EXECUTOR=processes``) must use the context-managed per-call
#: path, because a persistent grandchild pool outlives its map and
#: deadlocks the worker's interpreter shutdown (the executor management
#: thread joins grandchildren that are themselves stuck in shutdown).
_in_pool_worker = False


class WorkerPool:
    """One persistent process pool plus its bookkeeping."""

    def __init__(self, key: tuple, executor: ProcessPoolExecutor, jobs: int):
        self.key = key
        self.executor = executor
        self.jobs = jobs
        self.owner_pid = os.getpid()
        self.maps_served = 0

    def map(
        self, fn: Callable, work: list, chunksize: int = 1
    ) -> Iterator:
        self.maps_served += 1
        return self.executor.map(fn, work, chunksize=chunksize)

    def shutdown(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)


_lock = threading.Lock()
_pools: dict[tuple, WorkerPool] = {}
_created = 0
_reused = 0
_evicted = 0
_atexit_installed = False


def pools_enabled() -> bool:
    """Whether persistent pool reuse applies to maps in *this* process.

    False inside pool workers (nested fan-out stays per-call and
    context-managed — see ``_in_pool_worker``) and when disabled via
    ``REPRO_POOL_REUSE=0``.
    """
    if _in_pool_worker:
        return False
    return os.environ.get(POOL_REUSE_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


def compute_chunksize(n_items: int, jobs: int) -> int:
    """Batch size for ``pool.map``: ~``_CHUNK_WAVES`` batches per worker.

    The stdlib default of 1 is pathological for many small items (one
    IPC round-trip each); a single huge chunk serialises the map. This
    lands in between: big batches, but every worker still sees several.
    """
    if n_items <= 0 or jobs <= 0:
        return 1
    return max(1, n_items // (jobs * _CHUNK_WAVES))


def _worker_initializer(trace_path: str | None, shared_items: list) -> None:
    """Runs once in every fresh pool worker.

    Re-exports the parent's trace path (start-method-proof: fork inherits
    the environment, spawn would not) and installs the shared region
    cache handles so ``cached_model_data`` resolves published regions
    zero-copy instead of regenerating them. Also marks the process as a
    pool worker so any nested fan-out keeps per-call pool semantics.
    """
    global _in_pool_worker
    _in_pool_worker = True
    if trace_path:
        os.environ[TRACE_ENV] = trace_path
        recorder = telemetry.get_recorder()
        if not recorder.enabled or recorder.trace_path is None:
            telemetry.configure(trace_path=trace_path, enabled=True)
    from .cache import install_shared_handles

    install_shared_handles(shared_items)


def _telemetry_fingerprint() -> tuple:
    recorder = telemetry.get_recorder()
    path = recorder.trace_path
    return (recorder.enabled, str(path) if path is not None else None)


def _pool_key(config: "ExecutorConfig") -> tuple:
    return (config.mode, config.jobs, _telemetry_fingerprint())


def get_pool(config: "ExecutorConfig") -> WorkerPool:
    """The persistent pool for ``config``, creating (or reviving) it."""
    global _created, _reused, _atexit_installed
    if config.mode != "processes":  # pragma: no cover — callers gate on mode
        raise ValueError(f"persistent pools are processes-only, got {config.mode!r}")
    key = _pool_key(config)
    pid = os.getpid()
    with _lock:
        pool = _pools.get(key)
        if pool is not None and pool.owner_pid == pid:
            _reused += 1
            telemetry.count("pool.reused")
            return pool
        if pool is not None:  # inherited across a fork: dead weight, drop it
            del _pools[key]
    from .cache import export_shared_region_cache

    trace_path = os.environ.get(TRACE_ENV)
    shared_items = export_shared_region_cache()
    executor = ProcessPoolExecutor(
        max_workers=config.jobs,
        initializer=_worker_initializer,
        initargs=(trace_path, shared_items),
    )
    pool = WorkerPool(key=key, executor=executor, jobs=config.jobs)
    with _lock:
        _pools[key] = pool
        _created += 1
        if not _atexit_installed:
            atexit.register(shutdown_worker_pools)
            _atexit_installed = True
    telemetry.count("pool.created")
    return pool


def evict_pool(pool: WorkerPool) -> None:
    """Retire a broken pool so the next map gets a fresh one."""
    global _evicted
    with _lock:
        if _pools.get(pool.key) is pool:
            del _pools[pool.key]
            _evicted += 1
    telemetry.count("pool.evicted")
    try:
        pool.shutdown()
    except Exception:  # noqa: BLE001 — a broken pool may refuse even shutdown
        pass


def shutdown_worker_pools() -> None:
    """Shut down every pool this process created (atexit; tests)."""
    pid = os.getpid()
    with _lock:
        mine = [p for p in _pools.values() if p.owner_pid == pid]
        _pools.clear()
    for pool in mine:
        try:
            pool.shutdown()
        except Exception:  # noqa: BLE001
            pass


def pool_stats() -> dict[str, int]:
    """Registry counters (tests; ``repro status`` diagnostics)."""
    with _lock:
        return {
            "created": _created,
            "reused": _reused,
            "evicted": _evicted,
            "alive": sum(1 for p in _pools.values() if p.owner_pid == os.getpid()),
        }


def run_in_pool(
    config: "ExecutorConfig",
    fn: Callable,
    work: Iterable,
    chunksize: int,
) -> list:
    """One map over the persistent pool, evicting it if it comes back broken."""
    from concurrent.futures.process import BrokenProcessPool

    pool = get_pool(config)
    try:
        return list(pool.map(fn, list(work), chunksize=chunksize))
    except BrokenProcessPool:
        # A killed/crashed worker poisons the whole executor permanently;
        # retire it so the *next* map starts clean, then surface the error
        # (retry semantics belong to the caller's RunPolicy, not here).
        evict_pool(pool)
        raise


__all__ = [
    "POOL_REUSE_ENV",
    "WorkerPool",
    "compute_chunksize",
    "evict_pool",
    "get_pool",
    "pool_stats",
    "pools_enabled",
    "run_in_pool",
    "shutdown_worker_pools",
]
