"""Executor abstraction: serial, threaded or multi-process fan-out.

:func:`parallel_map` is an order-preserving ``map`` whose backend is
chosen by an :class:`ExecutorConfig` — built explicitly, or resolved from
the ``REPRO_JOBS`` (worker count) and ``REPRO_EXECUTOR``
(``serial``/``threads``/``processes``) environment variables via
:func:`resolve_executor`.

Backend notes
-------------
* ``serial`` — a plain loop; always available, the reference semantics.
* ``threads`` — ``ThreadPoolExecutor``; effective when the work releases
  the GIL (NumPy-heavy inner loops) and costs nothing to spawn. Pools are
  per-call: thread spawn is microseconds, and a shared persistent pool
  would deadlock on re-entrant maps.
* ``processes`` — requires the mapped function and its arguments to be
  picklable (module-level functions, plain data). Pools are *persistent*:
  one ``ProcessPoolExecutor`` per config, reused across calls via
  :mod:`repro.parallel.pool` (set ``REPRO_POOL_REUSE=0`` for the old
  per-call behaviour), with worker initializers that attach the shared
  region cache and the parent's telemetry context. Large array bundles
  travel through the zero-copy :mod:`repro.parallel.shm` data plane
  instead of per-task pickles. Maps batch items into chunks
  (:func:`repro.parallel.pool.compute_chunksize`, or an explicit
  ``chunksize=``) so many small items stop paying one IPC round-trip
  each.

Because every unit of work seeds its own ``np.random.Generator``, all
three backends produce bit-identical results; the determinism tests in
``tests/test_parallel.py`` enforce this.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Generic, Iterable, Sequence, TypeVar

from .. import telemetry

T = TypeVar("T")
R = TypeVar("R")

#: Recognised executor modes (aliases map onto these).
MODES = ("serial", "threads", "processes")

_MODE_ALIASES = {
    "serial": "serial",
    "sync": "serial",
    "threads": "threads",
    "thread": "threads",
    "processes": "processes",
    "process": "processes",
    "fork": "processes",
}


@dataclass(frozen=True)
class ExecutorConfig:
    """How to fan independent units of work across workers."""

    mode: str = "serial"
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    @property
    def is_serial(self) -> bool:
        return self.mode == "serial" or self.jobs == 1


def _normalise_mode(mode: str) -> str:
    try:
        return _MODE_ALIASES[mode.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown executor mode {mode!r}; use one of {sorted(set(_MODE_ALIASES))}"
        ) from None


def _validate_jobs(jobs: int, source: str) -> None:
    """Reject non-positive worker counts where the value enters the system.

    Validating at resolution time (not only in :class:`ExecutorConfig`)
    names the *source* of the bad value — ``REPRO_JOBS=0`` reads very
    differently from a buggy ``jobs=-2`` argument — and guarantees no
    worker-count ever reaches ``ThreadPoolExecutor``/``ProcessPoolExecutor``
    (which reject ``max_workers <= 0`` with an opaque crash).
    """
    if jobs < 1:
        raise ValueError(
            f"jobs must be >= 1, got {jobs} (from {source}); "
            "use jobs=1 (or mode='serial') for serial execution"
        )


def resolve_executor(
    jobs: int | None = None, mode: str | None = None
) -> ExecutorConfig:
    """Build a config from explicit arguments, falling back to the environment.

    Precedence per field: explicit argument → environment variable →
    default. ``jobs`` defaults to the CPU count whenever a non-serial mode
    is requested without a count, and mode defaults to ``threads`` whenever
    a count > 1 is requested without a mode. ``jobs`` must be >= 1 wherever
    it comes from — there is no "0 = auto" or negative-count convention.
    """
    if jobs is not None:
        _validate_jobs(jobs, "the jobs argument")
    else:
        raw = os.environ.get("REPRO_JOBS")
        if raw is not None:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
            _validate_jobs(jobs, f"REPRO_JOBS={raw}")
    if mode is None:
        raw_mode = os.environ.get("REPRO_EXECUTOR")
        mode = _normalise_mode(raw_mode) if raw_mode else None
    else:
        mode = _normalise_mode(mode)

    if mode is None:
        mode = "serial" if jobs in (None, 1) else "threads"
    if jobs is None:
        jobs = 1 if mode == "serial" else (os.cpu_count() or 1)
    return ExecutorConfig(mode=mode, jobs=jobs)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: ExecutorConfig | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, preserving input order.

    The serial path is a plain loop (zero overhead, trivially debuggable).
    The processes backend reuses a persistent pool per config (see
    :mod:`repro.parallel.pool`); the threads backend builds a cheap
    per-call pool capped at ``len(items)`` workers. Worker exceptions
    propagate to the caller, as they would serially.

    ``chunksize`` batches items per IPC round-trip on the processes
    backend; ``None`` computes a balanced default. Pass ``chunksize=1``
    explicitly for few, heavy items (grid cells, MCMC chains) so a slow
    item never queues behind its batch-mates.
    """
    from . import pool as pool_mod

    config = config or ExecutorConfig()
    work: Sequence[T] = list(items)
    if not work:
        return []
    if config.is_serial or len(work) == 1:
        with telemetry.span("parallel.map", mode="serial", jobs=1, items=len(work)):
            return [fn(item) for item in work]
    if config.mode == "processes":
        chunk = chunksize or pool_mod.compute_chunksize(len(work), config.jobs)
        if pool_mod.pools_enabled():
            with telemetry.span(
                "parallel.map",
                mode=config.mode,
                jobs=config.jobs,
                items=len(work),
                pool="persistent",
                chunksize=chunk,
            ):
                return pool_mod.run_in_pool(config, fn, work, chunk)
        n_workers = min(config.jobs, len(work))
        with telemetry.span(
            "parallel.map",
            mode=config.mode,
            jobs=n_workers,
            items=len(work),
            pool="per-call",
            chunksize=chunk,
        ):
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                return list(pool.map(fn, work, chunksize=chunk))
    n_workers = min(config.jobs, len(work))
    with telemetry.span(
        "parallel.map", mode=config.mode, jobs=n_workers, items=len(work)
    ):
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            return list(pool.map(fn, work))


class WorkError(RuntimeError):
    """Raised by :meth:`WorkResult.unwrap` for a captured worker failure."""


@dataclass
class WorkResult(Generic[R]):
    """Envelope for one unit of mapped work: value or captured error.

    Exceptions are carried as *strings* (type name + formatted traceback)
    rather than live objects, so envelopes from process-pool workers are
    always picklable regardless of what the worker raised.
    """

    index: int
    value: R | None = None
    error: str | None = None
    error_type: str | None = None
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> R:
        """The value, or :class:`WorkError` re-raising the captured failure."""
        if self.error is not None:
            raise WorkError(
                f"work item {self.index} failed [{self.error_type}]:\n{self.error}"
            )
        return self.value  # type: ignore[return-value]


class _EnvelopedCall(Generic[T, R]):
    """Picklable wrapper that turns ``fn(item)`` into a :class:`WorkResult`.

    A class (not a closure) so process pools can pickle it whenever ``fn``
    itself is picklable.
    """

    def __init__(self, fn: Callable[[T], R]):
        self.fn = fn

    def __call__(self, indexed: tuple[int, T]) -> WorkResult[R]:
        index, item = indexed
        start = time.perf_counter()
        try:
            with telemetry.span("parallel.worker", index=index):
                value = self.fn(item)
        except Exception as exc:  # noqa: BLE001 — the envelope is the contract
            telemetry.count("parallel.worker.errors")
            return WorkResult(
                index=index,
                error="".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
                error_type=type(exc).__name__,
                duration_s=time.perf_counter() - start,
            )
        return WorkResult(
            index=index, value=value, duration_s=time.perf_counter() - start
        )


def safe_parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: ExecutorConfig | None = None,
    chunksize: int | None = None,
) -> list[WorkResult[R]]:
    """:func:`parallel_map` with error-wrapping envelopes instead of bare raises.

    Every item yields a :class:`WorkResult` in input order; a failing item
    captures its exception (type name + traceback text) without aborting
    its siblings. This is the fan-out primitive fault-tolerant callers
    (the journalled experiment grid) build on.
    """
    return parallel_map(
        _EnvelopedCall(fn), list(enumerate(items)), config, chunksize=chunksize
    )
