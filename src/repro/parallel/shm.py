"""Zero-copy shared-memory data plane for the process executor.

The process backend used to pay a full pickle round-trip of every array
bundle per task: ``DPMHBPModel`` shipped the same (failures, features,
init) arrays to every chain, and each pool worker rebuilt region data the
parent already had. This module publishes frozen array bundles into
``multiprocessing.shared_memory`` segments once, and ships only a small
picklable :class:`BundleHandle` (segment name + per-field dtype/shape/
offset) — workers reconstruct **read-only zero-copy views** over the
same physical pages.

Design rules
------------
* **Ownership is publisher-only.** Only the process that called
  :func:`publish_bundle` may unlink a segment. Workers attach and build
  views, never unlink — so a crashed worker cannot leak a segment; at
  worst the publisher's atexit guard (:func:`unlink_all`) reclaims it.
* **Refcounted lifetime.** ``publish`` starts a segment at refcount 1;
  :func:`retain`/:func:`release` adjust it; the drop to zero closes and
  unlinks. ``release`` in a non-owner process is a no-op, so handles can
  be released unconditionally in ``finally`` blocks on any backend.
* **Unlink-after-map is safe.** POSIX keeps the mapping alive for every
  process that already attached, so the publisher can release right after
  ``parallel_map`` returns even though workers may still hold views.
* **Serial/threads degrade to direct references.** Publishing under a
  non-process config returns a *local* handle whose ``resolve`` hands
  back the original arrays — zero copies, zero syscalls, bit-identical
  semantics on every backend.

Fork-safety: the registries record the owning pid. A forked pool worker
inherits the parent's ``_owned`` dict and may *read* through it (the
mapping survives the fork), but release/atexit in the child never unlink
segments the child does not own.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from .. import telemetry

#: Prefix of every segment this module creates (``/dev/shm/<prefix>…`` on
#: Linux); the lifetime tests grep for it to prove nothing leaks.
SEGMENT_PREFIX = "repro_shm"

#: Worker-side attach cache bound (segments, not bytes). Evicted entries
#: are closed best-effort; live views keep their pages mapped regardless.
_MAX_ATTACHED = 16

#: Byte alignment of each array inside a segment (cache-line friendly).
_ALIGN = 64


@dataclass(frozen=True)
class ShmField:
    """Where one array lives inside a segment: dtype + shape + byte offset."""

    name: str
    dtype: str  # numpy dtype.str, e.g. "<f8"
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class BundleHandle:
    """Small picklable ticket for a published array bundle.

    ``segment is None`` marks a *local* handle (serial/threads): the
    arrays never left this process and :func:`resolve_bundle` returns
    them by reference. Otherwise the handle fully describes the shared
    segment and :func:`resolve_bundle` reconstructs read-only views.
    ``payload`` carries the bundle's small non-array fields verbatim
    (they ride the pickle — lists of ids, year tuples, metadata).
    """

    token: int
    segment: str | None = None
    fields: tuple[ShmField, ...] = ()
    nbytes: int = 0
    payload: Any = None
    owner_pid: int = 0

    @property
    def is_local(self) -> bool:
        return self.segment is None


class _OwnedSegment:
    """A segment this process created: the shm object plus its refcount."""

    __slots__ = ("shm", "refcount", "owner_pid")

    def __init__(self, shm_obj: shared_memory.SharedMemory):
        self.shm = shm_obj
        self.refcount = 1
        self.owner_pid = os.getpid()


_lock = threading.Lock()
_token_counter = itertools.count(1)
_owned: dict[str, _OwnedSegment] = {}
_local_bundles: dict[int, dict[str, np.ndarray]] = {}
_attached: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
_atexit_installed = False


def _close_quietly(shm_obj: shared_memory.SharedMemory) -> None:
    """Close a segment even while numpy views still pin its buffer.

    ``SharedMemory.close`` raises ``BufferError`` when exported views are
    alive. The pages are reclaimed by the kernel once the last attached
    process exits anyway (the name is already unlinked by then), so on
    ``BufferError`` we neutralise the object instead: drop its ``_buf``/
    ``_mmap`` references so ``__del__`` cannot raise at interpreter
    shutdown, and let process exit release the mapping.
    """
    try:
        shm_obj.close()
    except BufferError:
        shm_obj._buf = None  # noqa: SLF001 — deliberate neutralisation
        shm_obj._mmap = None  # noqa: SLF001
    except OSError:
        pass


def _untrack(shm_obj: shared_memory.SharedMemory) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    On CPython < 3.13 every attaching process registers the segment with
    ``resource_tracker``, which then warns about (and may unlink) it at
    worker exit even though the publisher still owns it. Ownership is
    publisher-only here, so attachers must unregister.
    """
    try:  # pragma: no cover — depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm_obj._name, "shared_memory")  # noqa: SLF001
    except Exception:  # noqa: BLE001 — tracker APIs are private; best-effort
        pass


def _install_atexit() -> None:
    global _atexit_installed
    if not _atexit_installed:
        atexit.register(unlink_all)
        _atexit_installed = True


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def publish_bundle(
    arrays: dict[str, np.ndarray],
    payload: Any = None,
    config: Any = None,
) -> BundleHandle:
    """Publish an array bundle; returns the picklable handle.

    ``config`` (an :class:`~repro.parallel.executor.ExecutorConfig` or
    ``None``) decides the plane: only a multi-worker ``processes`` config
    goes through shared memory — everything else returns a local handle
    that resolves to the original arrays by reference.
    """
    token = next(_token_counter)
    use_shm = (
        config is not None
        and getattr(config, "mode", "serial") == "processes"
        and getattr(config, "jobs", 1) > 1
    )
    if not use_shm:
        with _lock:
            _local_bundles[token] = dict(arrays)
        return BundleHandle(token=token, payload=payload, owner_pid=os.getpid())

    specs: list[ShmField] = []
    offset = 0
    contiguous: dict[str, np.ndarray] = {}
    for name, value in arrays.items():
        arr = np.ascontiguousarray(value)
        contiguous[name] = arr
        offset = _aligned(offset)
        specs.append(
            ShmField(name=name, dtype=arr.dtype.str, shape=arr.shape, offset=offset)
        )
        offset += arr.nbytes
    total = max(offset, 1)

    segment_name = f"{SEGMENT_PREFIX}_{os.getpid()}_{token}"
    with telemetry.span("shm.publish", segment=segment_name, nbytes=total):
        shm_obj = shared_memory.SharedMemory(
            name=segment_name, create=True, size=total
        )
        for spec, name in zip(specs, arrays):
            src = contiguous[name]
            if src.nbytes:
                view = np.frombuffer(
                    shm_obj.buf, dtype=src.dtype, count=src.size, offset=spec.offset
                )
                view[:] = src.reshape(-1)
                del view  # release the buffer export before any close()
    with _lock:
        _owned[segment_name] = _OwnedSegment(shm_obj)
        _install_atexit()
    telemetry.count("shm.published")
    telemetry.count("shm.published_bytes", total)
    return BundleHandle(
        token=token,
        segment=segment_name,
        fields=tuple(specs),
        nbytes=total,
        payload=payload,
        owner_pid=os.getpid(),
    )


def _views_from(shm_obj: shared_memory.SharedMemory, handle: BundleHandle) -> dict:
    out: dict[str, np.ndarray] = {}
    for spec in handle.fields:
        dtype = np.dtype(spec.dtype)
        count = int(np.prod(spec.shape, dtype=np.int64)) if spec.shape else 1
        view = np.frombuffer(
            shm_obj.buf, dtype=dtype, count=count, offset=spec.offset
        ).reshape(spec.shape)
        view.setflags(write=False)
        out[spec.name] = view
    return out


def resolve_bundle(handle: BundleHandle) -> dict[str, np.ndarray]:
    """The bundle's arrays: by reference locally, zero-copy views otherwise.

    Shared-segment views are always marked read-only — the bundle is one
    physical copy shared by every worker, so a write would corrupt all of
    them at once (the same contract, and the same enforcement, as the
    region cache).
    """
    if handle.is_local:
        with _lock:
            bundle = _local_bundles.get(handle.token)
        if bundle is None:
            raise KeyError(
                f"local bundle {handle.token} is not present in this process "
                "(published in another process, or already released)"
            )
        return dict(bundle)

    with _lock:
        owned = _owned.get(handle.segment)
        if owned is not None:
            # Publisher (or a forked child that inherited the mapping):
            # build views straight over the owned segment.
            return _views_from(owned.shm, handle)
        shm_obj = _attached.get(handle.segment)
        if shm_obj is not None:
            _attached.move_to_end(handle.segment)
            telemetry.count("shm.attach_hit")
            return _views_from(shm_obj, handle)
    with telemetry.span("shm.attach", segment=handle.segment):
        shm_obj = shared_memory.SharedMemory(name=handle.segment, create=False)
        _untrack(shm_obj)
    telemetry.count("shm.attached")
    with _lock:
        _attached[handle.segment] = shm_obj
        while len(_attached) > _MAX_ATTACHED:
            _, evicted = _attached.popitem(last=False)
            _close_quietly(evicted)
    return _views_from(shm_obj, handle)


def retain(handle: BundleHandle) -> None:
    """Bump the refcount of a published segment (owner process only)."""
    if handle.is_local:
        return
    with _lock:
        owned = _owned.get(handle.segment)
        if owned is not None and owned.owner_pid == os.getpid():
            owned.refcount += 1


def release(handle: BundleHandle) -> None:
    """Drop one reference; the owner unlinks the segment at refcount zero.

    Safe to call from any process on any backend (``finally``-friendly):
    local handles drop their registry entry, non-owner processes no-op.
    """
    if handle.is_local:
        with _lock:
            _local_bundles.pop(handle.token, None)
        return
    with _lock:
        owned = _owned.get(handle.segment)
        if owned is None or owned.owner_pid != os.getpid():
            return
        owned.refcount -= 1
        if owned.refcount > 0:
            return
        del _owned[handle.segment]
    _close_quietly(owned.shm)
    try:
        owned.shm.unlink()
    except FileNotFoundError:  # pragma: no cover — already gone
        pass
    telemetry.count("shm.unlinked")


def active_segments() -> list[str]:
    """Names of segments this process currently owns (tests; diagnostics)."""
    pid = os.getpid()
    with _lock:
        return sorted(
            name for name, seg in _owned.items() if seg.owner_pid == pid
        )


def unlink_all() -> None:
    """Unlink every segment this process owns — the atexit crash guard.

    Idempotent; also usable by tests and long-running servers on
    reconfigure. Segments owned by other processes (fork inheritance) are
    left alone.
    """
    pid = os.getpid()
    with _lock:
        mine = {
            name: seg for name, seg in _owned.items() if seg.owner_pid == pid
        }
        for name in mine:
            del _owned[name]
    for seg in mine.values():
        _close_quietly(seg.shm)
        try:
            seg.shm.unlink()
        except FileNotFoundError:
            pass


# --------------------------------------------------------------- ModelData
#: ``ModelData`` fields that never cross the data plane (per-process cache).
_MODEL_DATA_SKIP = ("_scaler_cache",)


def publish_model_data(data: Any, config: Any = None) -> BundleHandle:
    """Publish a :class:`~repro.features.builder.ModelData` as one bundle.

    Array fields go into the segment; everything else (ids, years, names)
    rides the handle's payload. Pass the executor config to keep the
    serial/threads degenerate path allocation-free.
    """
    arrays: dict[str, np.ndarray] = {}
    payload: dict[str, Any] = {}
    for f in fields(data):
        if f.name in _MODEL_DATA_SKIP:
            continue
        value = getattr(data, f.name)
        if isinstance(value, np.ndarray):
            arrays[f.name] = value
        else:
            payload[f.name] = value
    return publish_bundle(arrays, payload=payload, config=config)


def resolve_model_data(handle: BundleHandle) -> Any:
    """Reconstruct the :class:`ModelData` a handle describes (views read-only)."""
    from ..features.builder import ModelData

    arrays = resolve_bundle(handle)
    return ModelData(**handle.payload, **arrays)
