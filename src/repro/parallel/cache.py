"""Seed-keyed memoization of region generation and feature assembly.

``load_region`` already memoises the raw dataset per (region, scale,
seed); the expensive step on top of it — ``build_model_data``'s feature
assembly over every segment — was recomputed on every call. Repeated
evaluations (the t-test protocol fits six models on the *same* generated
region instance) and successive CLI invocations in one process pay that
cost once through this cache.

The cache is process-local and LRU-bounded. Entries are keyed by
everything that determines the output bit-for-bit: region name, scale,
seed, pipe-class subset and the full :class:`FeatureConfig` (list/array
fields normalised to hashable tuples). Callers must treat the returned
:class:`ModelData` as read-only — and the cache *enforces* it: every
array is marked non-writeable on insertion, so a model mutating a
feature matrix in place raises ``ValueError`` instead of silently
corrupting every sibling's cache hit.

Shared layer: on top of the process-local LRU sits a registry of
:mod:`repro.parallel.shm` handles. The parent publishes its built
regions once (:func:`export_shared_region_cache` — called by the
persistent-pool initializer), workers install the handle list
(:func:`install_shared_handles`), and a worker-side miss then resolves
read-only zero-copy views from shared memory instead of regenerating
the region the parent already built.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import astuple, fields
from threading import Lock

import numpy as np

from .. import telemetry
from . import shm
from ..data.datasets import load_region
from ..features.builder import FeatureConfig, ModelData, build_model_data
from ..network.pipe import PipeClass

#: Generated regions are a few MB each at default scale; keep a handful.
_MAX_ENTRIES = 8

_cache: OrderedDict[tuple, ModelData] = OrderedDict()
_lock = Lock()

#: Cache key → published (parent) or installed (worker) shm handle.
_shared_handles: dict[tuple, shm.BundleHandle] = {}


def _hashable(value):
    """Recursively normalise a config value into something hashable.

    ``astuple`` leaves nested lists/dicts/arrays as-is, which crashes the
    cache key with ``TypeError: unhashable type`` the moment a
    :class:`FeatureConfig` grows a list-valued field. Lists and tuples
    become tuples, dicts become sorted item-tuples, arrays are keyed by
    dtype + shape + bytes.
    """
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((_hashable(v) for v in value), key=repr)))
    if isinstance(value, dict):
        return tuple(
            (k, _hashable(v)) for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
    return value


def _key(
    region: str,
    scale: float | None,
    seed: int | None,
    pipe_class: PipeClass | None,
    feature_config: FeatureConfig | None,
) -> tuple:
    return (
        region.upper(),
        scale,
        seed,
        pipe_class.name if pipe_class is not None else None,
        _hashable(astuple(feature_config)) if feature_config is not None else None,
    )


def _freeze(data: ModelData) -> ModelData:
    """Mark every array field of ``data`` non-writeable (in place).

    The read-only contract of the cache, enforced: a cached
    :class:`ModelData` is shared by every model and repeat that hits the
    same key, so an in-place mutation would corrupt all of them at once.
    With the flag cleared, NumPy raises on the write instead.
    """
    for field in fields(data):
        value = getattr(data, field.name)
        if isinstance(value, np.ndarray):
            value.setflags(write=False)
    return data


def cached_model_data(
    region: str,
    scale: float | None = None,
    seed: int | None = None,
    pipe_class: PipeClass | None = PipeClass.CWM,
    feature_config: FeatureConfig | None = None,
) -> ModelData:
    """Generate (or fetch) the canonical :class:`ModelData` for one region."""
    key = _key(region, scale, seed, pipe_class, feature_config)
    with _lock:
        if key in _cache:
            _cache.move_to_end(key)
            telemetry.count("cache.hit")
            return _cache[key]
        handle = _shared_handles.get(key)
    if handle is not None:
        # A sibling process (usually the pool parent) already built this
        # region and published it; attach read-only zero-copy views
        # instead of regenerating. Shm views arrive frozen by contract.
        try:
            data = shm.resolve_model_data(handle)
        except (KeyError, FileNotFoundError, OSError):
            data = None  # publisher released it; fall through and rebuild
        if data is not None:
            telemetry.count("cache.shm_hit")
            with _lock:
                _cache[key] = data
                _cache.move_to_end(key)
                while len(_cache) > _MAX_ENTRIES:
                    _cache.popitem(last=False)
            return data
    telemetry.count("cache.miss")
    with telemetry.span("cache.build", region=region, scale=scale, seed=seed):
        dataset = load_region(region, scale=scale, seed=seed)
        if pipe_class is not None:
            dataset = dataset.subset(pipe_class)
        data = _freeze(build_model_data(dataset, feature_config))
    with _lock:
        _cache[key] = data
        _cache.move_to_end(key)
        while len(_cache) > _MAX_ENTRIES:
            _cache.popitem(last=False)
    return data


def export_shared_region_cache() -> list[tuple[tuple, shm.BundleHandle]]:
    """Publish every locally cached region into shared memory, once each.

    Returns the ``(key, handle)`` list a pool initializer ships to fresh
    workers. Publishing is memoised per key, so repeated pool creations
    re-copy nothing; the segments live until
    :func:`clear_model_data_cache` (or process exit via the shm atexit
    guard).
    """
    with _lock:
        entries = [
            (key, data) for key, data in _cache.items() if key not in _shared_handles
        ]
        already = [
            (key, handle)
            for key, handle in _shared_handles.items()
            if not handle.is_local
        ]
    published: list[tuple[tuple, shm.BundleHandle]] = []
    for key, data in entries:
        # Force the shm plane regardless of the caller's executor mode:
        # the whole point is crossing a process boundary.
        handle = shm.publish_model_data(data, config=_SHM_CONFIG)
        published.append((key, handle))
    with _lock:
        for key, handle in published:
            _shared_handles.setdefault(key, handle)
    return already + published


class _ForceShm:
    """Duck-typed config that always selects the shared-memory plane."""

    mode = "processes"
    jobs = 2


_SHM_CONFIG = _ForceShm()


def install_shared_handles(items: list[tuple[tuple, shm.BundleHandle]]) -> None:
    """Adopt published region handles (worker-side pool initializer hook)."""
    with _lock:
        for key, handle in items:
            _shared_handles.setdefault(key, handle)


def clear_model_data_cache() -> None:
    """Drop every cached region (tests; long-running servers on reconfigure).

    Also releases this process's published shared-memory segments — after
    a clear, ``/dev/shm`` holds nothing of ours (workers that attached
    keep their mappings alive until they exit; POSIX unlink semantics).
    """
    with _lock:
        _cache.clear()
        handles = list(_shared_handles.values())
        _shared_handles.clear()
    for handle in handles:
        shm.release(handle)
