"""Seed-keyed memoization of region generation and feature assembly.

``load_region`` already memoises the raw dataset per (region, scale,
seed); the expensive step on top of it — ``build_model_data``'s feature
assembly over every segment — was recomputed on every call. Repeated
evaluations (the t-test protocol fits six models on the *same* generated
region instance) and successive CLI invocations in one process pay that
cost once through this cache.

The cache is process-local and LRU-bounded. Entries are keyed by
everything that determines the output bit-for-bit: region name, scale,
seed, pipe-class subset and the full :class:`FeatureConfig`. Callers must
treat the returned :class:`ModelData` as read-only — and the cache
*enforces* it: every array is marked non-writeable on insertion, so a
model mutating a feature matrix in place raises ``ValueError`` instead of
silently corrupting every sibling's cache hit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import astuple, fields
from threading import Lock

import numpy as np

from .. import telemetry
from ..data.datasets import load_region
from ..features.builder import FeatureConfig, ModelData, build_model_data
from ..network.pipe import PipeClass

#: Generated regions are a few MB each at default scale; keep a handful.
_MAX_ENTRIES = 8

_cache: OrderedDict[tuple, ModelData] = OrderedDict()
_lock = Lock()


def _key(
    region: str,
    scale: float | None,
    seed: int | None,
    pipe_class: PipeClass | None,
    feature_config: FeatureConfig | None,
) -> tuple:
    return (
        region.upper(),
        scale,
        seed,
        pipe_class.name if pipe_class is not None else None,
        astuple(feature_config) if feature_config is not None else None,
    )


def _freeze(data: ModelData) -> ModelData:
    """Mark every array field of ``data`` non-writeable (in place).

    The read-only contract of the cache, enforced: a cached
    :class:`ModelData` is shared by every model and repeat that hits the
    same key, so an in-place mutation would corrupt all of them at once.
    With the flag cleared, NumPy raises on the write instead.
    """
    for field in fields(data):
        value = getattr(data, field.name)
        if isinstance(value, np.ndarray):
            value.setflags(write=False)
    return data


def cached_model_data(
    region: str,
    scale: float | None = None,
    seed: int | None = None,
    pipe_class: PipeClass | None = PipeClass.CWM,
    feature_config: FeatureConfig | None = None,
) -> ModelData:
    """Generate (or fetch) the canonical :class:`ModelData` for one region."""
    key = _key(region, scale, seed, pipe_class, feature_config)
    with _lock:
        if key in _cache:
            _cache.move_to_end(key)
            telemetry.count("cache.hit")
            return _cache[key]
    telemetry.count("cache.miss")
    with telemetry.span("cache.build", region=region, scale=scale, seed=seed):
        dataset = load_region(region, scale=scale, seed=seed)
        if pipe_class is not None:
            dataset = dataset.subset(pipe_class)
        data = _freeze(build_model_data(dataset, feature_config))
    with _lock:
        _cache[key] = data
        _cache.move_to_end(key)
        while len(_cache) > _MAX_ENTRIES:
            _cache.popitem(last=False)
    return data


def clear_model_data_cache() -> None:
    """Drop every cached region (tests; long-running servers on reconfigure)."""
    with _lock:
        _cache.clear()
