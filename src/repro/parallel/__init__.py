"""Parallel execution layer: executors and generation caches.

Everything in the repo that fans independent units of work — MCMC chains
in :class:`~repro.core.dpmhbp.DPMHBPModel`, the (region, repeat) cells of
:func:`~repro.eval.experiment.run_comparison` — goes through the
:func:`parallel_map` abstraction here, so one config (or the
``REPRO_JOBS``/``REPRO_EXECUTOR`` environment variables) switches the
whole pipeline between serial, threaded and multi-process execution.

Every unit of work derives its own RNG seed, so results are bit-identical
across backends — parallelism changes wall-clock, never numbers.
"""

from .cache import cached_model_data, clear_model_data_cache
from .executor import (
    ExecutorConfig,
    WorkError,
    WorkResult,
    parallel_map,
    resolve_executor,
    safe_parallel_map,
)

__all__ = [
    "ExecutorConfig",
    "WorkError",
    "WorkResult",
    "parallel_map",
    "resolve_executor",
    "safe_parallel_map",
    "cached_model_data",
    "clear_model_data_cache",
]
