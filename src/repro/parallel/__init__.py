"""Parallel execution layer: executors, persistent pools, shm data plane, caches.

Everything in the repo that fans independent units of work — MCMC chains
in :class:`~repro.core.dpmhbp.DPMHBPModel`, the (region, repeat) cells of
:func:`~repro.eval.experiment.run_comparison` — goes through the
:func:`parallel_map` abstraction here, so one config (or the
``REPRO_JOBS``/``REPRO_EXECUTOR`` environment variables) switches the
whole pipeline between serial, threaded and multi-process execution.

The processes backend is backed by two subsystems: persistent worker
pools (:mod:`repro.parallel.pool` — one pool per config, reused across
maps instead of respawned per call) and a zero-copy shared-memory data
plane (:mod:`repro.parallel.shm` — frozen array bundles published once,
workers reconstruct read-only views instead of unpickling copies).

Every unit of work derives its own RNG seed, so results are bit-identical
across backends — parallelism changes wall-clock, never numbers.
"""

from .cache import (
    cached_model_data,
    clear_model_data_cache,
    export_shared_region_cache,
    install_shared_handles,
)
from .executor import (
    ExecutorConfig,
    WorkError,
    WorkResult,
    parallel_map,
    resolve_executor,
    safe_parallel_map,
)
from .pool import (
    compute_chunksize,
    pool_stats,
    pools_enabled,
    shutdown_worker_pools,
)
from .shm import (
    BundleHandle,
    active_segments,
    publish_bundle,
    publish_model_data,
    release,
    resolve_bundle,
    resolve_model_data,
    retain,
    unlink_all,
)

__all__ = [
    "BundleHandle",
    "ExecutorConfig",
    "WorkError",
    "WorkResult",
    "active_segments",
    "cached_model_data",
    "clear_model_data_cache",
    "compute_chunksize",
    "export_shared_region_cache",
    "install_shared_handles",
    "parallel_map",
    "pool_stats",
    "pools_enabled",
    "publish_bundle",
    "publish_model_data",
    "release",
    "resolve_bundle",
    "resolve_model_data",
    "resolve_executor",
    "retain",
    "safe_parallel_map",
    "shutdown_worker_pools",
    "unlink_all",
]
