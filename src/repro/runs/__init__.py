"""Run journal + checkpoint subsystem: fault-tolerant, resumable grids.

``repro.runs`` turns a grid experiment from "a script that must finish"
into "an engine that survives": every :func:`repro.run_comparison`
invocation can own a run directory whose :class:`RunJournal` records a
config-fingerprinted manifest, an append-only JSONL event log, and an
atomic per-cell checkpoint for every completed (region, repeat) cell. A
re-invocation with ``resume=<run_dir>`` skips finished cells
*bit-identically*; failing cells are isolated by :class:`RunPolicy`
(``on_error="raise"/"skip"/"retry"``, bounded retries with a
deterministically reseeded fallback for degenerate regions, soft per-cell
timeouts); and :class:`FaultInjector` lets tests kill or stall chosen
cells on purpose.

Layering: this package owns identity (:class:`CellSpec`), persistence
(:class:`RunJournal`), policy (:class:`RunPolicy`/:func:`execute_cell`)
and faults; the experiment protocol itself stays in
:mod:`repro.eval.experiment`.
"""

from .engine import (
    ON_ERROR_MODES,
    CellExecutionError,
    CellOutcome,
    RunPolicy,
    execute_cell,
)
from .faults import (
    FAULT_KINDS,
    CancelToken,
    CellTimeoutError,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    call_with_timeout,
)
from .journal import (
    CellAbandonedError,
    CheckpointCorruptError,
    JournalError,
    RunJournal,
    config_fingerprint,
    describe_run,
)
from .spec import RESEED_OFFSET, CellSpec

__all__ = [
    "ON_ERROR_MODES",
    "CellExecutionError",
    "CellOutcome",
    "RunPolicy",
    "execute_cell",
    "FAULT_KINDS",
    "CellTimeoutError",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "call_with_timeout",
    "CheckpointCorruptError",
    "JournalError",
    "RunJournal",
    "config_fingerprint",
    "describe_run",
    "RESEED_OFFSET",
    "CellSpec",
]
