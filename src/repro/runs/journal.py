"""The run journal: manifest + event log + atomic per-cell checkpoints.

A journalled experiment owns a *run directory*::

    <run_dir>/
      manifest.json        # config fingerprint, seeds, scale, model line-up
      events.jsonl         # append-only log: run/cell lifecycle events
      cells/
        A-r000.npz         # arrays: labels, pipe lengths, per-model scores
        A-r000.json        # metadata + metrics + npz checksum (completion marker)
        B-r002.failed.json # last recorded failure for a cell (not a checkpoint)

Checkpoints are written *atomically* (temp file + ``os.replace`` in the
same directory) and in a fixed order — arrays first, then the metadata
record carrying the npz's SHA-256 — so the ``.json`` file is the
completion marker: if it exists and its checksum matches, the cell is
done; anything else (missing json, missing npz, truncated npz, checksum
mismatch, unparsable json) is *not done* and the cell reruns. A corrupted
checkpoint therefore costs a recompute, never a wrong result.

Floats round-trip exactly through ``json`` (``repr`` grammar) and arrays
through ``npz``, which is what makes ``resume=`` bit-identical to an
uninterrupted run.

The event log is observability, not state: recovery never reads it. Each
line is one JSON object appended with a single ``write`` call, so
concurrent workers (thread or process pools) interleave whole lines.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import zipfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

from .spec import CellSpec

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (eval imports runs)
    from ..eval.experiment import RegionRun

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"
CELLS_DIR = "cells"

#: Bump when the checkpoint layout changes incompatibly.
JOURNAL_FORMAT = 1


class JournalError(RuntimeError):
    """Structural problem with a run directory (missing/contradictory state)."""


class CheckpointCorruptError(JournalError):
    """A cell checkpoint exists but cannot be trusted (recompute the cell)."""


class CellAbandonedError(JournalError):
    """A checkpoint was suppressed because its cell was abandoned (timed out)."""


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp file + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _atomic_write_json(path: Path, payload: dict) -> None:
    _atomic_write_bytes(path, (json.dumps(payload, sort_keys=True) + "\n").encode())


def config_fingerprint(config: dict) -> str:
    """SHA-256 over the canonical JSON form of a run configuration."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class RunJournal:
    """One experiment run's durable state, rooted at ``run_dir``."""

    def __init__(self, run_dir: str | Path, manifest: dict):
        self.run_dir = Path(run_dir)
        self.manifest = manifest

    # ---------------------------------------------------------------- setup
    @classmethod
    def create(cls, run_dir: str | Path, config: dict) -> "RunJournal":
        """Start a fresh journal; refuses to trample a different run.

        Re-creating over an existing journal is allowed only when the
        config fingerprint matches (an idempotent restart); otherwise use a
        new directory or ``resume=`` the old one.
        """
        run_dir = Path(run_dir)
        manifest_path = run_dir / MANIFEST_NAME
        fingerprint = config_fingerprint(config)
        if manifest_path.exists():
            existing = cls.open(run_dir)
            if existing.fingerprint != fingerprint:
                raise JournalError(
                    f"{run_dir} already holds a run with a different configuration "
                    f"(fingerprint {existing.fingerprint[:12]}… != {fingerprint[:12]}…); "
                    "pass resume=<run_dir> to continue it or choose a new directory"
                )
            return existing
        manifest = {
            "format": JOURNAL_FORMAT,
            "created_unix": time.time(),
            "fingerprint": fingerprint,
            "config": config,
        }
        (run_dir / CELLS_DIR).mkdir(parents=True, exist_ok=True)
        _atomic_write_json(manifest_path, manifest)
        return cls(run_dir, manifest)

    @classmethod
    def open(cls, run_dir: str | Path) -> "RunJournal":
        """Open an existing journal, validating its manifest."""
        run_dir = Path(run_dir)
        manifest_path = run_dir / MANIFEST_NAME
        if not manifest_path.exists():
            raise JournalError(f"{run_dir} is not a run directory (no {MANIFEST_NAME})")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(f"unreadable manifest in {run_dir}: {exc}") from exc
        for key in ("format", "fingerprint", "config"):
            if key not in manifest:
                raise JournalError(f"manifest in {run_dir} lacks {key!r}")
        if manifest["format"] > JOURNAL_FORMAT:
            raise JournalError(
                f"run directory {run_dir} uses journal format {manifest['format']}, "
                f"newer than this build's {JOURNAL_FORMAT}"
            )
        return cls(run_dir, manifest)

    @property
    def fingerprint(self) -> str:
        return self.manifest["fingerprint"]

    def check_config(self, config: dict) -> None:
        """Raise unless ``config`` matches the run this journal records."""
        fingerprint = config_fingerprint(config)
        if fingerprint != self.fingerprint:
            raise JournalError(
                "resume configuration does not match the journalled run "
                f"(fingerprint {fingerprint[:12]}… != {self.fingerprint[:12]}…); "
                "a resumed grid must use the same regions/repeats/seeds/models"
            )

    # ---------------------------------------------------------------- events
    def log_event(self, kind: str, **fields: Any) -> None:
        """Append one event line (observability only; recovery ignores it)."""
        record = {"t": time.time(), "event": kind, **fields}
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with open(self.run_dir / EVENTS_NAME, "a", encoding="utf-8") as handle:
            handle.write(line)

    def events(self) -> list[dict]:
        """Parsed event log (skipping any torn trailing line)."""
        path = self.run_dir / EVENTS_NAME
        if not path.exists():
            return []
        records = []
        for line in path.read_text().splitlines():
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return records

    # ---------------------------------------------------------------- cells
    def _cell_paths(self, cell_id: str) -> tuple[Path, Path, Path]:
        base = self.run_dir / CELLS_DIR
        return (
            base / f"{cell_id}.npz",
            base / f"{cell_id}.json",
            base / f"{cell_id}.failed.json",
        )

    def save_cell(
        self,
        spec: CellSpec,
        run: "RegionRun",
        attempts: int = 1,
        abandoned: Callable[[], bool] | None = None,
    ) -> None:
        """Atomically checkpoint one completed cell.

        Arrays (labels, pipe lengths, one score vector per model) go into
        the ``.npz``; metrics and the npz checksum into the ``.json``,
        which lands last and marks completion.

        ``abandoned`` (e.g. a timeout :class:`~repro.runs.faults.CancelToken`'s
        ``cancelled``) is re-checked right before each write: a cell body
        the grid has already given up on must not plant a completion
        marker that contradicts the recorded failure — the npz write is
        the slow part of a checkpoint, so the pre-marker check closes most
        of the window a single entry check would leave open.
        """
        npz_path, json_path, failed_path = self._cell_paths(spec.cell_id)
        if abandoned is not None and abandoned():
            raise CellAbandonedError(
                f"cell {spec.cell_id}: abandoned by its grid; checkpoint suppressed"
            )
        arrays: dict[str, np.ndarray] = {
            "labels": run.labels,
            "pipe_lengths": run.pipe_lengths,
        }
        for name, ev in run.evaluations.items():
            arrays[f"scores__{name}"] = ev.scores
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        _atomic_write_bytes(npz_path, buffer.getvalue())
        if abandoned is not None and abandoned():
            npz_path.unlink(missing_ok=True)
            raise CellAbandonedError(
                f"cell {spec.cell_id}: abandoned mid-checkpoint; completion marker withheld"
            )
        record = {
            "format": JOURNAL_FORMAT,
            "cell_id": spec.cell_id,
            "identity": spec.identity(),
            "region": run.region,
            "seed": run.seed,
            "attempts": attempts,
            "npz_sha256": _sha256_file(npz_path),
            "models": [
                {
                    "name": ev.model_name,
                    "auc": ev.auc,
                    "auc_budget_permyriad": ev.auc_budget_permyriad,
                    "budget": ev.budget,
                }
                for ev in run.evaluations.values()
            ],
        }
        _atomic_write_json(json_path, record)
        failed_path.unlink(missing_ok=True)

    def record_failure(self, spec: CellSpec, error: str, error_type: str, attempts: int) -> None:
        """Record a cell's (latest) failure; the cell stays not-done."""
        _, _, failed_path = self._cell_paths(spec.cell_id)
        _atomic_write_json(
            failed_path,
            {
                "cell_id": spec.cell_id,
                "identity": spec.identity(),
                "error_type": error_type,
                "error": error,
                "attempts": attempts,
                "t": time.time(),
            },
        )

    def cell_done(self, cell_id: str) -> bool:
        """Completion check by marker presence only (cheap; no validation)."""
        npz_path, json_path, _ = self._cell_paths(cell_id)
        return json_path.exists() and npz_path.exists()

    def completed_cells(self) -> set[str]:
        """Cell ids with both checkpoint files present (unvalidated)."""
        base = self.run_dir / CELLS_DIR
        return {p.stem for p in base.glob("*.json") if not p.name.endswith(".failed.json")
                and (base / f"{p.stem}.npz").exists()}

    def cell_metrics(self) -> dict[str, dict[str, dict[str, float]]]:
        """Per-cell, per-model scalar metrics from the completion markers.

        Shape ``{cell_id: {model_name: {metric: value}}}``, reading only
        the lightweight ``.json`` records (no array loads, no checksum
        validation) — the metric history the drift tracker compares
        across revisions. Unreadable markers are skipped, matching
        :meth:`failed_cells`.
        """
        out: dict[str, dict[str, dict[str, float]]] = {}
        base = self.run_dir / CELLS_DIR
        for path in sorted(base.glob("*.json")):
            if path.name.endswith(".failed.json"):
                continue
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            models: dict[str, dict[str, float]] = {}
            for entry in record.get("models", []):
                name = entry.get("name")
                if not name:
                    continue
                models[str(name)] = {
                    key: float(value)
                    for key, value in entry.items()
                    if key not in ("name", "budget")
                    and isinstance(value, (int, float))
                }
            out[str(record.get("cell_id", path.stem))] = models
        return out

    def failed_cells(self) -> dict[str, dict]:
        """Latest recorded failure per cell id (cells may later succeed)."""
        out = {}
        for path in (self.run_dir / CELLS_DIR).glob("*.failed.json"):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            out[record.get("cell_id", path.name.removesuffix(".failed.json"))] = record
        return out

    def load_cell(self, spec: CellSpec) -> "RegionRun":
        """Rebuild a cell's :class:`RegionRun` bit-identically from disk.

        Raises :class:`CheckpointCorruptError` on any inconsistency —
        missing files, checksum mismatch, unparsable json, missing arrays —
        so callers can fall back to recomputing the cell.
        """
        from ..eval.experiment import ModelEvaluation, RegionRun

        npz_path, json_path, _ = self._cell_paths(spec.cell_id)
        if not json_path.exists() or not npz_path.exists():
            raise CheckpointCorruptError(f"cell {spec.cell_id}: checkpoint incomplete")
        try:
            record = json.loads(json_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(
                f"cell {spec.cell_id}: unreadable metadata ({exc})"
            ) from exc
        if _sha256_file(npz_path) != record.get("npz_sha256"):
            raise CheckpointCorruptError(
                f"cell {spec.cell_id}: array checkpoint fails its checksum"
            )
        try:
            with np.load(npz_path) as arrays:
                labels = arrays["labels"]
                pipe_lengths = arrays["pipe_lengths"]
                scores = {
                    entry["name"]: arrays[f"scores__{entry['name']}"]
                    for entry in record["models"]
                }
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile) as exc:
            raise CheckpointCorruptError(
                f"cell {spec.cell_id}: array checkpoint unreadable ({exc})"
            ) from exc
        run = RegionRun(
            region=record["region"],
            seed=record["seed"],
            labels=labels,
            pipe_lengths=pipe_lengths,
        )
        for entry in record["models"]:
            run.evaluations[entry["name"]] = ModelEvaluation(
                model_name=entry["name"],
                scores=scores[entry["name"]],
                auc=entry["auc"],
                auc_budget_permyriad=entry["auc_budget_permyriad"],
                budget=entry["budget"],
            )
        return run

    def load_completed(self, specs: Iterable[CellSpec]) -> dict[str, "RegionRun"]:
        """Validated checkpoints for ``specs``; corrupt ones are dropped
        (logged as ``cell_corrupt`` events) so the caller recomputes them."""
        loaded: dict[str, RegionRun] = {}
        for spec in specs:
            if not self.cell_done(spec.cell_id):
                continue
            try:
                loaded[spec.cell_id] = self.load_cell(spec)
            except CheckpointCorruptError as exc:
                self.log_event("cell_corrupt", cell=spec.cell_id, error=str(exc))
        return loaded


def describe_run(run_dir: str | Path) -> dict:
    """Human-oriented summary of a run directory (CLI `--resume` preview)."""
    journal = RunJournal.open(run_dir)
    config = journal.manifest.get("config", {})
    return {
        "run_dir": str(journal.run_dir),
        "fingerprint": journal.fingerprint,
        "regions": config.get("regions"),
        "n_repeats": config.get("n_repeats"),
        "completed": sorted(journal.completed_cells()),
        "failed": sorted(journal.failed_cells()),
        "events": len(journal.events()),
    }
