"""Deterministic fault injection and the soft per-cell timeout guard.

:class:`FaultInjector` is the test hook the fault-tolerance suite uses to
kill, slow down or starve specific experiment cells on purpose: the
injector carries a plan keyed by :attr:`CellSpec.cell_id` and counts its
trips in ``state_dir`` *files*, so the count survives process boundaries —
a cell retried in a fresh process-pool worker still sees how many faults
it has already absorbed. The injector is inert for every cell not named in
its plan, and the production path never constructs one.

:func:`call_with_timeout` is the soft per-cell timeout: the cell body runs
in a daemon thread and the caller gives up waiting after ``timeout``
seconds. "Soft" because an abandoned cell may keep computing in the
background until its process exits — the guard bounds how long the *grid*
waits, not the CPU the straggler burns.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

#: Recognised fault kinds.
FAULT_KINDS = ("raise", "sleep", "no-failures")


class InjectedFault(RuntimeError):
    """The deterministic failure a ``kind="raise"`` fault produces."""


class CellTimeoutError(RuntimeError):
    """A cell exceeded its soft timeout and was abandoned."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what happens and for how many attempts.

    ``kind``:

    * ``"raise"`` — raise :class:`InjectedFault` (simulates a crashed cell);
    * ``"sleep"`` — stall for ``delay`` seconds (simulates a straggler, for
      exercising the soft timeout);
    * ``"no-failures"`` — raise the experiment's
      :class:`~repro.eval.experiment.NoTestFailuresError` (simulates the
      known degenerate-region mode that the reseeded retry handles).

    ``times`` bounds how many attempts the fault affects; after that the
    cell runs clean, which is what lets ``on_error="retry"`` tests converge.
    """

    kind: str = "raise"
    times: int = 1
    delay: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class FaultInjector:
    """File-backed deterministic fault plan for experiment cells.

    Picklable (ships to process-pool workers) and frozen (a plan never
    mutates mid-run). Trip counts live in ``state_dir/<cell_id>.trips``.
    """

    state_dir: str
    plan: dict[str, FaultSpec] = field(default_factory=dict)

    def _count_path(self, cell_id: str) -> Path:
        return Path(self.state_dir) / f"{cell_id}.trips"

    def trips(self, cell_id: str) -> int:
        """How many faults this cell has absorbed so far."""
        path = self._count_path(cell_id)
        try:
            return int(path.read_text())
        except (OSError, ValueError):
            return 0

    def trip(self, cell_id: str) -> None:
        """Apply the planned fault for ``cell_id``, if any charge remains.

        Called by the cell executor at the top of every attempt. A cell is
        only ever executed by one worker at a time, so the read-increment
        on the count file needs no cross-process lock.
        """
        spec = self.plan.get(cell_id)
        if spec is None:
            return
        used = self.trips(cell_id)
        if used >= spec.times:
            return
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)
        self._count_path(cell_id).write_text(str(used + 1))
        if spec.kind == "sleep":
            time.sleep(spec.delay)
            return
        if spec.kind == "no-failures":
            from ..eval.experiment import NoTestFailuresError

            raise NoTestFailuresError(f"{spec.message} (cell {cell_id})")
        raise InjectedFault(f"{spec.message} (cell {cell_id})")

    def reset(self) -> None:
        """Forget every trip count (fresh test scenario, same plan)."""
        for path in Path(self.state_dir).glob("*.trips"):
            path.unlink(missing_ok=True)


class CancelToken:
    """Cooperative cancellation flag shared with an abandoned cell body.

    :func:`call_with_timeout` sets the token *before* raising
    :class:`CellTimeoutError`, so the daemon thread it walks away from can
    see it was abandoned. The guarded body must check :attr:`cancelled`
    before any externally visible effect — in particular the worker-side
    journal checkpoint: without the check, a timed-out cell that
    eventually finishes in the background would checkpoint itself as
    *completed* after the grid already recorded it as *failed*, and a
    later resume would silently pick up the contradictory cell.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


def call_with_timeout(
    fn: Callable[[], Any], timeout: float | None, cancel: CancelToken | None = None
) -> Any:
    """Run ``fn()``, abandoning it after ``timeout`` seconds (soft).

    Without a timeout this is a plain call. With one, ``fn`` runs in a
    daemon thread; if it has not finished in time, ``cancel`` (when given)
    is set, then :class:`CellTimeoutError` is raised and the thread is
    left to die with the process. The abandoned body keeps burning CPU —
    the guard bounds how long the *caller* waits — but by observing the
    token it must not produce side effects after abandonment. Exceptions
    from ``fn`` propagate unchanged.
    """
    if timeout is None:
        return fn()
    if timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    outcome: dict[str, Any] = {}
    done = threading.Event()

    def _target() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 — relayed to the caller below
            outcome["error"] = exc
        finally:
            done.set()

    thread = threading.Thread(target=_target, daemon=True, name="cell-timeout-guard")
    thread.start()
    if not done.wait(timeout):
        if cancel is not None:
            cancel.cancel()
        raise CellTimeoutError(f"cell exceeded its soft timeout of {timeout:.3g}s")
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]
