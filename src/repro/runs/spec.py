"""Cell identity: the frozen spec of one (region, repeat) experiment cell.

:class:`CellSpec` replaces the positional 8-tuple that
:func:`repro.eval.experiment.run_comparison` used to ship to its workers.
It is the *on-disk identity* of a cell: :class:`~repro.runs.journal.RunJournal`
keys checkpoints by :attr:`CellSpec.cell_id` and stores
:meth:`CellSpec.identity` alongside them, so a resumed run can prove it is
re-assembling the same grid.

The legacy tuple layout ``(region, repeat, seed, scale, budget, fast,
feature_config, models_factory)`` is still accepted everywhere a spec is —
:meth:`CellSpec.from_task` is the shim that keeps old pickled call sites
working.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Callable

from ..features.builder import FeatureConfig

#: Deterministic offset for the reseeded-region retry fallback (the known
#: "no test-year failures" failure mode): attempt ``a`` on a cell with base
#: seed ``s`` retries with ``(s or 0) + RESEED_OFFSET + a``.
RESEED_OFFSET = 50021


@dataclass(frozen=True)
class CellSpec:
    """Everything one independent (region, repeat) cell needs to run.

    A cell regenerates/fetches its region from the seed it carries and fits
    a fresh model line-up, so two equal specs produce bit-identical
    :class:`~repro.eval.experiment.RegionRun` results on any executor.
    """

    region: str
    repeat: int
    seed: int | None = None
    scale: float | None = None
    budget: float = 0.01
    fast: bool = True
    feature_config: FeatureConfig | None = None
    models_factory: Callable[[int], list] | None = None

    @property
    def cell_id(self) -> str:
        """Stable on-disk identity, e.g. ``"A-r003"`` (region A, repeat 3)."""
        return f"{self.region}-r{self.repeat:03d}"

    def identity(self) -> dict:
        """JSON-able identity record for the journal.

        The models factory is a callable and cannot round-trip through
        JSON; it is represented by its qualified name (``None`` for the
        default line-up), which is enough to detect a changed line-up on
        resume.
        """
        factory = self.models_factory
        return {
            "region": self.region,
            "repeat": self.repeat,
            "seed": self.seed,
            "scale": self.scale,
            "budget": self.budget,
            "fast": self.fast,
            "feature_config": (
                asdict(self.feature_config) if self.feature_config is not None else None
            ),
            "models_factory": (
                f"{getattr(factory, '__module__', '?')}.{getattr(factory, '__qualname__', repr(factory))}"
                if factory is not None
                else None
            ),
        }

    def with_seed(self, seed: int | None) -> "CellSpec":
        """Copy of this spec pointing at a differently seeded region."""
        return replace(self, seed=seed)

    def reseeded(self, attempt: int) -> "CellSpec":
        """The deterministic retry spec for the no-test-failures fallback."""
        return self.with_seed((self.seed or 0) + RESEED_OFFSET + attempt)

    @classmethod
    def from_task(cls, task: "CellSpec | tuple") -> "CellSpec":
        """Accept a spec or the legacy positional 8-tuple (pickled callers)."""
        if isinstance(task, CellSpec):
            return task
        region, repeat, seed, scale, budget, fast, feature_config, models_factory = task
        return cls(
            region=region,
            repeat=repeat,
            seed=seed,
            scale=scale,
            budget=budget,
            fast=fast,
            feature_config=feature_config,
            models_factory=models_factory,
        )
