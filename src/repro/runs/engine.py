"""Fault-isolating cell execution: policy, outcome envelopes, retries.

:func:`execute_cell` is the unit every journalled grid maps over its
executor. It never lets a cell's exception escape — each attempt is
wrapped, timed, optionally guarded by the soft timeout, and the result
(success or final failure) comes back as a :class:`CellOutcome` envelope.
The *caller* decides what a failure means (``on_error="raise"`` re-raises
at the grid level; ``"skip"`` drops the cell; ``"retry"`` already happened
here), so a process-pool worker never dies mid-grid and one bad cell can
no longer discard its siblings' work.

Retry semantics (``on_error="retry"``):

* transient faults (anything but the degenerate-region case) retry the
  *same* spec — a crashed cell reruns bit-identically;
* :class:`~repro.eval.experiment.NoTestFailuresError` — the known "this
  generated region has no test-year failures" mode — retries a
  deterministically *reseeded* spec (:meth:`CellSpec.reseeded`), because
  rerunning the same degenerate seed can only fail again.

Completed cells are checkpointed from inside the worker (not after the
grid joins), which is what makes a killed run resumable: everything that
finished before the kill is already on disk. The checkpoint runs inside
the timeout-guarded attempt and is suppressed once the attempt's
:class:`~repro.runs.faults.CancelToken` is cancelled, so a timed-out cell
that finishes late in its abandoned daemon thread can no longer record
itself as completed after the grid marked it failed.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .. import telemetry
from .faults import CancelToken, FaultInjector, call_with_timeout
from .journal import RunJournal
from .spec import CellSpec

#: Per-process memo of opened journals. Persistent pool workers execute
#: many cells against the same run directory; the manifest is immutable
#: once created, so re-reading and re-validating it on every attempt is
#: pure wasted I/O. Bounded: a process rarely touches more than a couple
#: of run directories.
_MAX_OPEN_JOURNALS = 16
_journal_lock = threading.Lock()
_open_journals: dict[str, RunJournal] = {}


def _open_journal(run_dir: str) -> RunJournal:
    """Memoized ``RunJournal.open`` (safe: journals are stateless appenders)."""
    key = str(run_dir)
    with _journal_lock:
        journal = _open_journals.get(key)
        if journal is not None:
            return journal
    journal = RunJournal.open(run_dir)
    with _journal_lock:
        while len(_open_journals) >= _MAX_OPEN_JOURNALS:
            _open_journals.pop(next(iter(_open_journals)))
        _open_journals[key] = journal
    return journal

if TYPE_CHECKING:  # pragma: no cover
    from ..eval.experiment import RegionRun

#: Grid-level failure handling modes.
ON_ERROR_MODES = ("raise", "skip", "retry")


@dataclass(frozen=True)
class RunPolicy:
    """How a grid treats failing cells. Frozen and picklable (ships to workers)."""

    on_error: str = "raise"
    retries: int = 2  # extra attempts per cell when on_error == "retry"
    cell_timeout: float | None = None  # soft, seconds
    fault_injector: FaultInjector | None = None  # tests only

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive, got {self.cell_timeout}")

    @property
    def attempts(self) -> int:
        """Total attempts a cell gets under this policy."""
        return 1 + (self.retries if self.on_error == "retry" else 0)


@dataclass
class CellOutcome:
    """Envelope for one cell's execution: success, failure, or checkpoint hit."""

    spec: CellSpec  # the spec that actually ran (reseeded retries differ from the grid's)
    status: str  # "ok" | "failed"
    run: "RegionRun | None" = None
    error: str | None = None  # formatted traceback of the final attempt
    error_type: str | None = None
    attempts: int = 1
    duration_s: float = 0.0
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def restored(cls, spec: CellSpec, run: "RegionRun") -> "CellOutcome":
        return cls(spec=spec, status="ok", run=run, attempts=0, from_checkpoint=True)


def execute_cell(
    task: tuple[CellSpec, Callable[[CellSpec], "RegionRun"], str | None, RunPolicy],
) -> CellOutcome:
    """Run one cell under a policy; never raises for cell-level failures.

    ``task`` is a picklable tuple ``(spec, compute, run_dir, policy)`` —
    ``compute`` must be a module-level function for process pools. With a
    ``run_dir`` the worker journals lifecycle events and checkpoints the
    finished cell atomically before returning.
    """
    spec, compute, run_dir, policy = task
    journal = _open_journal(run_dir) if run_dir else None
    cell_id = spec.cell_id
    from ..eval.experiment import NoTestFailuresError

    if journal is not None and journal.cell_done(cell_id):
        # Belt and braces: the parent already filters completed cells, but a
        # concurrent/restarted producer may have finished this one meanwhile.
        try:
            with telemetry.span("cell.restore", cell=cell_id):
                restored = journal.load_cell(spec)
            telemetry.count("cell.restored")
            return CellOutcome.restored(spec, restored)
        except Exception:  # noqa: BLE001 — fall through to recompute
            pass

    current = spec
    start = time.perf_counter()
    last_error: BaseException | None = None
    attempt = 0
    for attempt in range(1, policy.attempts + 1):
        if journal is not None:
            journal.log_event(
                "cell_started", cell=cell_id, attempt=attempt, seed=current.seed
            )
        # Fresh token per attempt: timing out attempt N must not poison a
        # clean attempt N+1 of the same cell.
        token = CancelToken()

        def _attempt(
            spec_now: CellSpec = current,
            attempt_now: int = attempt,
            token: CancelToken = token,
        ) -> "RegionRun":
            # The injector trips inside the guarded call so an injected
            # stall ("sleep" faults) is subject to the soft timeout too.
            if policy.fault_injector is not None:
                policy.fault_injector.trip(cell_id)
            with telemetry.span("cell.compute", cell=cell_id, attempt=attempt_now):
                run = compute(spec_now)
            # Worker-side checkpoint (what makes a killed run resumable) —
            # but only while the grid is still waiting on this attempt. An
            # abandoned (timed-out) body that finishes late must not plant
            # a completion marker over the failure the grid recorded;
            # ``save_cell`` re-checks the token before the marker lands.
            if journal is not None and not token.cancelled:
                with telemetry.span("cell.checkpoint", cell=cell_id):
                    journal.save_cell(
                        spec_now,
                        run,
                        attempts=attempt_now,
                        abandoned=lambda: token.cancelled,
                    )
            return run

        try:
            with telemetry.span("cell.attempt", cell=cell_id, attempt=attempt):
                run = call_with_timeout(_attempt, policy.cell_timeout, cancel=token)
        except Exception as exc:  # noqa: BLE001 — envelope, never a bare raise
            last_error = exc
            telemetry.count("cell.failures")
            if journal is not None:
                journal.log_event(
                    "cell_failed",
                    cell=cell_id,
                    attempt=attempt,
                    error_type=type(exc).__name__,
                    error=str(exc),
                )
            if attempt < policy.attempts:
                if isinstance(exc, NoTestFailuresError):
                    current = spec.reseeded(attempt)
                telemetry.count("cell.retries")
                if journal is not None:
                    journal.log_event(
                        "cell_retried", cell=cell_id, next_seed=current.seed
                    )
                continue
            break
        duration = time.perf_counter() - start
        if journal is not None:
            journal.log_event(
                "cell_completed",
                cell=cell_id,
                attempt=attempt,
                seed=current.seed,
                duration_s=duration,
                models=list(run.evaluations),
                # Headline metrics ride along so the drift tracker and
                # `repro doctor` can read the run's metric history from
                # the event log alone (checkpoints may be pruned later).
                metrics={
                    name: {
                        "auc": ev.auc,
                        "auc_budget_permyriad": ev.auc_budget_permyriad,
                    }
                    for name, ev in run.evaluations.items()
                },
            )
        return CellOutcome(
            spec=current, status="ok", run=run, attempts=attempt, duration_s=duration
        )

    error_text = "".join(
        traceback.format_exception(type(last_error), last_error, last_error.__traceback__)
    )
    outcome = CellOutcome(
        spec=current,
        status="failed",
        error=error_text,
        error_type=type(last_error).__name__,
        attempts=attempt,
        duration_s=time.perf_counter() - start,
    )
    if journal is not None:
        journal.record_failure(
            current, error=error_text, error_type=outcome.error_type, attempts=attempt
        )
    return outcome


class CellExecutionError(RuntimeError):
    """Raised at grid level (``on_error="raise"``) for a cell's final failure."""

    def __init__(self, outcome: CellOutcome):
        self.outcome = outcome
        super().__init__(
            f"cell {outcome.spec.cell_id} failed after {outcome.attempts} attempt(s) "
            f"[{outcome.error_type}]:\n{outcome.error}"
        )
