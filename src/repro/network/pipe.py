"""Domain model for water pipes and pipe segments.

The paper's asset model: each *pipe* (an asset with one ID, one material,
one laid date, one diameter) is a set of *pipe segments* connected in
series; failure records are matched to segments. Critical water mains
(CWM) are pipes with diameter >= 300 mm, reticulation water mains (RWM)
are smaller.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .geometry import Point, distance, midpoint

CWM_DIAMETER_MM = 300.0


class PipeClass(enum.Enum):
    """Functional class of a water main."""

    CWM = "critical_water_main"
    RWM = "reticulation_water_main"


class Material(enum.Enum):
    """Pipe wall material (drinking water and waste water)."""

    CICL = "cast_iron_cement_lined"
    CI = "cast_iron"
    DICL = "ductile_iron_cement_lined"
    AC = "asbestos_cement"
    PVC = "polyvinyl_chloride"
    PE = "polyethylene"
    STEEL = "steel"
    VC = "vitrified_clay"
    CONC = "concrete"


class Coating(enum.Enum):
    """Protective coating applied to the pipe."""

    NONE = "none"
    POLYETHYLENE_SLEEVE = "polyethylene_sleeve"
    TAR = "tar"
    EPOXY = "epoxy"
    ZINC = "zinc"


#: Materials considered ferrous (subject to pitting corrosion).
FERROUS_MATERIALS = frozenset({Material.CICL, Material.CI, Material.DICL, Material.STEEL})


@dataclass(frozen=True)
class PipeSegment:
    """One straight segment of a pipe, the unit failure events attach to.

    Attributes
    ----------
    segment_id:
        Unique ID within a network (``"<pipe_id>/s<k>"`` by convention).
    pipe_id:
        Owning pipe's ID.
    start, end:
        Segment endpoints in metres (projected plane).
    """

    segment_id: str
    pipe_id: str
    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Segment length in metres."""
        return distance(self.start, self.end)

    @property
    def midpoint(self) -> Point:
        """Segment midpoint — used to sample environmental layers."""
        return midpoint(self.start, self.end)


@dataclass
class Pipe:
    """A water pipe asset: attributes shared by its serially connected segments.

    Attributes mirror Table 18.2 of the evaluation protocol: protective
    coating, diameter, length (derived from segments), laid date and
    material.
    """

    pipe_id: str
    material: Material
    coating: Coating
    diameter_mm: float
    laid_year: int
    segments: list[PipeSegment] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.diameter_mm <= 0:
            raise ValueError(f"pipe {self.pipe_id}: diameter must be positive")
        for seg in self.segments:
            if seg.pipe_id != self.pipe_id:
                raise ValueError(
                    f"segment {seg.segment_id} belongs to {seg.pipe_id}, not {self.pipe_id}"
                )

    @property
    def length(self) -> float:
        """Total pipe length in metres (sum over segments)."""
        return sum(seg.length for seg in self.segments)

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def pipe_class(self) -> PipeClass:
        """CWM when the diameter is at least 300 mm, else RWM."""
        return PipeClass.CWM if self.diameter_mm >= CWM_DIAMETER_MM else PipeClass.RWM

    def age_in(self, year: int) -> float:
        """Pipe age (years) during calendar ``year``; clipped below at 0."""
        return max(0.0, float(year - self.laid_year))

    def segment_index(self, segment_id: str) -> int:
        """Position of ``segment_id`` within this pipe's segment list."""
        for i, seg in enumerate(self.segments):
            if seg.segment_id == segment_id:
                return i
        raise KeyError(f"pipe {self.pipe_id} has no segment {segment_id}")
