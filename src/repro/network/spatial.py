"""Uniform-grid spatial index for nearest-neighbour point queries.

Used to compute each pipe segment's distance to its closest traffic
intersection (a Table 18.2 feature) without O(n·m) brute force. The index
bins points into square cells and answers nearest-point queries by
searching outward ring by ring, which is exact: the search stops only once
the best distance found is provably shorter than anything in unexplored
rings.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .geometry import Point


class GridIndex:
    """Exact nearest-neighbour index over a static 2-D point set."""

    def __init__(self, points: Sequence[Point], cell_size: float | None = None):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2 or len(pts) == 0:
            raise ValueError("GridIndex needs a non-empty (n, 2) point set")
        self._points = pts
        self._min = pts.min(axis=0)
        extent = float(max(pts.max(axis=0) - self._min))
        if cell_size is None:
            # Aim for O(1) points per cell on average.
            cell_size = max(extent / max(1.0, math.sqrt(len(pts))), 1e-9)
        self._cell = float(cell_size)
        self._bins: dict[tuple[int, int], list[int]] = {}
        for i, (x, y) in enumerate(pts):
            self._bins.setdefault(self._key(x, y), []).append(i)

    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (int((x - self._min[0]) // self._cell), int((y - self._min[1]) // self._cell))

    def __len__(self) -> int:
        return len(self._points)

    def nearest(self, p: Point) -> tuple[int, float]:
        """Index and distance of the point closest to ``p``.

        Exact: expands the ring radius until the best candidate distance
        is at most ``(ring - 1) * cell`` — the minimum possible distance to
        any point in a not-yet-visited ring.
        """
        px, py = float(p[0]), float(p[1])
        ck = self._key(px, py)
        best_idx, best_dist = -1, math.inf
        ring = 0
        max_ring = self._max_ring(px, py)
        if max_ring > 4096:
            # Degenerate geometry (e.g. all points identical, query far
            # outside): ring search would spin; brute force is exact.
            return self._brute(px, py)
        while ring <= max_ring:
            for key in self._ring_keys(ck, ring):
                for idx in self._bins.get(key, ()):  # empty tuple default: no allocation
                    qx, qy = self._points[idx]
                    d = math.hypot(px - qx, py - qy)
                    if d < best_dist:
                        best_idx, best_dist = idx, d
            if best_idx >= 0 and best_dist <= (ring) * self._cell:
                break
            ring += 1
        if best_idx < 0:
            return self._brute(px, py)
        return best_idx, best_dist

    def _brute(self, px: float, py: float) -> tuple[int, float]:
        d = np.hypot(self._points[:, 0] - px, self._points[:, 1] - py)
        idx = int(np.argmin(d))
        return idx, float(d[idx])

    def nearest_distance(self, p: Point) -> float:
        """Distance from ``p`` to the closest indexed point."""
        return self.nearest(p)[1]

    def nearest_distances(self, points: Sequence[Point]) -> np.ndarray:
        """Vector of nearest distances for many query points."""
        return np.array([self.nearest(p)[1] for p in points], dtype=float)

    def _max_ring(self, px: float, py: float) -> int:
        """Rings needed to cover the whole cloud from the query point."""
        lo = self._min
        hi = self._points.max(axis=0)
        reach = max(abs(px - lo[0]), abs(px - hi[0]), abs(py - lo[1]), abs(py - hi[1]))
        return int(reach / self._cell) + 2

    @staticmethod
    def _ring_keys(center: tuple[int, int], ring: int) -> list[tuple[int, int]]:
        cx, cy = center
        if ring == 0:
            return [center]
        keys = []
        for dx in range(-ring, ring + 1):
            keys.append((cx + dx, cy - ring))
            keys.append((cx + dx, cy + ring))
        for dy in range(-ring + 1, ring):
            keys.append((cx - ring, cy + dy))
            keys.append((cx + ring, cy + dy))
        return keys
