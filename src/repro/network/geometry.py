"""Planar geometry primitives for pipe networks.

Pipes are polylines in a projected (metre-based) plane. Everything here is
pure computation on coordinates: lengths, interpolation, point-to-segment
distances, and polyline subdivision. The functions accept plain ``(x, y)``
tuples or ``numpy`` arrays of shape ``(n, 2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

Point = tuple[float, float]


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def polyline_length(points: Sequence[Point]) -> float:
    """Total length of the polyline through ``points`` (in order).

    A polyline with fewer than two points has length zero.
    """
    if len(points) < 2:
        return 0.0
    arr = np.asarray(points, dtype=float)
    return float(np.sum(np.hypot(*(arr[1:] - arr[:-1]).T)))


def interpolate(a: Point, b: Point, t: float) -> Point:
    """Point at parameter ``t`` (0 → ``a``, 1 → ``b``) along segment ``a``–``b``."""
    return (a[0] + (b[0] - a[0]) * t, a[1] + (b[1] - a[1]) * t)


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of segment ``a``–``b``."""
    return interpolate(a, b, 0.5)


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Shortest distance from point ``p`` to the closed segment ``a``–``b``."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = min(1.0, max(0.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)


def split_segment(a: Point, b: Point, n_parts: int) -> list[tuple[Point, Point]]:
    """Split segment ``a``–``b`` into ``n_parts`` equal-length sub-segments."""
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    cuts = [interpolate(a, b, i / n_parts) for i in range(n_parts + 1)]
    return list(zip(cuts[:-1], cuts[1:]))


def resample_polyline(points: Sequence[Point], n_parts: int) -> list[tuple[Point, Point]]:
    """Split a polyline into ``n_parts`` sub-segments of equal arc length.

    The returned sub-segments are straight chords between resampled points,
    so their summed length can be marginally below the original polyline
    length when the polyline bends; for pipe modelling this is negligible.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if len(points) < 2:
        raise ValueError("polyline needs at least two points")
    arr = np.asarray(points, dtype=float)
    seg_lens = np.hypot(*(arr[1:] - arr[:-1]).T)
    cum = np.concatenate([[0.0], np.cumsum(seg_lens)])
    total = cum[-1]
    if total == 0.0:
        return [(tuple(arr[0]), tuple(arr[0]))] * n_parts
    targets = np.linspace(0.0, total, n_parts + 1)
    resampled: list[Point] = []
    for t in targets:
        idx = int(np.searchsorted(cum, t, side="right") - 1)
        idx = min(idx, len(seg_lens) - 1)
        seg_len = seg_lens[idx]
        frac = 0.0 if seg_len == 0.0 else (t - cum[idx]) / seg_len
        resampled.append(interpolate(tuple(arr[idx]), tuple(arr[idx + 1]), frac))
    return list(zip(resampled[:-1], resampled[1:]))


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box ``[min_x, max_x] × [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, p: Point) -> bool:
        """True when ``p`` lies inside or on the boundary."""
        return self.min_x <= p[0] <= self.max_x and self.min_y <= p[1] <= self.max_y

    @staticmethod
    def around(points: Iterable[Point], margin: float = 0.0) -> "BoundingBox":
        """Smallest box containing ``points``, expanded by ``margin`` on all sides."""
        arr = np.asarray(list(points), dtype=float)
        if arr.size == 0:
            raise ValueError("cannot bound an empty point set")
        return BoundingBox(
            float(arr[:, 0].min()) - margin,
            float(arr[:, 1].min()) - margin,
            float(arr[:, 0].max()) + margin,
            float(arr[:, 1].max()) + margin,
        )
