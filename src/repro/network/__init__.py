"""Pipe network substrate: geometry, asset model, network container, spatial index."""

from .geometry import (
    BoundingBox,
    Point,
    distance,
    interpolate,
    midpoint,
    point_segment_distance,
    polyline_length,
    resample_polyline,
    split_segment,
)
from .network import PipeNetwork, summarise
from .pipe import (
    CWM_DIAMETER_MM,
    FERROUS_MATERIALS,
    Coating,
    Material,
    Pipe,
    PipeClass,
    PipeSegment,
)
from .spatial import GridIndex

__all__ = [
    "BoundingBox",
    "Point",
    "distance",
    "interpolate",
    "midpoint",
    "point_segment_distance",
    "polyline_length",
    "resample_polyline",
    "split_segment",
    "PipeNetwork",
    "summarise",
    "CWM_DIAMETER_MM",
    "FERROUS_MATERIALS",
    "Coating",
    "Material",
    "Pipe",
    "PipeClass",
    "PipeSegment",
    "GridIndex",
]
