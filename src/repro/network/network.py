"""Container for a regional pipe network.

`PipeNetwork` owns the pipes of one region, provides id-based lookup for
pipes and segments, class filters (CWM / RWM), aggregate statistics, and a
`networkx` view of the physical connectivity (segments as edges between
their endpoints) for topological analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import networkx as nx

from .geometry import BoundingBox, Point
from .pipe import Pipe, PipeClass, PipeSegment


@dataclass
class PipeNetwork:
    """All pipes of one region, with id indexes kept consistent on insert."""

    region: str
    _pipes: dict[str, Pipe] = field(default_factory=dict)
    _segments: dict[str, PipeSegment] = field(default_factory=dict)

    def add_pipe(self, pipe: Pipe) -> None:
        """Insert ``pipe`` and index its segments; IDs must be unique."""
        if pipe.pipe_id in self._pipes:
            raise ValueError(f"duplicate pipe id {pipe.pipe_id!r}")
        for seg in pipe.segments:
            if seg.segment_id in self._segments:
                raise ValueError(f"duplicate segment id {seg.segment_id!r}")
        self._pipes[pipe.pipe_id] = pipe
        for seg in pipe.segments:
            self._segments[seg.segment_id] = seg

    # -- lookup ---------------------------------------------------------

    def pipe(self, pipe_id: str) -> Pipe:
        """Pipe by ID; raises ``KeyError`` when absent."""
        return self._pipes[pipe_id]

    def segment(self, segment_id: str) -> PipeSegment:
        """Segment by ID; raises ``KeyError`` when absent."""
        return self._segments[segment_id]

    def __contains__(self, pipe_id: str) -> bool:
        return pipe_id in self._pipes

    def __len__(self) -> int:
        return len(self._pipes)

    # -- iteration & filters ---------------------------------------------

    def pipes(self, pipe_class: PipeClass | None = None) -> list[Pipe]:
        """All pipes, optionally restricted to one class, in insertion order."""
        if pipe_class is None:
            return list(self._pipes.values())
        return [p for p in self._pipes.values() if p.pipe_class is pipe_class]

    def segments(self, pipe_class: PipeClass | None = None) -> list[PipeSegment]:
        """All segments (optionally of one pipe class), grouped by pipe."""
        if pipe_class is None:
            return list(self._segments.values())
        return [s for p in self.pipes(pipe_class) for s in p.segments]

    def iter_pipes(self) -> Iterator[Pipe]:
        return iter(self._pipes.values())

    def select(self, predicate: Callable[[Pipe], bool]) -> list[Pipe]:
        """Pipes satisfying ``predicate``."""
        return [p for p in self._pipes.values() if predicate(p)]

    # -- aggregates -------------------------------------------------------

    @property
    def n_pipes(self) -> int:
        return len(self._pipes)

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    def total_length(self, pipe_class: PipeClass | None = None) -> float:
        """Summed pipe length in metres."""
        return sum(p.length for p in self.pipes(pipe_class))

    def laid_year_range(self, pipe_class: PipeClass | None = None) -> tuple[int, int]:
        """(earliest, latest) laid year over the selected pipes."""
        years = [p.laid_year for p in self.pipes(pipe_class)]
        if not years:
            raise ValueError("network has no pipes of the requested class")
        return min(years), max(years)

    def bounding_box(self, margin: float = 0.0) -> BoundingBox:
        """Bounding box of all segment endpoints."""
        points: list[Point] = []
        for seg in self._segments.values():
            points.append(seg.start)
            points.append(seg.end)
        return BoundingBox.around(points, margin=margin)

    # -- graph view -------------------------------------------------------

    def to_graph(self, precision: int = 1) -> nx.Graph:
        """Physical connectivity graph.

        Nodes are segment endpoints rounded to ``precision`` decimals
        (metres); edges carry ``segment_id``, ``pipe_id`` and ``length``.
        Junctions shared by several pipes collapse to one node, so the
        graph reflects hydraulic adjacency well enough for neighbourhood
        feature extraction.
        """
        graph = nx.Graph()
        for seg in self._segments.values():
            u = (round(seg.start[0], precision), round(seg.start[1], precision))
            v = (round(seg.end[0], precision), round(seg.end[1], precision))
            graph.add_edge(
                u, v, segment_id=seg.segment_id, pipe_id=seg.pipe_id, length=seg.length
            )
        return graph

    def merge(self, other: "PipeNetwork") -> "PipeNetwork":
        """New network containing this network's pipes plus ``other``'s."""
        merged = PipeNetwork(region=f"{self.region}+{other.region}")
        for pipe in self.iter_pipes():
            merged.add_pipe(pipe)
        for pipe in other.iter_pipes():
            merged.add_pipe(pipe)
        return merged


def summarise(networks: Iterable[PipeNetwork]) -> list[dict[str, object]]:
    """Per-region summary rows (pipe counts, lengths, laid-year ranges)."""
    rows: list[dict[str, object]] = []
    for net in networks:
        lo, hi = net.laid_year_range()
        rows.append(
            {
                "region": net.region,
                "n_pipes": net.n_pipes,
                "n_cwm": len(net.pipes(PipeClass.CWM)),
                "n_segments": net.n_segments,
                "total_length_km": net.total_length() / 1000.0,
                "laid_years": (lo, hi),
            }
        )
    return rows
