"""Risk maps (Fig. 18.9): colour-banded network drawings as SVG.

Fits DPMHBP on a region's critical water mains, bands pipes by predicted
risk percentile (red = top 10%), overlays the test-year failures as stars,
and writes a standalone SVG you can open in any browser.

Run:
    python examples/risk_map_export.py [--region C] [--out riskmap.svg]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import DPMHBPModel, build_model_data, load_region
from repro.eval.riskmap import RiskMap
from repro.network.pipe import PipeClass


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--region", default="A", choices=["A", "B", "C"])
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()
    out = args.out or Path(f"riskmap_region_{args.region}.svg")

    dataset = load_region(args.region, scale=args.scale).subset(PipeClass.CWM)
    data = build_model_data(dataset)
    print(f"Scoring {data.n_pipes} critical water mains in region {args.region} ...")
    scores = DPMHBPModel(n_sweeps=40, burn_in=15, seed=0).fit_predict(data)

    risk_map = RiskMap(dataset=dataset, scores=scores)
    path = risk_map.save_svg(out, width=900)
    print(f"Wrote {path} ({path.stat().st_size / 1024:.0f} KiB)")

    n_failures = len(risk_map.test_failure_points())
    if n_failures:
        rate = risk_map.top_band_hit_rate()
        print(
            f"{n_failures} failures occurred in {dataset.test_year}; "
            f"{100 * rate:.0f}% of the failing pipes sit in the red top-10% band"
        )
        print("(random prioritisation would put ~10% there)")
    else:
        print("No test-year failures at this scale; the map still shows the banding.")


if __name__ == "__main__":
    main()
