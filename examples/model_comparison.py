"""Model comparison: the paper's Table 18.3 protocol on one region.

Fits every compared method — DPMHBP, HBP (best fixed grouping), Cox
proportional hazards, SVM ranking, Weibull NHPP, and the AUC-optimised
ranker — on one region's critical water mains and prints the AUC table
plus a detection-curve readout.

Run:
    python examples/model_comparison.py [--region B] [--scale 0.2]
"""

from __future__ import annotations

import argparse
import time

from repro import default_models, evaluate_models, prepare_region_data
from repro.eval.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--region", default="A", choices=["A", "B", "C"])
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()

    data = prepare_region_data(args.region, scale=args.scale)
    print(
        f"Region {args.region}: {data.n_pipes} CWMs, "
        f"{int(data.pipe_fail_train.sum())} training failure-years, "
        f"{int(data.pipe_fail_test.sum())} test-year failures"
    )

    t0 = time.time()
    run = evaluate_models(data, default_models(seed=0, fast=True), region=args.region)
    print(f"Fitted all {len(run.evaluations)} models in {time.time() - t0:.1f}s\n")

    rows = []
    for name, ev in sorted(run.evaluations.items(), key=lambda kv: -kv[1].auc):
        curve = ev.curve(run.labels)
        rows.append(
            [
                name,
                f"{100 * ev.auc:.2f}%",
                f"{ev.auc_budget_permyriad:.2f}",
                f"{100 * curve.detected_at(0.10):.0f}%",
                f"{100 * curve.detected_at(0.20):.0f}%",
            ]
        )
    print(
        format_table(
            ["Model", "AUC(100%)", "AUC(1%) [per-10k]", "detect@10%", "detect@20%"],
            rows,
        )
    )
    print("\n(best viewed against the paper's Table 18.3 — the *ordering* is the result)")


if __name__ == "__main__":
    main()
