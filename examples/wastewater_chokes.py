"""Waste-water blockages: the domain-knowledge features at work.

Regenerates the chapter's Figs 18.5/18.6 relationships — choke rate vs
tree canopy coverage and vs soil moisture — on the synthetic sewer
network, then shows what those expert-suggested features buy a predictive
model: the same Weibull NHPP fitted with and without the vegetation
features.

Run:
    python examples/wastewater_chokes.py [--scale 0.15]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import empirical_auc
from repro.core.survival_models import WeibullModel
from repro.data.wastewater import load_wastewater_region
from repro.eval.reporting import binned_rate_table
from repro.features.builder import FeatureConfig, build_model_data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--region", default="A", choices=["A", "B", "C"])
    parser.add_argument("--scale", type=float, default=0.15)
    args = parser.parse_args()

    ds = load_wastewater_region(args.region, scale=args.scale)
    print(
        f"Sewer network {ds.spec.name}: {ds.network.n_pipes} pipes, "
        f"{len(ds.failures)} chokes over {len(ds.years)} years"
    )

    segments = ds.network.segments()
    midpoints = [s.midpoint for s in segments]
    fails = ds.segment_failure_matrix().sum(axis=1).astype(float)
    exposure = np.asarray([s.length for s in segments]) * len(ds.years)

    print("\n-- Fig 18.5: choke rate vs tree canopy coverage --")
    cover = ds.environment.canopy.coverage_at(midpoints)
    table, _, rates_c = binned_rate_table(cover, fails, exposure, n_bins=6, value_name="canopy")
    print(table)
    print(f"top-bin rate is {rates_c[-1] / max(rates_c[0], 1e-12):.1f}x the bottom bin")

    print("\n-- Fig 18.6: choke rate vs soil moisture --")
    wet = ds.environment.moisture.moisture_at(midpoints)
    table, _, rates_m = binned_rate_table(wet, fails, exposure, n_bins=6, value_name="moisture")
    print(table)
    print(f"top-bin rate is {rates_m[-1] / max(rates_m[0], 1e-12):.1f}x the bottom bin")

    print("\n-- What the expert features buy a model --")
    with_veg = build_model_data(ds, FeatureConfig(include_vegetation=True))
    without = build_model_data(ds, FeatureConfig(include_vegetation=False))
    labels = with_veg.pipe_fail_test
    if labels.sum() == 0:
        print("(no test-year chokes at this scale — rerun with a larger --scale)")
        return
    auc_with = empirical_auc(WeibullModel().fit_predict(with_veg), labels)
    auc_without = empirical_auc(WeibullModel().fit_predict(without), labels)
    print(f"Weibull NHPP without canopy/moisture: AUC = {100 * auc_without:.1f}%")
    print(f"Weibull NHPP with    canopy/moisture: AUC = {100 * auc_with:.1f}%")


if __name__ == "__main__":
    main()
