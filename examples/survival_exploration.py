"""Survival-analysis exploration: what domain experts do before modelling.

Runs the classical exploratory toolkit on a synthetic region — Kaplan–Meier
survival by material, a log-rank test of whether two materials really fail
differently (the statistical backing for grouping schemes), the
Nelson–Aalen cumulative hazard (the quantity the beta process priors), and
the no-training physical condition model as a reference point.

Run:
    python examples/survival_exploration.py [--scale 0.15]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import PhysicalConditionModel, empirical_auc, prepare_region_data
from repro.core.survival_models import _cox_arrays
from repro.survival import kaplan_meier, logrank_test, nelson_aalen


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--region", default="A", choices=["A", "B", "C"])
    parser.add_argument("--scale", type=float, default=0.15)
    args = parser.parse_args()

    data = prepare_region_data(args.region, scale=args.scale)
    entry, exit_age, event = _cox_arrays(data)
    materials = np.asarray(data.pipe_material)
    print(f"Region {args.region}: {data.n_pipes} CWMs, {int(event.sum())} observed failures\n")

    print("-- Kaplan-Meier survival at age 60/80, by material --")
    for mat in sorted(set(materials)):
        mask = materials == mat
        if event[mask].sum() < 3:
            continue
        km = kaplan_meier(exit_age[mask], event[mask], entry_time=entry[mask])
        s60, s80 = km.at([60.0, 80.0])
        print(f"  {mat:<6} n={int(mask.sum()):4d}  S(60)={s60:.3f}  S(80)={s80:.3f}")

    print("\n-- Log-rank test: do two biggest material groups differ? --")
    counts = {m: (materials == m).sum() for m in set(materials)}
    top_two = sorted(counts, key=counts.get, reverse=True)[:2]
    a = materials == top_two[0]
    b = materials == top_two[1]
    try:
        result = logrank_test(
            exit_age[a], event[a], exit_age[b], event[b], entry_a=entry[a], entry_b=entry[b]
        )
        verdict = "different" if result.p_value < 0.05 else "not clearly different"
        print(
            f"  {top_two[0]} vs {top_two[1]}: chi2={result.statistic:.2f}, "
            f"p={result.p_value:.4f} -> hazards {verdict}"
        )
    except ValueError as exc:
        print(f"  (log-rank unavailable: {exc})")

    print("\n-- Nelson-Aalen cumulative hazard (all CWMs) --")
    na = nelson_aalen(exit_age, event, entry_time=entry)
    for age in (40.0, 60.0, 80.0, 100.0):
        print(f"  H({age:.0f}) = {na.at(age)[0]:.4f}")

    print("\n-- Physical (no-training) condition model as a reference --")
    scores = PhysicalConditionModel().fit_predict(data)
    if data.pipe_fail_test.sum() > 0:
        auc = empirical_auc(scores, data.pipe_fail_test)
        print(f"  physical score AUC on the test year: {100 * auc:.1f}%")
        print("  (learned models in examples/model_comparison.py should beat this)")


if __name__ == "__main__":
    main()
