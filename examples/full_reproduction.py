"""One-command miniature of the full reproduction.

Runs the entire paper pipeline at a small scale: data generation with
Table 18.1 calibration, the model comparison protocol (Table 18.3's AUC
pair), a paired t-test (Table 18.4), the waste-water relationships
(Figs 18.5/18.6), detection curves (Figs 18.7/18.8), and a risk map
(Fig. 18.9) — printing each artefact as it goes. The real benchmark suite
(`pytest benchmarks/ --benchmark-only`) does the same with assertions and
more repeats; this script is the five-minute tour.

Run:
    python examples/full_reproduction.py [--scale 0.12] [--repeats 2]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.data import load_region, load_wastewater_region
from repro.eval import run_comparison
from repro.eval.reporting import (
    binned_rate_table,
    detection_readout,
    table_18_1,
    table_18_3,
    table_18_4,
)
from repro.eval.riskmap import RiskMap
from repro.features import build_model_data
from repro.network import PipeClass


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args()

    print("=" * 70)
    print("Table 18.1 — generated network & failure data")
    print("=" * 70)
    datasets = [load_region(r, scale=args.scale) for r in ("A", "B", "C")]
    print(table_18_1(datasets))

    print()
    print("=" * 70)
    print(f"Tables 18.3 / 18.4 — model comparison ({args.repeats} repeats)")
    print("=" * 70)
    result = run_comparison(
        regions=("A", "B", "C"), n_repeats=args.repeats, scale=args.scale, fast=True
    )
    print(table_18_3(result))
    print()
    if args.repeats >= 2:
        print(table_18_4(result, reference="DPMHBP", models=("HBP", "Cox", "SVM", "Weibull")))
    else:
        print("(Table 18.4 needs --repeats >= 2 for paired t-tests)")

    print()
    print("=" * 70)
    print("Figures 18.7 / 18.8 — detection readout")
    print("=" * 70)
    print(detection_readout(result, budgets=(0.01, 0.05, 0.10, 0.20)))

    print()
    print("=" * 70)
    print("Figures 18.5 / 18.6 — waste-water choke relationships")
    print("=" * 70)
    ww = load_wastewater_region("A", scale=args.scale)
    segments = ww.network.segments()
    mids = [s.midpoint for s in segments]
    fails = ww.segment_failure_matrix().sum(axis=1).astype(float)
    exposure = np.asarray([s.length for s in segments]) * len(ww.years)
    for name, values in (
        ("tree_canopy_cover", ww.environment.canopy.coverage_at(mids)),
        ("soil_moisture", ww.environment.moisture.moisture_at(mids)),
    ):
        table, _, rates = binned_rate_table(values, fails, exposure, n_bins=5, value_name=name)
        print(table)
        print(f"  -> top bin {rates[-1] / max(rates[0], 1e-12):.1f}x the bottom bin\n")

    print("=" * 70)
    print("Figure 18.9 — risk map")
    print("=" * 70)
    cwm = datasets[0].subset(PipeClass.CWM)
    scores = result.runs["A"][0].evaluations["DPMHBP"].scores
    md = build_model_data(cwm)
    assert len(scores) == md.n_pipes
    rm = RiskMap(dataset=cwm, scores=scores)
    path = rm.save_svg("riskmap_full_repro.svg")
    print(f"wrote {path}")
    try:
        print(f"top-10% band captures {100 * rm.top_band_hit_rate():.0f}% of test failures")
    except ValueError:
        print("(no test-year CWM failures at this scale)")


if __name__ == "__main__":
    main()
