"""Quickstart: rank a region's critical water mains by failure risk.

Generates the synthetic replica of region A, fits the DPMHBP model on the
1998-2008 failure records, scores every critical water main for 2009, and
prints the ten highest-risk pipes alongside the evaluation metrics.

Run:
    python examples/quickstart.py [--scale 0.15]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import DPMHBPModel, empirical_auc, prepare_region_data
from repro.eval.metrics import auc_at_budget, detection_curve, permyriad


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--region", default="A", choices=["A", "B", "C"])
    parser.add_argument("--scale", type=float, default=0.15, help="fraction of paper-scale data")
    args = parser.parse_args()

    print(f"Generating region {args.region} at scale {args.scale} ...")
    data = prepare_region_data(args.region, scale=args.scale)
    print(f"  {data.n_pipes} critical water mains, {data.n_segments} segments")
    print(f"  training years {data.train_years[0]}-{data.train_years[-1]}, test year {data.test_year}")

    print("Fitting DPMHBP (Metropolis-within-Gibbs) ...")
    model = DPMHBPModel(n_sweeps=40, burn_in=15, seed=0)
    scores = model.fit_predict(data)
    trace = model.posterior_.n_clusters_trace
    print(f"  adaptive grouping settled on ~{trace[-1]} segment groups")

    print("\nTop 10 highest-risk pipes for the test year:")
    order = np.argsort(-scores)[:10]
    header = f"{'pipe':<12} {'risk':>8} {'material':<8} {'laid':>5} {'len(m)':>7} {'failed?':>7}"
    print(header)
    print("-" * len(header))
    for i in order:
        failed = "YES" if data.pipe_fail_test[i] else ""
        print(
            f"{data.pipe_ids[i]:<12} {scores[i]:>8.4f} {data.pipe_material[i]:<8} "
            f"{int(data.pipe_laid_year[i]):>5} {data.pipe_lengths[i]:>7.0f} {failed:>7}"
        )

    labels = data.pipe_fail_test
    if labels.sum() > 0:
        curve = detection_curve(scores, labels)
        print(f"\nAUC (100% budget): {100 * empirical_auc(scores, labels):.2f}%")
        print(f"AUC (1% budget):   {permyriad(auc_at_budget(scores, labels)):.2f} per-10k")
        print(f"Inspecting the top 10% of pipes catches {100 * curve.detected_at(0.10):.0f}% of failures")
    else:
        print("\n(no test-year failures at this tiny scale — rerun with a larger --scale)")


if __name__ == "__main__":
    main()
