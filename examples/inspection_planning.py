"""Budget-constrained inspection planning: the 1%-of-network-length rule.

Water utilities physically inspect only ~1% of critical mains a year. This
example turns model scores into an inspection plan: pipes are added in
descending risk order until the length budget is exhausted, and the plan
is evaluated against what actually failed in the test year. Compares the
plans produced by DPMHBP and the Cox baseline, and writes the DPMHBP plan
as CSV.

Run:
    python examples/inspection_planning.py [--budget 0.01] [--out plan.csv]
"""

from __future__ import annotations

import argparse
import csv
from pathlib import Path

import numpy as np

from repro import DPMHBPModel, prepare_region_data
from repro.core.survival_models import CoxPHModel
from repro.features.builder import ModelData


def build_plan(data: ModelData, scores: np.ndarray, budget_fraction: float) -> list[int]:
    """Pipe rows selected greedily by score under a length budget."""
    budget = budget_fraction * data.pipe_lengths.sum()
    plan: list[int] = []
    used = 0.0
    for i in np.argsort(-scores):
        if used + data.pipe_lengths[i] > budget and plan:
            continue  # skip pipes that overflow; keep filling with shorter ones
        plan.append(int(i))
        used += data.pipe_lengths[i]
        if used >= budget:
            break
    return plan


def describe(name: str, data: ModelData, plan: list[int]) -> None:
    length = data.pipe_lengths[plan].sum()
    caught = int(data.pipe_fail_test[plan].sum())
    total = int(data.pipe_fail_test.sum())
    print(
        f"{name:<8} plan: {len(plan)} pipes, {length / 1000:.1f} km "
        f"({100 * length / data.pipe_lengths.sum():.2f}% of network) -> "
        f"catches {caught}/{total} test-year failures"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--region", default="A", choices=["A", "B", "C"])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--budget", type=float, default=0.01, help="fraction of network length")
    parser.add_argument("--out", type=Path, default=Path("inspection_plan.csv"))
    args = parser.parse_args()

    data = prepare_region_data(args.region, scale=args.scale)
    print(
        f"Region {args.region}: {data.n_pipes} CWMs, "
        f"{data.pipe_lengths.sum() / 1000:.0f} km of mains, "
        f"budget = {100 * args.budget:g}% of length\n"
    )

    dpm_scores = DPMHBPModel(n_sweeps=40, burn_in=15, seed=0).fit_predict(data)
    cox_scores = CoxPHModel().fit_predict(data)

    dpm_plan = build_plan(data, dpm_scores, args.budget)
    cox_plan = build_plan(data, cox_scores, args.budget)
    describe("DPMHBP", data, dpm_plan)
    describe("Cox", data, cox_plan)

    with args.out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["rank", "pipe_id", "risk_score", "material", "laid_year", "length_m"])
        for rank, i in enumerate(dpm_plan, 1):
            writer.writerow(
                [
                    rank,
                    data.pipe_ids[i],
                    f"{dpm_scores[i]:.5f}",
                    data.pipe_material[i],
                    int(data.pipe_laid_year[i]),
                    f"{data.pipe_lengths[i]:.0f}",
                ]
            )
    print(f"\nWrote the DPMHBP inspection plan to {args.out}")


if __name__ == "__main__":
    main()
