"""Extended baseline sweep — the related-work time models join the table.

The chapter's related-work section traces the field from single-covariate
age models (time-exponential [15], time-power [12], time-linear [9]) to
multivariate and nonparametric methods. This benchmark runs the whole
lineage on one region so the historical progression is visible in one
table: age-only models < multivariate models < hierarchical Bayesian
models (on average).
"""

import numpy as np

from repro.core.dpmhbp import DPMHBPModel
from repro.core.ranking.model import SVMClassifierModel, SVMRankingModel
from repro.core.survival_models import CoxPHModel, TimeRateModel, WeibullModel
from repro.eval.experiment import prepare_region_data
from repro.eval.metrics import empirical_auc
from repro.eval.reporting import format_table

from .conftest import run_once

SEEDS = (None, 7001, 7002)


def run_sweep():
    out: dict[str, list[float]] = {}
    for seed in SEEDS:
        md = prepare_region_data("A", seed=seed)
        labels = md.pipe_fail_test
        models = [
            TimeRateModel(kind="exponential"),
            TimeRateModel(kind="power"),
            TimeRateModel(kind="linear"),
            CoxPHModel(),
            WeibullModel(),
            SVMRankingModel(seed=0),
            SVMClassifierModel(seed=0),
            DPMHBPModel(n_sweeps=40, burn_in=15, seed=0),
        ]
        for m in models:
            out.setdefault(m.name, []).append(empirical_auc(m.fit_predict(md), labels))
    return {k: float(np.mean(v)) for k, v in out.items()}


def test_extended_baselines(benchmark, artifact_dir):
    means = run_once(benchmark, run_sweep)
    rows = [[k, f"{v:.3f}"] for k, v in sorted(means.items(), key=lambda kv: -kv[1])]
    table = format_table(["Model", "mean AUC"], rows)
    print("\n" + table)
    (artifact_dir / "extended_baselines.txt").write_text(table + "\n")

    age_only = np.mean([means["TimeExp"], means["TimePow"], means["TimeLin"]])
    multivariate = np.mean([means["Cox"], means["Weibull"], means["SVM"]])
    # The historical progression: age-only < multivariate < DPMHBP.
    assert multivariate > age_only, means
    assert means["DPMHBP"] > age_only, means
    assert means["DPMHBP"] >= multivariate - 0.02, means
