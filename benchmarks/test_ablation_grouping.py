"""Ablation A1 — the grouping scheme (§18.4.3's comparison).

The chapter integrates three fixed expert groupings (material, diameter,
laid year) with the HBP model and compares them against the DP mixture's
adaptive grouping. This benchmark regenerates that comparison on region A
and asserts the design-choice claim: adaptive grouping is at least as good
as the best fixed grouping, and the fixed groupings differ among
themselves (the choice matters, which is the problem DPMHBP removes).
"""

import numpy as np

from repro.core.dpmhbp import DPMHBPModel
from repro.core.grouping import GROUPINGS
from repro.core.hbp import HBPModel
from repro.eval.experiment import prepare_region_data
from repro.eval.metrics import empirical_auc
from repro.eval.reporting import format_table

from .conftest import run_once

SEEDS = (None, 3001, 3002)


def run_ablation():
    rows = {}
    for seed in SEEDS:
        md = prepare_region_data("A", seed=seed)
        labels = md.pipe_fail_test
        for scheme in GROUPINGS:
            scores = HBPModel(grouping=scheme, n_sweeps=120, burn_in=40, seed=0).fit_predict(md)
            rows.setdefault(f"HBP/{scheme}", []).append(empirical_auc(scores, labels))
        scores = DPMHBPModel(n_sweeps=40, burn_in=15, seed=0).fit_predict(md)
        rows.setdefault("DPMHBP/adaptive", []).append(empirical_auc(scores, labels))
    return {k: float(np.mean(v)) for k, v in rows.items()}


def test_ablation_grouping(benchmark, artifact_dir):
    means = run_once(benchmark, run_ablation)
    table = format_table(
        ["Grouping", "mean AUC"], [[k, f"{v:.3f}"] for k, v in sorted(means.items())]
    )
    print("\n" + table)
    (artifact_dir / "ablation_grouping.txt").write_text(table + "\n")

    fixed = [v for k, v in means.items() if k.startswith("HBP/")]
    # Adaptive grouping is competitive with the *best* fixed grouping
    # without knowing which one to pick.
    assert means["DPMHBP/adaptive"] >= max(fixed) - 0.03, means
    # And clearly better than the worst fixed grouping.
    assert means["DPMHBP/adaptive"] > min(fixed), means
