"""Figure 18.6 — soil moisture vs waste-water pipe failure (choke).

Same protocol as Fig. 18.5 with the soil-moisture layer: the asserted
shape is the paper's strong positive correlation between moisture and
choke rate.
"""

import numpy as np

from repro.data.wastewater import load_wastewater_region
from repro.eval.reporting import binned_rate_table

from .conftest import run_once
from .test_fig18_5 import rank_correlation


def build():
    ds = load_wastewater_region("A")
    segments = ds.network.segments()
    wet = ds.environment.moisture.moisture_at([s.midpoint for s in segments])
    fails = ds.segment_failure_matrix().sum(axis=1).astype(float)
    exposure = np.asarray([s.length for s in segments]) * len(ds.years)
    return wet, fails, exposure


def test_fig18_6(benchmark, artifact_dir):
    wet, fails, exposure = run_once(benchmark, build)
    table, centres, rates = binned_rate_table(
        wet, fails, exposure, n_bins=8, value_name="soil_moisture"
    )
    print("\n" + table)
    (artifact_dir / "fig18_6.txt").write_text(table + "\n")

    assert len(rates) >= 5
    assert rates[-1] > 2.0 * max(rates[0], 1e-12)
    assert rank_correlation(centres, rates) > 0.6
