"""Figure 18.7 — failure detection curves per region (full budget range).

Regenerates the cumulative detection curves (x: % of CWMs inspected,
y: % of test-year failures detected) for every compared model in every
region, writes the curve readouts, and asserts the paper's shape: the
DPMHBP curve dominates the weakest baselines over the operating range and
every curve is a valid monotone detection curve ending at 100%.
"""

import numpy as np

from repro.eval.reporting import detection_readout

from .conftest import run_once

BUDGETS = (0.01, 0.05, 0.10, 0.20, 0.50)


def test_fig18_7(benchmark, comparison, artifact_dir):
    result = run_once(benchmark, lambda: comparison)
    readout = detection_readout(result, budgets=BUDGETS)
    print("\n" + readout)
    (artifact_dir / "fig18_7.txt").write_text(readout + "\n")

    # Validate every curve and collect detection at the 20% budget.
    detected20: dict[str, list[float]] = {}
    for region in result.regions:
        for run in result.runs[region]:
            for name, ev in run.evaluations.items():
                curve = ev.curve(run.labels)
                assert np.all(np.diff(curve.detected) >= 0)
                assert curve.detected[-1] == 1.0
                detected20.setdefault(name, []).append(curve.detected_at(0.20))

    means = {m: float(np.mean(v)) for m, v in detected20.items()}
    # DPMHBP detects a clear majority of failures in the top 20% and beats
    # the Cox baseline there (paper: large margins at mid budgets).
    assert means["DPMHBP"] > 0.45, means
    assert means["DPMHBP"] > means["Cox"], means
