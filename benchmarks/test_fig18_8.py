"""Figure 18.8 — detection with 1% of the pipe network *length* inspected.

Regenerates the budget-constrained comparison: the x-axis is the fraction
of total CWM length (not pipe count) inspected, truncated at the real
annual inspection budget of 1%. The paper's shape: DPMHBP detects the most
failures within the 1% budget in every region (nearly doubling the second
best in region C); here we assert DPMHBP is at or near the top on average.
"""

import numpy as np

from repro.eval.reporting import format_table

from .conftest import run_once

MODELS = ("DPMHBP", "HBP", "Cox", "SVM", "Weibull", "AUC-Rank")


def test_fig18_8(benchmark, comparison, artifact_dir):
    result = run_once(benchmark, lambda: comparison)

    detected: dict[tuple[str, str], list[float]] = {}
    for region in result.regions:
        for run in result.runs[region]:
            for name, ev in run.evaluations.items():
                curve = ev.curve(run.labels, lengths=run.pipe_lengths)
                detected.setdefault((region, name), []).append(curve.detected_at(0.01))

    rows = []
    for region in result.regions:
        rows.append(
            [region]
            + [f"{100 * np.mean(detected[(region, m)]):.1f}%" for m in MODELS]
        )
    table = format_table(["Region"] + list(MODELS), rows)
    print("\n" + table)
    (artifact_dir / "fig18_8.txt").write_text(table + "\n")

    # Shape assertions: DPMHBP at/near the top of the paper's five at 1% of
    # network length, and strictly above the Cox baseline on average.
    overall = {
        m: float(np.mean([np.mean(detected[(r, m)]) for r in result.regions]))
        for m in MODELS
    }
    paper_five = {m: v for m, v in overall.items() if m != "AUC-Rank"}
    best = max(paper_five.values())
    assert overall["DPMHBP"] >= 0.8 * best, overall
    assert overall["DPMHBP"] >= overall["Cox"], overall
