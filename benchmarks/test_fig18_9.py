"""Figure 18.9 — risk maps for the three regions.

Regenerates the colour-banded network maps with the DPMHBP prioritisation
(red = top 10% predicted risk) and the test-year failures overlaid as
stars, written as standalone SVG artifacts. Asserted shape: the top risk
band captures test-year failures at well above the 10% base rate a random
prioritisation would give.
"""

import numpy as np

from repro.core.dpmhbp import DPMHBPModel
from repro.data.datasets import load_region
from repro.eval.riskmap import RiskMap
from repro.features.builder import build_model_data
from repro.network.pipe import PipeClass

from .conftest import run_once


def build_maps():
    maps = []
    for region in ("A", "B", "C"):
        ds = load_region(region).subset(PipeClass.CWM)
        md = build_model_data(ds)
        scores = DPMHBPModel(n_sweeps=30, burn_in=10, seed=0).fit_predict(md)
        maps.append((region, RiskMap(dataset=ds, scores=scores)))
    return maps


def test_fig18_9(benchmark, artifact_dir):
    maps = run_once(benchmark, build_maps)
    hit_rates = []
    for region, rm in maps:
        path = rm.save_svg(artifact_dir / f"fig18_9_region_{region}.svg", width=700)
        assert path.exists() and path.stat().st_size > 1000
        rate = rm.top_band_hit_rate()
        hit_rates.append(rate)
        print(f"region {region}: top-10%-band captures {100 * rate:.0f}% of test failures")

    # Random prioritisation would put ~10% of failing pipes in the top band;
    # the model must concentrate substantially more across regions.
    assert float(np.mean(hit_rates)) > 0.2
