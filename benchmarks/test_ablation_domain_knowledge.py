"""Ablation A2 — the value of domain knowledge (§18.4.2's claim).

Three feature regimes, same model (the Weibull NHPP — the GLM covariate
path makes it the cleanest probe of pure feature value):

* **basic** — asset-register attributes only (no soil, no traffic): what a
  modeller gets without domain experts pointing at environmental factors;
* **naive** — everything *plus* false-correlated decoy features, kept by a
  data-driven pipeline with no expert screening;
* **expert** — the Table 18.2 feature set after expert screening.

Asserted shape: expert features beat the basic set (the experts' suggested
environmental factors carry signal) and are at least as good as the
decoy-contaminated naive set.
"""

import numpy as np

from repro.core.survival_models import WeibullModel
from repro.data.datasets import load_region
from repro.eval.metrics import empirical_auc
from repro.eval.reporting import format_table
from repro.features.builder import build_model_data
from repro.features.domain import basic_config, expert_screen, naive_config
from repro.network.pipe import PipeClass

from .conftest import run_once

SEEDS = (None, 4001, 4002, 4003, 4004, 4005)


def run_ablation():
    out: dict[str, list[float]] = {"basic": [], "naive+decoys": [], "expert": []}
    for seed in SEEDS:
        ds = load_region("A", seed=seed).subset(PipeClass.CWM)
        basic = build_model_data(ds, basic_config())
        naive = build_model_data(ds, naive_config(n_decoys=10))
        expert = expert_screen(naive)
        labels = expert.pipe_fail_test
        for name, md in (("basic", basic), ("naive+decoys", naive), ("expert", expert)):
            scores = WeibullModel().fit_predict(md)
            out[name].append(empirical_auc(scores, labels))
    return {k: float(np.mean(v)) for k, v in out.items()}


def test_ablation_domain_knowledge(benchmark, artifact_dir):
    means = run_once(benchmark, run_ablation)
    table = format_table(
        ["Feature regime", "mean AUC"], [[k, f"{v:.3f}"] for k, v in means.items()]
    )
    print("\n" + table)
    (artifact_dir / "ablation_domain_knowledge.txt").write_text(table + "\n")

    # Expert-identified environmental factors add real signal.
    assert means["expert"] > means["basic"], means
    # Expert screening never loses to the decoy-contaminated pipeline.
    assert means["expert"] >= means["naive+decoys"] - 0.01, means
