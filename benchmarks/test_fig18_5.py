"""Figure 18.5 — tree canopy coverage vs waste-water pipe failure (choke).

Regenerates the binned relationship between tree canopy coverage and choke
rate on the waste-water network. Asserted shape: a strong positive,
essentially monotone relationship (the paper's figure shows choke counts
rising steeply with canopy), quantified as (a) top-bin rate several times
the bottom-bin rate and (b) a positive rank correlation across bins.
"""

import numpy as np

from repro.data.wastewater import load_wastewater_region
from repro.eval.reporting import binned_rate_table

from .conftest import run_once


def build():
    ds = load_wastewater_region("A")
    segments = ds.network.segments()
    cover = ds.environment.canopy.coverage_at([s.midpoint for s in segments])
    fails = ds.segment_failure_matrix().sum(axis=1).astype(float)
    exposure = np.asarray([s.length for s in segments]) * len(ds.years)
    return cover, fails, exposure


def rank_correlation(x: np.ndarray, y: np.ndarray) -> float:
    rx = np.argsort(np.argsort(x)).astype(float)
    ry = np.argsort(np.argsort(y)).astype(float)
    return float(np.corrcoef(rx, ry)[0, 1])


def test_fig18_5(benchmark, artifact_dir):
    cover, fails, exposure = run_once(benchmark, build)
    table, centres, rates = binned_rate_table(
        cover, fails, exposure, n_bins=8, value_name="tree_canopy_cover"
    )
    print("\n" + table)
    (artifact_dir / "fig18_5.txt").write_text(table + "\n")

    assert len(rates) >= 5
    # Steep positive relationship: top canopy bin >> bottom bin.
    assert rates[-1] > 3.0 * max(rates[0], 1e-12)
    # Near-monotone: strong rank correlation across bins.
    assert rank_correlation(centres, rates) > 0.7
