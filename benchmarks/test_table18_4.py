"""Table 18.4 — one-sided paired t-tests: DPMHBP against each other model.

Regenerates the significance table over seed-repeated evaluations. The
asserted shape: the mean paired difference favours DPMHBP against the
majority of (region, baseline) pairs, and the t statistics are finite and
well-formed. (With the default 3 repeats the 5% threshold itself is noisy;
raise REPRO_BENCH_REPEATS for sharper tests.)
"""

import numpy as np

from repro.eval.reporting import table_18_4

from .conftest import run_once

BASELINES = ("HBP", "Cox", "SVM", "Weibull")


def test_table18_4(benchmark, comparison, artifact_dir):
    result = run_once(benchmark, lambda: comparison)
    table = table_18_4(result, reference="DPMHBP", models=BASELINES)
    print("\n" + table)
    (artifact_dir / "table18_4.txt").write_text(table + "\n")

    wins = 0
    total = 0
    for region in result.regions:
        for baseline in BASELINES:
            t = result.t_test(region, "DPMHBP", baseline)
            assert 0.0 <= t.p_value <= 1.0
            assert t.df == len(result.runs[region]) - 1
            total += 1
            if t.mean_difference > 0:
                wins += 1
    # DPMHBP ahead on the majority of comparisons (paper: all of them).
    assert wins >= total * 0.5, f"DPMHBP ahead in only {wins}/{total} comparisons"

    # Against Cox specifically the paper reports uniform significance of
    # direction; require a positive mean difference in every region.
    for region in result.regions:
        assert result.t_test(region, "DPMHBP", "Cox").mean_difference > 0
