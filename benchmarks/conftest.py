"""Shared benchmark fixtures.

The expensive Table 18.3 comparison (all models × all regions × repeats)
runs once per session and feeds the Table 18.3/18.4 and Figure 18.7/18.8
benchmarks. Knobs:

* ``REPRO_SCALE`` — dataset scale (default 0.25 of the paper's counts);
* ``REPRO_BENCH_REPEATS`` — seed-repeats for the paired t-tests (default 3).

Artifacts (rendered tables, SVG risk maps) are written to
``benchmarks/artifacts/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.experiment import run_comparison

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture(scope="session")
def comparison():
    """The full model comparison over regions A/B/C with seed repeats."""
    return run_comparison(
        regions=("A", "B", "C"),
        n_repeats=bench_repeats(),
        fast=True,
    )


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
