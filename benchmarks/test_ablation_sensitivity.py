"""Ablation A4 — DPMHBP hyperparameter sensitivity.

Two design choices the paper leaves implicit get stress-tested here:

* the CRP concentration ``α`` (how eagerly new groups form), and
* feature-aware grouping (``feature_weight > 0``) vs grouping on failure
  histories alone (``feature_weight = 0``).

Asserted shape: performance is *stable* across reasonable ``α`` (the DP's
selling point — no sensitive group-count knob), and feature-aware grouping
does not lose to history-only grouping (features are what let zero-failure
segments join informative groups).
"""

import numpy as np

from repro.core.dpmhbp import DPMHBPModel
from repro.eval.experiment import prepare_region_data
from repro.eval.metrics import empirical_auc
from repro.eval.reporting import format_table

from .conftest import run_once

SEEDS = (None, 6001)


def run_sensitivity():
    out: dict[str, list[float]] = {}
    for seed in SEEDS:
        md = prepare_region_data("A", seed=seed)
        labels = md.pipe_fail_test
        for alpha in (1.0, 4.0, 12.0):
            m = DPMHBPModel(alpha=alpha, n_sweeps=40, burn_in=15, seed=0)
            out.setdefault(f"alpha={alpha:g}", []).append(
                empirical_auc(m.fit_predict(md), labels)
            )
        m = DPMHBPModel(feature_weight=0.0, n_sweeps=40, burn_in=15, seed=0)
        out.setdefault("history-only grouping", []).append(
            empirical_auc(m.fit_predict(md), labels)
        )
    return {k: float(np.mean(v)) for k, v in out.items()}


def test_ablation_sensitivity(benchmark, artifact_dir):
    means = run_once(benchmark, run_sensitivity)
    table = format_table(
        ["Configuration", "mean AUC"], [[k, f"{v:.3f}"] for k, v in means.items()]
    )
    print("\n" + table)
    (artifact_dir / "ablation_sensitivity.txt").write_text(table + "\n")

    alpha_aucs = [v for k, v in means.items() if k.startswith("alpha=")]
    # Insensitive to the concentration: spread under 6 AUC points.
    assert max(alpha_aucs) - min(alpha_aucs) < 0.06, means
    # Feature-aware grouping (the default alpha=4 run) >= history-only.
    assert means["alpha=4"] >= means["history-only grouping"] - 0.02, means
