"""Table 18.1 — pipe network and failure data summary per region.

Regenerates the paper's data-collection table from the synthetic regions
and checks the calibration: pipe counts are exact by construction, failure
counts land within sampling noise of the (scaled) paper targets, and the
laid-year ranges and CWM shares match.
"""

import numpy as np

from repro.data.datasets import load_region
from repro.data.regions import default_scale, get_region
from repro.eval.reporting import table_18_1
from repro.network.pipe import PipeClass

from .conftest import run_once


def build_all_regions():
    return [load_region(name) for name in ("A", "B", "C")]


def test_table18_1(benchmark, artifact_dir):
    datasets = run_once(benchmark, build_all_regions)
    table = table_18_1(datasets)
    print("\n" + table)
    (artifact_dir / "table18_1.txt").write_text(table + "\n")

    for ds in datasets:
        spec = get_region(ds.spec.name.split("-")[0], scale=default_scale())
        # Pipe counts exact.
        assert ds.network.n_pipes == spec.n_pipes
        assert len(ds.network.pipes(PipeClass.CWM)) == spec.n_cwm
        # Failure totals within 5 sigma of the calibrated target.
        for target, actual in (
            (spec.target_failures_all, len(ds.failures)),
            (spec.target_failures_cwm, ds.n_failures(PipeClass.CWM)),
        ):
            assert abs(actual - target) < 5 * np.sqrt(target) + 5
        # Laid eras inside the paper's ranges.
        lo, hi = ds.network.laid_year_range()
        assert lo >= spec.laid_year_lo and hi <= spec.laid_year_hi
        # Observation period 1998-2009.
        assert ds.years == tuple(range(1998, 2010))
