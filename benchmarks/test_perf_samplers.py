"""P1 — sampler and metric throughput (real timing benchmarks).

Unlike the experiment benchmarks (run once via pedantic), these measure
steady-state throughput of the hot paths: a DPMHBP Gibbs sweep, an HBP
sweep, CRP partition sampling, exact-AUC evaluation, and one evolution-
strategy generation. Useful for catching performance regressions in the
inference core.
"""

import numpy as np
import pytest

from repro.bayes.crp import sample_partition
from repro.core.dpmhbp import DPMHBP
from repro.core.hbp import fit_hbp
from repro.core.ranking.evolutionary import EvolutionStrategy
from repro.core.ranking.objective import empirical_auc


@pytest.fixture(scope="module")
def failure_matrix():
    rng = np.random.default_rng(0)
    n, years = 2000, 11
    p = rng.choice([0.001, 0.01, 0.05], size=n, p=[0.7, 0.2, 0.1])
    return (rng.random((n, years)) < p[:, None]).astype(np.int8)


@pytest.fixture(scope="module")
def features(failure_matrix):
    rng = np.random.default_rng(1)
    return rng.standard_normal((failure_matrix.shape[0], 20))


def test_perf_dpmhbp_sweeps(benchmark, failure_matrix, features):
    """Five DPMHBP sweeps over 2k segments (includes CRP reseating)."""

    def run():
        return DPMHBP(n_sweeps=5, burn_in=1, seed=0).fit(failure_matrix, features)

    post = benchmark.pedantic(run, rounds=3, iterations=1)
    assert post.rho_mean.shape == (2000,)


def test_perf_hbp_sweeps(benchmark, failure_matrix):
    """Fifty HBP sweeps over 2k units with 8 groups."""
    groups = np.arange(2000) % 8

    def run():
        return fit_hbp(failure_matrix, groups, n_sweeps=50, burn_in=10, seed=0)

    post = benchmark.pedantic(run, rounds=3, iterations=1)
    assert post.pi_mean.shape == (2000,)


def test_perf_crp_partition(benchmark):
    """Sequential CRP seating of 5k customers."""
    rng = np.random.default_rng(0)
    labels = benchmark(sample_partition, 5000, 3.0, rng)
    assert labels.shape == (5000,)


def test_perf_empirical_auc(benchmark):
    """Exact AUC on 100k scores (rank-sum path)."""
    rng = np.random.default_rng(0)
    scores = rng.standard_normal(100_000)
    labels = (rng.random(100_000) < 0.01).astype(float)
    labels[0] = 1.0
    auc = benchmark(empirical_auc, scores, labels)
    assert 0.4 < auc < 0.6


def test_perf_es_generation(benchmark):
    """One ES generation (40 evaluations) on a 30-dim AUC-like objective."""
    rng = np.random.default_rng(0)
    X = rng.standard_normal((2000, 30))
    y = (rng.random(2000) < 0.05).astype(float)
    y[0] = 1.0

    def run():
        es = EvolutionStrategy(generations=1, population=40, seed=0)
        return es.maximise(lambda w: empirical_auc(X @ w, y), dim=30)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert 0.0 <= res.best_value <= 1.0
