"""Ablation A3 — segment-level vs pipe-level modelling (§18.3.3's argument).

The chapter argues the HBP model "ignores the impact of the length
attribute" by modelling whole pipes, while DPMHBP models segments "whose
lengths are relatively constant with a very small variance" and composes
pipe risk over the series system. This benchmark fits the *same* DPMHBP
machinery at both levels (segments with survival composition vs whole
pipes directly) and asserts the design choice pays.
"""

import numpy as np

from repro.core.dpmhbp import DPMHBP, DPMHBPModel
from repro.eval.experiment import prepare_region_data
from repro.eval.metrics import empirical_auc
from repro.eval.reporting import format_table
from repro.ml.glm import PoissonRegression

from .conftest import run_once

SEEDS = (None, 5001, 5002)


def pipe_level_scores(md, seed=0):
    """DPMHBP machinery applied to whole pipes (no segment composition)."""
    sampler = DPMHBP(n_sweeps=40, burn_in=15, seed=seed)
    post = sampler.fit(md.pipe_fail_train, md.X_pipe)
    counts = md.pipe_fail_train.sum(axis=1).astype(float)
    exposure = np.full(md.n_pipes, float(md.pipe_fail_train.shape[1]))
    glm = PoissonRegression(l2=1e-2).fit(md.X_pipe, counts, exposure=exposure)
    return post.rho_mean * glm.covariate_factor(md.X_pipe)


def run_ablation():
    seg_aucs, pipe_aucs = [], []
    for seed in SEEDS:
        md = prepare_region_data("A", seed=seed)
        labels = md.pipe_fail_test
        seg_scores = DPMHBPModel(n_sweeps=40, burn_in=15, seed=0).fit_predict(md)
        seg_aucs.append(empirical_auc(seg_scores, labels))
        pipe_aucs.append(empirical_auc(pipe_level_scores(md), labels))
    return float(np.mean(seg_aucs)), float(np.mean(pipe_aucs))


def test_ablation_segments(benchmark, artifact_dir):
    seg_auc, pipe_auc = run_once(benchmark, run_ablation)
    table = format_table(
        ["Modelling level", "mean AUC"],
        [["segments + series composition", f"{seg_auc:.3f}"], ["whole pipes", f"{pipe_auc:.3f}"]],
    )
    print("\n" + table)
    (artifact_dir / "ablation_segments.txt").write_text(table + "\n")

    # Segment-level modelling with series composition should not lose to
    # pipe-level modelling (the paper's stronger claim is that it wins).
    assert seg_auc >= pipe_auc - 0.02, (seg_auc, pipe_auc)
