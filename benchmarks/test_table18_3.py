"""Table 18.3 — AUC(100%) and AUC(1%, ‱) for every model × region.

Regenerates the headline comparison. Absolute values differ from the paper
(different substrate, scaled data); the asserted *shape* is the paper's:

* DPMHBP has the best mean AUC across regions (the paper's consistent
  winner), and in every region it is within noise of the top;
* the Bayesian nonparametric pair (DPMHBP, HBP) beats the Cox baseline;
* at the 1% budget DPMHBP is the best of the paper's five models on
  average (the paper's "nearly doubles the detected failures" result).
"""

import numpy as np

from repro.eval.reporting import table_18_3

from .conftest import run_once

PAPER_FIVE = ("DPMHBP", "HBP", "Cox", "SVM", "Weibull")


def test_table18_3(benchmark, comparison, artifact_dir):
    result = run_once(benchmark, lambda: comparison)
    table = table_18_3(result)
    print("\n" + table)
    (artifact_dir / "table18_3.txt").write_text(table + "\n")

    regions = result.regions
    mean_over_regions = {
        m: float(np.mean([result.mean_auc(r, m) for r in regions])) for m in PAPER_FIVE
    }
    # DPMHBP at the top of the paper's five on average: strictly better
    # than the paper's trailing pack, and within simulator noise (1 AUC
    # point) of the best model overall.
    best_value = max(mean_over_regions.values())
    assert mean_over_regions["DPMHBP"] >= best_value - 0.01, mean_over_regions
    assert mean_over_regions["DPMHBP"] > mean_over_regions["Cox"] + 0.03, mean_over_regions

    # The hierarchical models beat Cox in every region (paper: consistent).
    for r in regions:
        assert result.mean_auc(r, "DPMHBP") > result.mean_auc(r, "Cox")

    # Budget-restricted AUC: DPMHBP best on average.
    mean_budget = {
        m: np.mean([result.mean_budget_auc(r, m) for r in regions]) for m in PAPER_FIVE
    }
    top_budget = max(mean_budget, key=mean_budget.get)
    assert mean_budget["DPMHBP"] >= 0.9 * mean_budget[top_budget], mean_budget

    # Everything is a valid AUC.
    for r in regions:
        for m in PAPER_FIVE:
            assert 0.0 <= result.mean_auc(r, m) <= 1.0
